"""Vectorized kernels vs the scalar packed-trace engine, wall clock.

For each kernel family (two-level AT, per-address LS, global-history GAg,
stateless BTFN, and the finite-HRT AHRT/HHRT replays) the bench scores the
same spec over the same eqntott trace with both backends, asserts the stats
are identical, and prints best-of-5 timings.  A second test measures the
trace-store path end to end: building a trace into a cold store, loading it
back from a warm (memory-mapped) store, and simulating through the parallel
engine.  Scale follows ``REPRO_BENCH_SCALE`` like the figure benches (CI
smoke runs use a tiny value; ``paper`` selects the paper's 20M), and
setting ``REPRO_BENCH_RECORD=1`` merges the measured numbers into
``BENCH_kernels.json`` at the repo root.  Like ``BENCH_serve.json`` the
file is a dated trend log — ``{"entries": [{"date": ..., "kernels": ...,
"end_to_end": ...}, ...]}`` — so regressions are visible across recording
runs; a pre-trend single-payload file is auto-converted on read.  Each
test owns its own section of the day's entry, so recording one never
clobbers the other.

Skips entirely when NumPy is not installed (the kernels are an optional
fast path; the scalar engine remains the authority).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.predictors.spec import parse_spec
from repro.sim.backend import has_numpy
from repro.sim.engine import simulate
from repro.sim.kernels import simulate_spec
from repro.sim.runner import run_sweep
from repro.workloads.base import TraceCache, get_workload, parse_scale

DEFAULT_SCALE = 50_000

#: one spec per kernel shape (PT replay, per-address replay, global history,
#: stateless comparison, set-associative and hashed HRT front-ends).
FAMILIES = [
    ("two-level AT", "AT(IHRT(,12SR),PT(2^12,A2),)"),
    ("Lee-Smith LS", "LS(IHRT(,A2),,)"),
    ("global GAg", "GAg(12,A2)"),
    ("stateless BTFN", "BTFN"),
    ("AHRT two-level", "AT(AHRT(512,12SR),PT(2^12,A2),)"),
    ("HHRT two-level", "AT(HHRT(512,12SR),PT(2^12,A2),)"),
    ("perceptron", "perceptron(12,512)"),
    ("TAGE", "tage(4,9)"),
]

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _bench_scale() -> int:
    return parse_scale(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def _best_of(run, repeats=5):
    timings = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def load_trend_entries(path: Path = _RESULT_PATH) -> list:
    """BENCH_kernels.json trend entries, auto-converting a legacy payload.

    A pre-trend file held the sections at top level; it becomes the first
    entry with ``date: null`` so history survives the format change.
    """
    try:
        existing = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if isinstance(existing, dict) and isinstance(existing.get("entries"), list):
        return existing["entries"]
    if isinstance(existing, dict) and existing:
        return [{"date": None, **existing}]
    return []


def _merge_record(section: str, payload: dict) -> None:
    """Merge one section into today's trend entry of BENCH_kernels.json."""
    import datetime

    entries = load_trend_entries()
    today = datetime.date.today().isoformat()
    if entries and entries[-1].get("date") == today:
        entry = entries[-1]
    else:
        entry = {"date": today}
        entries.append(entry)
    entry[section] = payload
    _RESULT_PATH.write_text(json.dumps({"entries": entries}, indent=2) + "\n")
    print(f"  recorded [{section}] @ {today} -> {_RESULT_PATH}")


def test_kernel_vs_scalar_speedup(bench_cache):
    if not has_numpy():
        pytest.skip("NumPy not installed; vector backend unavailable")
    scale = _bench_scale()
    trace = bench_cache.get(get_workload("eqntott"), "test", scale)
    packed = trace.packed()

    rows = []
    print(f"\nkernels vs scalar engine, eqntott at {scale} conditional"
          f" ({len(packed)} records), best of 5:")
    for label, spec_text in FAMILIES:
        spec = parse_spec(spec_text)
        scalar_s, baseline = _best_of(lambda: simulate(spec.build(), packed))
        kernel_s, fast = _best_of(lambda: simulate_spec(spec, packed))
        assert fast == baseline, f"{spec_text} diverged from the scalar engine"
        speedup = scalar_s / kernel_s
        rows.append(
            {
                "family": label,
                "spec": spec.canonical(),
                "scalar_ms": round(scalar_s * 1e3, 2),
                "kernel_ms": round(kernel_s * 1e3, 2),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"  {label:15s} scalar {scalar_s * 1e3:8.1f} ms"
            f"   kernel {kernel_s * 1e3:8.1f} ms   {speedup:6.2f}x"
        )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        _merge_record(
            "kernels",
            {
                "benchmark": "eqntott",
                "scale_conditional": scale,
                "trace_records": len(packed),
                "timing": "best of 5, seconds scaled to ms",
                "families": rows,
            },
        )

    # loose floor for CI smoke runs; the recorded 50k-scale numbers are the
    # ones that matter (ISSUE asks >=5x for at least one family there)
    assert max(row["speedup"] for row in rows) > 1.0


def test_store_end_to_end(tmp_path):
    """Trace build into a cold store, warm mmap reload, parallel simulate.

    The three phases the paper-scale recipe cares about: paying the ISA
    interpreter once (cold), proving warm loads are effectively free
    (mmap), and scoring a finite-HRT spec through the parallel engine on
    the stored trace.
    """
    if not has_numpy():
        pytest.skip("NumPy not installed; vector backend unavailable")
    scale = _bench_scale()
    workload = get_workload("eqntott")
    cache = TraceCache(disk_dir=tmp_path / "store")

    start = time.perf_counter()
    cache.ensure_on_disk(workload, "test", scale)
    cold_s = time.perf_counter() - start

    cache.clear_memory()
    start = time.perf_counter()
    trace = cache.get(workload, "test", scale)
    warm_s = time.perf_counter() - start
    assert trace.mix.conditional == scale

    spec = "AT(AHRT(512,12SR),PT(2^12,A2),)"
    start = time.perf_counter()
    sweep = run_sweep([spec], ["eqntott"], scale, cache, jobs=2)
    simulate_s = time.perf_counter() - start
    accuracy = sweep.mean(sweep.schemes()[0])

    ratio = cold_s / warm_s if warm_s else float("inf")
    print(f"\nstore end-to-end, eqntott at {scale} conditional:")
    print(f"  cold build (generate + shard write)  {cold_s:8.3f} s")
    print(f"  warm load (mmap shard)               {warm_s:8.3f} s   {ratio:8.1f}x")
    print(f"  parallel simulate (jobs=2, {spec.split('(')[0]})"
          f"     {simulate_s:8.3f} s   acc={accuracy:.4f}")

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        _merge_record(
            "end_to_end",
            {
                "benchmark": "eqntott",
                "scale_conditional": scale,
                "spec": spec,
                "cold_build_s": round(cold_s, 3),
                "warm_load_s": round(warm_s, 4),
                "warm_speedup": round(ratio, 1),
                "parallel_simulate_s": round(simulate_s, 3),
                "accuracy": round(accuracy, 4),
                "engine": "run_sweep jobs=2 over the mmap shard store",
            },
        )

    # the acceptance bar (>=10x) is asserted on the recorded paper-scale
    # run; CI smoke scales only need the warm load to win at all
    assert warm_s < cold_s
