"""Vectorized kernels vs the scalar packed-trace engine, wall clock.

For each kernel family (two-level AT, per-address LS, global-history GAg,
stateless BTFN) the bench scores the same spec over the same 50k-conditional
eqntott trace with both backends, asserts the stats are identical, and
prints best-of-5 timings.  Scale follows ``REPRO_BENCH_SCALE`` like the
figure benches (CI smoke runs use a tiny value), and setting
``REPRO_BENCH_RECORD=1`` writes the measured numbers to
``BENCH_kernels.json`` at the repo root — the checked-in copy is recorded at
the default 50,000-conditional scale.

Skips entirely when NumPy is not installed (the kernels are an optional
fast path; the scalar engine remains the authority).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.predictors.spec import parse_spec
from repro.sim.backend import has_numpy
from repro.sim.engine import simulate
from repro.sim.kernels import simulate_spec
from repro.workloads.base import get_workload

DEFAULT_SCALE = 50_000

#: one spec per kernel shape (PT replay, per-address replay, global history,
#: stateless comparison).
FAMILIES = [
    ("two-level AT", "AT(IHRT(,12SR),PT(2^12,A2),)"),
    ("Lee-Smith LS", "LS(IHRT(,A2),,)"),
    ("global GAg", "GAg(12,A2)"),
    ("stateless BTFN", "BTFN"),
]


def _best_of(run, repeats=5):
    timings = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def test_kernel_vs_scalar_speedup(bench_cache):
    if not has_numpy():
        pytest.skip("NumPy not installed; vector backend unavailable")
    scale = int(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    trace = bench_cache.get(get_workload("eqntott"), "test", scale)
    packed = trace.packed()

    rows = []
    print(f"\nkernels vs scalar engine, eqntott at {scale} conditional"
          f" ({len(packed)} records), best of 5:")
    for label, spec_text in FAMILIES:
        spec = parse_spec(spec_text)
        scalar_s, baseline = _best_of(lambda: simulate(spec.build(), packed))
        kernel_s, fast = _best_of(lambda: simulate_spec(spec, packed))
        assert fast == baseline, f"{spec_text} diverged from the scalar engine"
        speedup = scalar_s / kernel_s
        rows.append(
            {
                "family": label,
                "spec": spec.canonical(),
                "scalar_ms": round(scalar_s * 1e3, 2),
                "kernel_ms": round(kernel_s * 1e3, 2),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"  {label:15s} scalar {scalar_s * 1e3:8.1f} ms"
            f"   kernel {kernel_s * 1e3:8.1f} ms   {speedup:6.2f}x"
        )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        payload = {
            "benchmark": "eqntott",
            "scale_conditional": scale,
            "trace_records": len(packed),
            "timing": "best of 5, seconds scaled to ms",
            "families": rows,
        }
        path = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"  recorded -> {path}")

    # loose floor for CI smoke runs; the recorded 50k-scale numbers are the
    # ones that matter (ISSUE asks >=5x for at least one family there)
    assert max(row["speedup"] for row in rows) > 1.0
