"""Parallel sweep engine and columnar fast-path wall-clock benchmarks.

Two measurements back the performance layer:

* a fig7-style sweep (four AT history-length configurations over a benchmark
  subset) run serially and with a process pool (``--jobs``-equivalent),
  asserting the results are identical and printing the wall-clock speedup;
* ``simulate`` over a 50k-conditional trace as a record list vs its
  :class:`~repro.trace.columnar.PackedTrace` form.

Scale follows ``REPRO_BENCH_SCALE`` like the figure benches; the worker
count follows ``REPRO_BENCH_JOBS`` (default: all CPUs).  Speedup asserts are
deliberately loose — CI machines share cores — while the printed numbers are
the ones worth recording.
"""

from __future__ import annotations

import os
import time

from repro.predictors.automata import A2
from repro.predictors.hrt import AHRT
from repro.predictors.pattern_table import PatternTable
from repro.predictors.two_level import TwoLevelAdaptivePredictor
from repro.sim.engine import simulate, simulate_packed
from repro.sim.runner import run_sweep
from repro.trace.columnar import pack_records
from repro.workloads.base import get_workload

SPECS = [
    "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,10SR),PT(2^10,A2),)",
    "AT(AHRT(512,8SR),PT(2^8,A2),)",
    "AT(AHRT(512,6SR),PT(2^6,A2),)",
]


def _jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", 0)) or (os.cpu_count() or 1)


def test_parallel_sweep_speedup(bench_cache, bench_scale):
    """Serial vs process-pool wall clock on a fig7-style sweep."""
    benchmarks = ["eqntott", "espresso", "gcc", "li"]
    # warm the trace cache so both timings measure simulation, not trace
    # generation (matching a second `repro run` invocation)
    run_sweep(["BTFN"], benchmarks, bench_scale, bench_cache)

    start = time.perf_counter()
    serial = run_sweep(SPECS, benchmarks, bench_scale, bench_cache)
    serial_s = time.perf_counter() - start

    jobs = _jobs()
    start = time.perf_counter()
    parallel = run_sweep(SPECS, benchmarks, bench_scale, bench_cache, jobs=jobs)
    parallel_s = time.perf_counter() - start

    print(
        f"\nfig7-style sweep ({len(SPECS)} specs x {len(benchmarks)} benchmarks,"
        f" scale={bench_scale}):"
        f"\n  serial          {serial_s:8.2f} s"
        f"\n  jobs={jobs:<2d}         {parallel_s:8.2f} s"
        f"\n  speedup         {serial_s / parallel_s:8.2f}x"
    )

    for scheme in serial.schemes():
        assert serial.accuracies(scheme) == parallel.accuracies(scheme)
    if jobs > 1 and (os.cpu_count() or 1) > 1:
        assert parallel_s < serial_s, "process pool slower than serial"


def test_packed_vs_dataclass_simulate():
    """Columnar fast path vs the record-list loop on a 50k-conditional trace.

    Uses a real workload trace (eqntott) so the mix includes the
    non-conditional records the packed no-RAS loop gets to skip; best-of-5
    timings keep shared-machine noise out of the recorded number.
    """
    records = get_workload("eqntott").generate(max_conditional=50_000).records
    packed = pack_records(records)

    def predictor():
        return TwoLevelAdaptivePredictor(AHRT(512), PatternTable(12, A2))

    def best_of(run, repeats=5):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            result = run()
            timings.append(time.perf_counter() - start)
        return min(timings), result

    records_s, baseline = best_of(lambda: simulate(predictor(), records))
    packed_s, fast = best_of(lambda: simulate_packed(predictor(), packed))

    print(
        f"\nsimulate over eqntott, 50k conditional ({len(records)} records):"
        f"\n  record list     {records_s * 1e3:8.1f} ms"
        f"\n  packed columns  {packed_s * 1e3:8.1f} ms"
        f"\n  speedup         {records_s / packed_s:8.2f}x"
    )

    assert fast == baseline
    assert packed_s < records_s, "packed loop slower than the record loop"
