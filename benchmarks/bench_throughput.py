"""Simulator throughput microbenchmarks.

Unlike the figure benches (single-shot regenerations), these use
pytest-benchmark's statistics properly: many rounds over a fixed in-memory
trace, reporting events per second for the predictor hot paths and the
trace-generating CPU.
"""

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.predictors.automata import A2
from repro.predictors.hrt import AHRT
from repro.predictors.pattern_table import PatternTable
from repro.predictors.spec import parse_spec
from repro.predictors.two_level import TwoLevelAdaptivePredictor
from repro.sim.engine import simulate
from repro.trace.synthetic import random_program

TRACE = list(random_program(static_branches=200, count=20_000, seed=5))


def test_two_level_predictor_throughput(benchmark):
    def run():
        predictor = TwoLevelAdaptivePredictor(AHRT(512), PatternTable(12, A2))
        return simulate(predictor, TRACE).accuracy

    accuracy = benchmark(run)
    assert 0.5 < accuracy <= 1.0


def test_lee_smith_predictor_throughput(benchmark):
    predictor_spec = parse_spec("LS(AHRT(512,A2),,)")

    def run():
        return simulate(predictor_spec.build(), TRACE).accuracy

    accuracy = benchmark(run)
    assert 0.5 < accuracy <= 1.0


def test_cpu_interpreter_throughput(benchmark):
    program = assemble(
        """
        _start:
            li   r2, 0
        loop:
            addi r2, r2, 1
            andi r3, r2, 1023
            bnez r3, loop
            ld   r4, 0(r5)
            add  r4, r4, r2
            br   loop
        """
    )

    def run():
        cpu = CPU(program)
        return cpu.run(max_instructions=50_000).instructions_executed

    executed = benchmark(run)
    assert executed == 50_000
