"""Regenerate the paper's fig7 (see repro.experiments.fig7_history_length)."""

from benchmarks.conftest import run_and_check


def test_fig7_history_length(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig7", bench_scale, bench_cache)
