"""Regenerate the paper's fig8 (see repro.experiments.fig8_static_training)."""

from benchmarks.conftest import run_and_check


def test_fig8_static_training(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig8", bench_scale, bench_cache)
