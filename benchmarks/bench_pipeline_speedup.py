"""Pipeline-level payoff of the paper's predictor (its motivating claim).

The abstract argues the miss-rate halving translates into large performance
gains on deep pipelines.  This bench runs the in-order front-end timing
model over every benchmark with the paper's predictor and the best
pre-existing run-time scheme, and asserts the speedup grows with flush
penalty (pipeline depth) — the "deeper pipelines need better predictors"
thesis of the introduction.
"""

from repro.predictors.spec import parse_spec
from repro.sim.pipeline import PipelineConfig, simulate_pipeline
from repro.workloads.base import get_workload, workload_names

AT_SPEC = "AT(AHRT(512,12SR),PT(2^12,A2),)"
LS_SPEC = "LS(AHRT(512,A2),,)"


def _suite_cycles(cache, scale, spec, config):
    total_cycles = 0
    total_instructions = 0
    for name in workload_names():
        trace = cache.get(get_workload(name), "test", scale)
        result = simulate_pipeline(
            parse_spec(spec).build(), trace.records, trace.mix, config
        )
        total_cycles += result.cycles
        total_instructions += result.instructions
    return total_cycles, total_instructions


def test_pipeline_speedup(benchmark, bench_scale, bench_cache):
    scale = min(bench_scale, 30_000)
    penalties = [4, 8, 16]

    def run():
        speedups = {}
        for penalty in penalties:
            config = PipelineConfig(issue_width=2, mispredict_penalty=penalty)
            at_cycles, instructions = _suite_cycles(bench_cache, scale, AT_SPEC, config)
            ls_cycles, _ = _suite_cycles(bench_cache, scale, LS_SPEC, config)
            speedups[penalty] = (ls_cycles / at_cycles, instructions / at_cycles)
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for penalty, (speedup, ipc) in speedups.items():
        print(f"flush penalty {penalty:2d} cycles: AT speedup {speedup:.3f}x  (AT IPC {ipc:.3f})")

    values = [speedup for speedup, _ in speedups.values()]
    assert all(value > 1.0 for value in values), values
    assert values == sorted(values), "speedup must grow with pipeline depth"
