"""Regenerate the paper's table3 (see repro.experiments.table3_datasets)."""

from benchmarks.conftest import run_and_check


def test_table3_datasets(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "table3", bench_scale, bench_cache)
