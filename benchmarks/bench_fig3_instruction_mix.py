"""Regenerate the paper's fig3 (see repro.experiments.fig3_instruction_mix)."""

from benchmarks.conftest import run_and_check


def test_fig3_instruction_mix(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig3", bench_scale, bench_cache)
