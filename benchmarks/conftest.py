"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one of the paper's tables or figures,
prints the regenerated rows, and asserts the experiment's shape checks.  The
trace scale is controlled by ``REPRO_BENCH_SCALE`` (conditional branches per
benchmark, default 30,000; set it to ``paper`` for the paper's twenty
million — see the "running at paper scale" recipe in docs/performance.md).

Traces are cached on disk under ``.trace_cache`` (a memory-mapped shard
store) so repeated benchmark runs skip the CPU-simulation stage.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workloads.base import TraceCache, parse_scale

DEFAULT_SCALE = 30_000


@pytest.fixture(scope="session")
def bench_scale() -> int:
    return parse_scale(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def bench_cache() -> TraceCache:
    cache_dir = Path(__file__).resolve().parent.parent / ".trace_cache"
    return TraceCache(disk_dir=cache_dir)


def run_and_check(benchmark, exp_id: str, scale: int, cache: TraceCache):
    """Regenerate one experiment under pytest-benchmark and assert shape."""
    from repro.experiments import get_experiment

    spec = get_experiment(exp_id)
    report = benchmark.pedantic(
        lambda: spec.run(max_conditional=scale, cache=cache), rounds=1, iterations=1
    )
    print()
    print(report.render())
    failures = report.failures()
    assert not failures, "shape checks failed:\n" + "\n".join(map(str, failures))
    return report
