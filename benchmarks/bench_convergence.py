"""Warm-up convergence across the suite.

Adaptive training needs warm-up — the reason this reproduction's absolute
accuracies trail a 20M-branch run.  This bench measures windowed accuracy
for the paper's configuration on every benchmark and asserts (a) every
benchmark converges within the trace, and (b) late-trace accuracy beats the
first window (training genuinely adapts).
"""

from repro.predictors.spec import parse_spec
from repro.sim.analysis import convergence_point, windowed_accuracy
from repro.workloads.base import get_workload, workload_names

AT_SPEC = "AT(AHRT(512,12SR),PT(2^12,A2),)"
WINDOW = 4_000


def test_convergence(benchmark, bench_scale, bench_cache):
    scale = max(bench_scale, 24_000)  # need several windows

    def run():
        results = {}
        for name in workload_names():
            records = bench_cache.get(get_workload(name), "test", scale).records
            curve = windowed_accuracy(parse_spec(AT_SPEC).build(), records, WINDOW)
            results[name] = (curve, convergence_point(curve, tolerance=0.015))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    failures = []
    improved = 0
    for name, (curve, settle) in results.items():
        summary = " ".join(f"{value:.3f}" for value in curve[:8])
        print(f"{name:10s} settle@{settle}  {summary}")
        if settle is None:
            failures.append(f"{name} never converges")
        late = sum(curve[len(curve) // 2 :]) / max(1, len(curve) - len(curve) // 2)
        # baseline: the weaker of the first two windows (a loop-bound code
        # can open on a trivially perfect stretch, e.g. an init loop)
        early = min(curve[:2]) if len(curve) >= 2 else curve[0]
        if late > early:
            improved += 1
        if late + 0.03 < early:
            failures.append(
                f"{name}: late accuracy {late:.3f} collapsed below early {early:.3f}"
            )
    # adaptation must help on most of the suite (a loop-bound benchmark can
    # start its first window at a trivially perfect stretch)
    if improved < 6:
        failures.append(f"only {improved}/9 benchmarks improve after warm-up")
    assert not failures, failures
