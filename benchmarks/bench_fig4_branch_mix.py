"""Regenerate the paper's fig4 (see repro.experiments.fig4_branch_mix)."""

from benchmarks.conftest import run_and_check


def test_fig4_branch_mix(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig4", bench_scale, bench_cache)
