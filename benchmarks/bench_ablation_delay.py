"""Ablation: update latency (section 3.2).

In a deep pipeline a branch's outcome arrives several slots after the next
prediction of that branch may be needed.  The DelayedUpdatePredictor models
this; accuracy should degrade monotonically with the delay, and the paper's
predict-taken-on-unresolved rule should soften the loss on tight loops.
"""

from repro.predictors.automata import A2
from repro.predictors.hrt import AHRT
from repro.predictors.pattern_table import PatternTable
from repro.predictors.two_level import DelayedUpdatePredictor, TwoLevelAdaptivePredictor
from repro.sim.engine import simulate
from repro.sim.results import geometric_mean
from repro.workloads.base import get_workload, workload_names


def _mean_accuracy(cache, scale, delay: int, predict_taken_when_pending: bool) -> float:
    accuracies = []
    for name in workload_names():
        records = cache.get(get_workload(name), "test", scale).records
        inner = TwoLevelAdaptivePredictor(AHRT(512), PatternTable(12, A2))
        predictor = (
            inner
            if delay == 0
            else DelayedUpdatePredictor(inner, delay, predict_taken_when_pending)
        )
        accuracies.append(simulate(predictor, records).accuracy)
    return geometric_mean(accuracies)


def test_ablation_update_delay(benchmark, bench_scale, bench_cache):
    scale = min(bench_scale, 20_000)  # the delayed wrapper is slower

    def run():
        return {
            "delay 0": _mean_accuracy(bench_cache, scale, 0, True),
            "delay 4 (taken-if-pending)": _mean_accuracy(bench_cache, scale, 4, True),
            "delay 4 (stall-free, no rule)": _mean_accuracy(bench_cache, scale, 4, False),
            "delay 16 (taken-if-pending)": _mean_accuracy(bench_cache, scale, 16, True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, accuracy in results.items():
        print(f"{label:32s} {accuracy:.4f}")
    assert results["delay 0"] >= results["delay 4 (taken-if-pending)"] - 0.001
    assert results["delay 4 (taken-if-pending)"] >= results["delay 16 (taken-if-pending)"] - 0.002
