"""Regenerate the paper's fig5 (see repro.experiments.fig5_automata)."""

from benchmarks.conftest import run_and_check


def test_fig5_automata(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig5", bench_scale, bench_cache)
