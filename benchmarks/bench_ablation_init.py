"""Ablation: the section 4.2 initialisation policy.

The paper initialises history registers to all ones and pattern entries to
their strongest-taken state because about 60 percent of conditional branches
are taken.  This bench measures the cold-start cost of the opposite policy
(all-zeros registers, strongest-not-taken entries) on the integer suite.
"""

import dataclasses

from repro.predictors.automata import A2
from repro.predictors.hrt import AHRT
from repro.predictors.pattern_table import PatternTable
from repro.predictors.two_level import TwoLevelAdaptivePredictor
from repro.sim.engine import simulate
from repro.sim.results import geometric_mean
from repro.workloads.base import get_workload, workload_names

A2_ZERO_INIT = dataclasses.replace(A2, name="A2z", init_state=0)


def _mean_accuracy(cache, scale, zero_init: bool) -> float:
    accuracies = []
    for name in workload_names():
        records = cache.get(get_workload(name), "test", scale).records
        automaton = A2_ZERO_INIT if zero_init else A2
        predictor = TwoLevelAdaptivePredictor(AHRT(512), PatternTable(12, automaton))
        if zero_init:
            predictor.hrt.init_payload = 0
            predictor.hrt.reset()
        accuracies.append(simulate(predictor, records).accuracy)
    return geometric_mean(accuracies)


def test_ablation_initialisation(benchmark, bench_scale, bench_cache):
    def run():
        paper = _mean_accuracy(bench_cache, bench_scale, zero_init=False)
        zeroed = _mean_accuracy(bench_cache, bench_scale, zero_init=True)
        return paper, zeroed

    paper, zeroed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npaper init (ones/state-3): {paper:.4f}")
    print(f"zero init  (zeros/state-0): {zeroed:.4f}")
    # the taken-biased initialisation must not hurt, and normally helps
    assert paper >= zeroed - 0.002, (paper, zeroed)
