"""Regenerate the paper's fig10 (see repro.experiments.fig10_comparison)."""

from benchmarks.conftest import run_and_check


def test_fig10_comparison(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig10", bench_scale, bench_cache)
