"""Regenerate the paper's table1 (see repro.experiments.table1_static_branches)."""

from benchmarks.conftest import run_and_check


def test_table1_static_branches(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "table1", bench_scale, bench_cache)
