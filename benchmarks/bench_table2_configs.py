"""Regenerate the paper's table2 (see repro.experiments.table2_configs)."""

from benchmarks.conftest import run_and_check


def test_table2_configs(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "table2", bench_scale, bench_cache)
