"""Regenerate the paper's fig9 (see repro.experiments.fig9_other_schemes)."""

from benchmarks.conftest import run_and_check


def test_fig9_other_schemes(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig9", bench_scale, bench_cache)
