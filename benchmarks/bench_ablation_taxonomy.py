"""Ablation (future work): the two-level predictor taxonomy.

Runs the organisational corners later literature named — PAp (private
pattern tables), the paper's PAg, gshare, GAg — plus a McFarling tournament
of the paper's scheme with a counter table, over the full suite.

Expected shape: the per-address family beats the global family on this
suite (PAg > gshare >= GAg); PAp eliminates pattern interference but pays
per-branch warm-up that shared tables amortise, so at reduced trace scale
it lands at or slightly below PAg (their order crosses as traces lengthen);
the tournament must not fall meaningfully below its best component.
"""

from repro.predictors.automata import A2
from repro.predictors.btb import LeeSmithPredictor
from repro.predictors.extensions import PApPredictor, TournamentPredictor
from repro.predictors.hrt import AHRT
from repro.predictors.pattern_table import PatternTable
from repro.predictors.spec import parse_spec
from repro.predictors.two_level import TwoLevelAdaptivePredictor
from repro.sim.engine import simulate
from repro.sim.results import geometric_mean
from repro.workloads.base import get_workload, workload_names


def _suite_mean(cache, scale, factory) -> float:
    accuracies = []
    for name in workload_names():
        records = cache.get(get_workload(name), "test", scale).records
        accuracies.append(simulate(factory(), records).accuracy)
    return geometric_mean(accuracies)


def test_ablation_taxonomy(benchmark, bench_scale, bench_cache):
    scale = min(bench_scale, 30_000)
    factories = {
        "PAp(12,A2) [ideal]": lambda: PApPredictor(12),
        "PAg = AT(IHRT,12SR,A2)": lambda: parse_spec(
            "AT(IHRT(,12SR),PT(2^12,A2),)"
        ).build(),
        "gshare(12,A2)": lambda: parse_spec("gshare(12)").build(),
        "GAg(12,A2)": lambda: parse_spec("GAg(12)").build(),
        "Tournament(AT,LS)": lambda: TournamentPredictor(
            TwoLevelAdaptivePredictor(AHRT(512), PatternTable(12, A2)),
            LeeSmithPredictor(AHRT(512), A2),
        ),
        "AT(AHRT512) component": lambda: parse_spec(
            "AT(AHRT(512,12SR),PT(2^12,A2),)"
        ).build(),
    }

    def run():
        return {label: _suite_mean(bench_cache, scale, factory)
                for label, factory in factories.items()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, mean in means.items():
        print(f"{label:28s} {mean:.4f}")

    assert means["PAp(12,A2) [ideal]"] >= means["PAg = AT(IHRT,12SR,A2)"] - 0.02
    assert means["PAg = AT(IHRT,12SR,A2)"] > means["GAg(12,A2)"]
    assert means["gshare(12,A2)"] >= means["GAg(12,A2)"] - 0.002
    assert means["Tournament(AT,LS)"] >= means["AT(AHRT512) component"] - 0.01
