"""Return address stack depth (section 4 methodology).

"The return address prediction may miss when the return address stack
overflows" — this bench sweeps the stack depth on the call-heavy li analog
(recursive hanoi/queens under an interpreter) and asserts return-prediction
accuracy is monotone in depth and saturates, plus that any stack at all
beats a target buffer alone (returns come back to varying call sites).
"""

from repro.predictors.ras import ReturnAddressStack
from repro.predictors.target import BranchTargetBuffer, measure_target_prediction
from repro.workloads.base import get_workload

DEPTHS = [1, 2, 4, 8, 16, 64]


def test_ras_depth(benchmark, bench_scale, bench_cache):
    records = bench_cache.get(get_workload("li"), "test", min(bench_scale, 30_000)).records

    def run():
        no_stack = measure_target_prediction(records, BranchTargetBuffer(512))
        by_depth = {}
        for depth in DEPTHS:
            stats = measure_target_prediction(
                records, BranchTargetBuffer(512), ReturnAddressStack(depth)
            )
            by_depth[depth] = stats.return_accuracy
        return no_stack.return_accuracy, by_depth

    no_stack_accuracy, by_depth = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nno RAS (BTB only): {no_stack_accuracy:.4f}")
    for depth, accuracy in by_depth.items():
        print(f"RAS depth {depth:3d}:      {accuracy:.4f}")

    accuracies = list(by_depth.values())
    assert all(
        later >= earlier - 1e-9 for earlier, later in zip(accuracies, accuracies[1:])
    ), "return accuracy must be monotone in stack depth"
    assert by_depth[64] > no_stack_accuracy, "a RAS must beat the BTB alone on returns"
    assert by_depth[64] > 0.95, "a deep stack should predict nearly all returns"
