"""Fused sweep engine vs the per-cell path, wall clock.

The fused engine (:mod:`repro.sim.sweep`) scores a whole fig7-style spec
ladder in one pass over each benchmark's trace, sharing the per-pc
grouping, history windows and compose tables that the per-cell path
rebuilds for every (spec x benchmark) cell.  This bench times three ways
of producing the *identical* :class:`~repro.sim.results.SweepResult`:

* **per-cell** — :meth:`SweepRunner.run_one` over every grid cell (the
  reference path the fused kernels are validated against);
* **fused, jobs=1** — the serial :meth:`SweepRunner.run`, one fused trace
  pass per benchmark;
* **fused, jobs=2** — the process-pool partitioning of
  :mod:`repro.sim.parallel`, one (benchmark x spec-group) task per worker.

All runners disable the sweep-result cache so the timings measure scoring,
not cache hits.  Scale follows ``REPRO_BENCH_SCALE`` (``paper`` selects
the paper's 20M conditional branches; repeats drop to 1 there), and
``REPRO_BENCH_RECORD=1`` appends a dated entry to ``BENCH_sweep.json`` at
the repo root, mirroring ``BENCH_serve.json``'s ``{"entries": [...]}``
shape — one entry per (scale, jobs, grid) config, re-runs update in place.

Skips without NumPy: the per-cell and fused paths both fall back to the
scalar engine then, so there is no fusion speedup to measure.
"""

from __future__ import annotations

import datetime
import json
import os
import time
from pathlib import Path

import pytest

from repro.predictors.spec import parse_spec
from repro.sim.backend import has_numpy
from repro.sim.runner import SweepRunner

DEFAULT_SCALE = 50_000

#: the fig7 AT history-length ladder — the grid shape every figure sweep
#: shares (same HRT geometry, varying history length / PT size)
SPECS = [
    "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,10SR),PT(2^10,A2),)",
    "AT(AHRT(512,8SR),PT(2^8,A2),)",
    "AT(AHRT(512,6SR),PT(2^6,A2),)",
]

BENCHMARKS = ["eqntott", "gcc"]

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def _bench_scale() -> int:
    from repro.workloads.base import parse_scale

    return parse_scale(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def _best_of(run, repeats):
    timings = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def _snapshot(sweep):
    """Order-stable (scheme, benchmark, accuracy) rows for equality checks."""
    return [
        (scheme, benchmark, accuracy)
        for scheme in sweep.schemes()
        for benchmark, accuracy in sorted(sweep.accuracies(scheme).items())
    ]


def _append_entry(entry: dict) -> None:
    """Append one dated entry, replacing any prior entry with the same config."""
    try:
        existing = json.loads(_RESULT_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        existing = {}
    entries = [
        row
        for row in existing.get("entries", [])
        if row.get("config") != entry["config"]
    ]
    entries.append(entry)
    _RESULT_PATH.write_text(json.dumps({"entries": entries}, indent=1) + "\n")
    print(f"  recorded -> {_RESULT_PATH}")


def test_fused_sweep_speedup(bench_cache):
    if not has_numpy():
        pytest.skip("NumPy not installed; fused kernels unavailable")
    scale = _bench_scale()
    repeats = 5 if scale <= 200_000 else 1
    parsed = [parse_spec(text) for text in SPECS]

    def runner():
        return SweepRunner(
            BENCHMARKS, scale, bench_cache, backend="auto", result_cache=None
        )

    # warm the trace cache so every leg measures scoring, not trace generation
    for benchmark in BENCHMARKS:
        runner().testing_trace(benchmark)

    def per_cell():
        r = runner()
        cells = {
            (index, benchmark): r.run_one(spec, benchmark).stats
            for index, spec in enumerate(parsed)
            for benchmark in BENCHMARKS
        }
        return r.assemble(parsed, cells)

    cell_s, baseline = _best_of(per_cell, repeats)
    fused_s, fused = _best_of(lambda: runner().run(parsed), repeats)
    jobs2_s, jobs2 = _best_of(lambda: runner().run(parsed, jobs=2), repeats)

    assert _snapshot(fused) == _snapshot(baseline), "fused sweep diverged"
    assert _snapshot(jobs2) == _snapshot(baseline), "parallel sweep diverged"

    speedup = cell_s / fused_s
    print(
        f"\nfig7 ladder ({len(SPECS)} specs x {len(BENCHMARKS)} benchmarks,"
        f" scale={scale}, best of {repeats}):"
        f"\n  per-cell        {cell_s * 1e3:10.1f} ms"
        f"\n  fused jobs=1    {fused_s * 1e3:10.1f} ms   {speedup:6.2f}x"
        f"\n  fused jobs=2    {jobs2_s * 1e3:10.1f} ms"
        f"   {cell_s / jobs2_s:6.2f}x"
    )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        _append_entry(
            {
                "config": {
                    "backend": "auto",
                    "benchmarks": BENCHMARKS,
                    "scale": scale,
                    "specs": [spec.canonical() for spec in parsed],
                },
                "date": datetime.date.today().isoformat(),
                "timings": {
                    "best_of": repeats,
                    "per_cell_ms": round(cell_s * 1e3, 1),
                    "fused_jobs1_ms": round(fused_s * 1e3, 1),
                    "fused_jobs2_ms": round(jobs2_s * 1e3, 1),
                    "speedup_jobs1": round(speedup, 2),
                    "speedup_jobs2": round(cell_s / jobs2_s, 2),
                },
            }
        )

    # the >=3x acceptance bar holds at the recorded 50k scale; CI smoke
    # scales only need fusion to not lose
    floor = 3.0 if scale >= DEFAULT_SCALE else 1.0
    assert speedup > floor, f"fused sweep speedup {speedup:.2f}x under {floor}x"
