"""Regenerate the paper's fig6 (see repro.experiments.fig6_hrt)."""

from benchmarks.conftest import run_and_check


def test_fig6_hrt(benchmark, bench_scale, bench_cache):
    run_and_check(benchmark, "fig6", bench_scale, bench_cache)
