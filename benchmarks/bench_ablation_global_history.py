"""Ablation (future work): per-address vs global history.

The paper keeps one history register per branch; later work explored a
single global register (GAg) and the hashed gshare variant.  On the paper's
benchmark mix — dominated by per-branch periodic behaviour — per-address
history should win, with gshare recovering part of the gap over raw GAg.
"""

from repro.sim.runner import run_sweep


def test_ablation_global_history(benchmark, bench_scale, bench_cache):
    specs = ["AT(AHRT(512,12SR),PT(2^12,A2),)", "gshare(12)", "GAg(12)"]

    def run():
        sweep = run_sweep(specs, max_conditional=bench_scale, cache=bench_cache)
        return {spec: sweep.mean(spec if "(" in spec else spec) for spec in sweep.schemes()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for scheme, mean in means.items():
        print(f"{scheme:36s} {mean:.4f}")
    values = list(means.values())
    at, gshare, gag = values[0], values[1], values[2]
    assert at > gag, (at, gag)
    assert gshare >= gag - 0.002, (gshare, gag)
