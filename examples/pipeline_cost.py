#!/usr/bin/env python3
"""Scenario: translating prediction accuracy into pipeline performance.

The paper's motivation is that a misprediction flushes in-flight speculative
work; with deeper pipelines and wider issue, the same miss rate costs more.
This example converts the measured miss rates into a simple CPI estimate

    CPI = 1 + branch_fraction * miss_rate * flush_penalty

for several pipeline depths, showing why "93% vs 97%" is a headline result
and not a footnote: at a 12-cycle penalty the difference is ~10% of total
execution time on the integer codes.

Run:  python examples/pipeline_cost.py
"""

from repro import get_workload, run_sweep, workload_names
from repro.workloads.base import default_cache

SCHEMES = {
    "Two-Level Adaptive (paper)": "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "2-bit counters (Lee&Smith)": "LS(AHRT(512,A2),,)",
    "Always Taken": "AlwaysTaken",
}
PENALTIES = [4, 8, 12, 16]  # flush cost in cycles
SCALE = 20_000


def main() -> None:
    print("Simulating schemes...")
    sweep = run_sweep(SCHEMES.values(), max_conditional=SCALE)

    # weighted conditional-branch fraction over the suite
    cache = default_cache()
    fractions = []
    for name in workload_names():
        mix = cache.get(get_workload(name), "test", SCALE).mix
        fractions.append(mix.conditional / mix.total_instructions)
    branch_fraction = sum(fractions) / len(fractions)
    print(f"mean conditional-branch fraction: {branch_fraction:.3f}\n")

    header = f"{'scheme':30s}{'miss':>8s}" + "".join(
        f"{penalty:>4d}-cyc" for penalty in PENALTIES
    )
    print(header)
    baseline_cpi = {}
    for label, spec in SCHEMES.items():
        miss = 1.0 - sweep.mean(spec)
        cpis = [1.0 + branch_fraction * miss * penalty for penalty in PENALTIES]
        baseline_cpi[label] = cpis
        cells = "".join(f"{cpi:8.3f}" for cpi in cpis)
        print(f"{label:30s}{miss:8.3%}{cells}")

    at = baseline_cpi["Two-Level Adaptive (paper)"]
    ls = baseline_cpi["2-bit counters (Lee&Smith)"]
    print("\nspeedup of Two-Level Adaptive over 2-bit counters:")
    for penalty, at_cpi, ls_cpi in zip(PENALTIES, at, ls):
        print(f"  {penalty:2d}-cycle flush: {ls_cpi / at_cpi - 1:+.1%}")


if __name__ == "__main__":
    main()
