#!/usr/bin/env python3
"""Scenario: diagnosing *why* a predictor misses.

The paper attributes two-level mispredictions to history interference in
finite tables and to sharing one global pattern table.  This example uses
the analysis toolkit to separate those effects on a benchmark:

1. the pattern-conflict rate (an upper bound on what PT sharing can cost),
2. the warm-up transient (windowed accuracy over the trace),
3. the residual gap to the ideal-table configuration (HRT interference).

Run:  python examples/interference_analysis.py [benchmark]
"""

import sys

from repro import get_workload, parse_spec
from repro.sim.analysis import (
    convergence_point,
    pattern_conflicts,
    windowed_accuracy,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    workload = get_workload(name)
    trace = workload.generate(max_conditional=40_000)
    records = trace.records

    print(f"benchmark: {name} ({trace.mix.conditional} conditional branches)\n")

    # 1. pattern-table contestedness at the paper's history length
    for bits in (6, 12):
        stats = pattern_conflicts(records, history_length=bits)
        print(
            f"{bits:2d}-bit patterns: {stats.patterns_used:5d} used, "
            f"{stats.contested_fraction:6.1%} contested, "
            f"conflict rate {stats.conflict_rate:6.2%}"
        )
    print("  (the conflict rate bounds what sharing one global PT can cost;")
    print("   lengthening the history separates conflicting branches — Fig 7)\n")

    # 2. warm-up behaviour of the adaptive scheme
    predictor = parse_spec("AT(AHRT(512,12SR),PT(2^12,A2),)").build()
    curve = windowed_accuracy(predictor, records, window=4_000)
    settle = convergence_point(curve, tolerance=0.01)
    print("windowed accuracy (AT, 4k-branch windows):")
    print("  " + " ".join(f"{value:.3f}" for value in curve))
    print(f"  converged from window {settle}\n")

    # 3. HRT interference: practical table vs ideal table
    from repro.predictors.base import measure_accuracy

    practical = measure_accuracy(
        parse_spec("AT(AHRT(512,12SR),PT(2^12,A2),)").build(), records
    )
    ideal = measure_accuracy(parse_spec("AT(IHRT(,12SR),PT(2^12,A2),)").build(), records)
    print(f"AT with 512-entry AHRT: {practical:.3f}")
    print(f"AT with ideal HRT:      {ideal:.3f}")
    print(f"history interference costs {ideal - practical:+.3f} (Figure 6's gap)")


if __name__ == "__main__":
    main()
