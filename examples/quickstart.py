#!/usr/bin/env python3
"""Quickstart: build the paper's predictor and measure it on one benchmark.

Run:  python examples/quickstart.py
"""

from repro import get_workload, measure_accuracy, parse_spec

# The paper's headline configuration, written in its own naming convention
# (Table 2): Two-Level Adaptive Training with a 512-entry 4-way associative
# history register table of 12-bit shift registers, and a 4096-entry global
# pattern table of A2 (2-bit saturating counter) automata.
SPEC = "AT(AHRT(512,12SR),PT(2^12,A2),)"


def main() -> None:
    predictor = parse_spec(SPEC).build()
    print(f"predictor: {predictor.name}")

    # Generate a branch trace by actually running the eqntott analog on the
    # bundled instruction-level simulator (the paper's ISIM equivalent).
    workload = get_workload("eqntott")
    trace = workload.generate(max_conditional=30_000)
    print(
        f"workload:  {workload.name} — {trace.mix.total_instructions} instructions, "
        f"{trace.mix.conditional} conditional branches"
    )

    accuracy = measure_accuracy(predictor, trace.records)
    print(f"accuracy:  {accuracy:.2%}  (miss rate {1 - accuracy:.2%})")

    # Compare against the strongest pre-existing dynamic scheme the paper
    # evaluates: Lee & Smith's per-branch 2-bit counter table.
    baseline = parse_spec("LS(AHRT(512,A2),,)").build()
    baseline_accuracy = measure_accuracy(baseline, trace.records)
    print(f"baseline:  {baseline_accuracy:.2%}  ({baseline.name})")
    improvement = (1 - baseline_accuracy) / (1 - accuracy)
    print(f"pipeline flushes reduced {improvement:.1f}x")


if __name__ == "__main__":
    main()
