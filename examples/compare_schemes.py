#!/usr/bin/env python3
"""Scenario: choosing a branch predictor for a deep-pipelined core.

Reproduces the paper's Figure 10 decision: given a fixed hardware budget
(512-entry tables), which prediction scheme minimises pipeline flushes
across a mixed integer/floating-point workload suite?

Run:  python examples/compare_schemes.py [--scale N]
"""

import argparse

from repro import run_sweep

CANDIDATES = [
    "AT(AHRT(512,12SR),PT(2^12,A2),)",  # the paper's scheme
    "LS(AHRT(512,A2),,)",               # Lee & Smith 2-bit counters
    "LS(AHRT(512,LT),,)",               # last-time prediction
    "Profile",                          # per-branch profiling bit
    "BTFN",                             # backward taken / forward not-taken
    "AlwaysTaken",
]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=int, default=30_000,
                        help="conditional branches per benchmark")
    args = parser.parse_args()

    print(f"Simulating {len(CANDIDATES)} schemes over the nine-benchmark suite...")
    sweep = run_sweep(CANDIDATES, max_conditional=args.scale)

    benchmarks = sweep.benchmarks()
    header = f"{'scheme':36s}" + "".join(f"{name[:7]:>9s}" for name in benchmarks)
    print(f"\n{header}{'Tot':>8s}{'Int':>8s}{'FP':>8s}")
    for scheme in sweep.schemes():
        accuracies = sweep.accuracies(scheme)
        cells = "".join(f"{accuracies[name]:9.3f}" for name in benchmarks)
        print(
            f"{scheme:36s}{cells}"
            f"{sweep.mean(scheme):8.3f}"
            f"{sweep.mean(scheme, 'integer'):8.3f}"
            f"{sweep.mean(scheme, 'fp'):8.3f}"
        )

    best = max(sweep.schemes(), key=sweep.mean)
    print(f"\nlowest flush rate: {best} (miss {1 - sweep.mean(best):.2%})")


if __name__ == "__main__":
    main()
