#!/usr/bin/env python3
"""Scenario: evaluating predictors on your own program.

The trace substrate is a real (small) RISC with an assembler, so you can
write any kernel, execute it, and feed the resulting branch trace to any
predictor — here, a binary-search kernel whose comparison branch is
data-dependent, a behaviour class the paper's scheme handles well when the
probe sequence repeats.

Run:  python examples/custom_workload.py
"""

from repro import measure_accuracy, parse_spec
from repro.isa import CPU, assemble
from repro.trace.stats import static_branch_census, taken_rate

# Binary search over a sorted table, repeated for a cyclic probe sequence.
SOURCE = """
_start:
    li   r20, table
    li   r21, probes
    li   r22, 0             ; probe index
search:
    shli r2, r22, 2
    add  r2, r2, r21
    ld   r3, 0(r2)          ; probe value
    addi r22, r22, 1
    li   r2, 16
    bge  r22, r2, wrap
back:
    li   r4, 0              ; lo
    li   r5, 63             ; hi
bisect:
    bgt  r4, r5, search     ; not found
    add  r6, r4, r5
    srai r6, r6, 1          ; mid
    shli r7, r6, 2
    add  r7, r7, r20
    ld   r8, 0(r7)
    beq  r8, r3, search     ; found
    blt  r8, r3, go_right   ; the data-dependent decision
    addi r5, r6, -1
    br   bisect
go_right:
    addi r4, r6, 1
    br   bisect
wrap:
    li   r22, 0
    br   back

.data
table:
""" + "\n".join(f"    .word {7 * i}" for i in range(64)) + """
probes:
""" + "\n".join(f"    .word {(railroad * 37) % 441}" for railroad in range(16))


def main() -> None:
    program = assemble(SOURCE)
    cpu = CPU(program)
    result = cpu.run(max_conditional_branches=40_000)
    records = result.branch_records

    print(f"executed {result.instructions_executed} instructions")
    print(f"conditional branches: {result.mix.conditional}")
    print(f"static branch sites:  {static_branch_census(records).static_conditional}")
    print(f"taken rate:           {taken_rate(records):.2%}\n")

    for spec in (
        "AT(AHRT(512,12SR),PT(2^12,A2),)",
        "AT(AHRT(512,6SR),PT(2^6,A2),)",
        "LS(AHRT(512,A2),,)",
        "BTFN",
    ):
        predictor = parse_spec(spec).build()
        accuracy = measure_accuracy(predictor, records)
        print(f"{spec:36s} {accuracy:.2%}")

    print(
        "\nThe probe sequence repeats every 16 searches, so the bisection"
        "\nbranch outcomes are periodic: long histories learn them, short"
        "\nhistories and per-branch counters cannot."
    )


if __name__ == "__main__":
    main()
