#!/usr/bin/env python3
"""Scenario: sizing the predictor for a hardware budget.

Sweeps the two cost axes the paper studies — history register length
(pattern table size doubles per bit) and history register table size /
organisation — and prints the accuracy grid, so an architect can pick the
cheapest configuration meeting an accuracy target.

Run:  python examples/design_space.py [--scale N]
"""

import argparse

from repro import run_sweep
from repro.predictors.cost import storage_cost

HISTORY_LENGTHS = [6, 8, 10, 12]
TABLES = ["AHRT(256", "AHRT(512", "HHRT(256", "HHRT(512"]


def spec_for(table: str, bits: int) -> str:
    return f"AT({table},{bits}SR),PT(2^{bits},A2),)"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=int, default=20_000)
    parser.add_argument("--target", type=float, default=0.92,
                        help="accuracy target to highlight")
    args = parser.parse_args()

    specs = [spec_for(table, bits) for table in TABLES for bits in HISTORY_LENGTHS]
    print(f"Sweeping {len(specs)} configurations...")
    sweep = run_sweep(specs, max_conditional=args.scale)

    print(f"\n{'table':12s}" + "".join(f"{bits:>4d}SR" for bits in HISTORY_LENGTHS))
    cheapest = None
    for table in TABLES:
        row = f"{table + ')':12s}"
        for bits in HISTORY_LENGTHS:
            mean = sweep.mean(spec_for(table, bits))
            marker = "*" if mean >= args.target else " "
            row += f"{mean:5.3f}{marker}"
            cost = storage_cost(spec_for(table, bits)).total_bits
            if mean >= args.target and (cheapest is None or cost < cheapest[0]):
                cheapest = (cost, spec_for(table, bits), mean)
        print(row)

    print(f"\n* = meets the {args.target:.0%} target")
    if cheapest:
        cost, spec, mean = cheapest
        print(f"cheapest qualifying design: {spec}  (~{cost} storage bits, {mean:.3f})")
    else:
        print("no configuration meets the target — raise the budget")


if __name__ == "__main__":
    main()
