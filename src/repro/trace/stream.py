"""Small combinators over branch-record streams.

Traces are plain iterables of :class:`~repro.trace.record.BranchRecord`, so
these helpers are ordinary generator functions.  They exist to keep the
simulation and experiment code declarative (``limit_conditional(trace, n)``
reads like the paper's "simulated for twenty million conditional branch
instructions").
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List

from repro.trace.record import BranchClass, BranchRecord


def only_conditional(records: Iterable[BranchRecord]) -> Iterator[BranchRecord]:
    """Keep only conditional-branch records."""
    for record in records:
        if record.cls is BranchClass.CONDITIONAL:
            yield record


def limit_conditional(
    records: Iterable[BranchRecord], max_conditional: int
) -> Iterator[BranchRecord]:
    """Pass records through until ``max_conditional`` conditional branches
    have been emitted, mirroring the paper's per-benchmark simulation cap.

    Non-conditional records between conditional ones are preserved; the
    stream ends immediately after the final conditional branch.
    """
    if max_conditional <= 0:
        return
    seen = 0
    for record in records:
        yield record
        if record.cls is BranchClass.CONDITIONAL:
            seen += 1
            if seen >= max_conditional:
                return


def filter_records(
    records: Iterable[BranchRecord], predicate: Callable[[BranchRecord], bool]
) -> Iterator[BranchRecord]:
    """Generic predicate filter, kept for symmetry with the other helpers."""
    return (record for record in records if predicate(record))


def tee_records(
    records: Iterable[BranchRecord], sink: List[BranchRecord]
) -> Iterator[BranchRecord]:
    """Yield records unchanged while appending each one to ``sink``.

    Useful when one pass must both feed a predictor and retain the trace
    (e.g. Static Training's profile pass followed by its test pass).
    """
    for record in records:
        sink.append(record)
        yield record
