"""Compact binary trace format with writer/reader.

Version 2 layout (all little-endian):

* 16-byte header: magic ``b"YPTRACE2"``, ``uint32`` record count,
  ``uint32`` reserved (zero).
* one 9-byte record per branch: ``uint32 pc``, ``uint8`` packed class/taken
  (bit 0 = taken, bits 1..3 = class, bit 4 = is_call), ``uint32 target``.

Version 1 (magic ``b"YPTRACE1"``) carried an additional reserved ``uint32``
per record (13 bytes each); the reader still accepts v1 files so existing
disk caches keep working, while the writer always emits v2.

The format exists so long trace generations can be cached on disk (the ISA
simulator is the expensive stage; predictor sweeps re-read the cache).  It is
deliberately simple rather than clever — traces compress well externally if
needed, and a fixed record size keeps the reader trivially seekable.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Tuple, Union

from repro.errors import TraceFormatError
from repro.trace.record import BranchClass, BranchRecord

MAGIC = b"YPTRACE2"
MAGIC_V1 = b"YPTRACE1"
_HEADER = struct.Struct("<8sII")
_RECORD = struct.Struct("<IBI")
_RECORD_V1 = struct.Struct("<IBII")

PathOrFile = Union[str, Path, IO[bytes]]


#: size in bytes of one v2 (YPTRACE2) record — the unit the prediction
#: service's record frames are counted in.
RECORD_SIZE = _RECORD.size


def _pack_flags(record: BranchRecord) -> int:
    return (
        (1 if record.taken else 0)
        | (int(record.cls) << 1)
        | (0x10 if record.is_call else 0)
    )


def _unpack_flags(flags: int) -> "tuple[bool, BranchClass, bool]":
    taken = bool(flags & 1)
    is_call = bool(flags & 0x10)
    cls_value = (flags >> 1) & 0x7
    try:
        cls = BranchClass(cls_value)
    except ValueError as exc:
        raise TraceFormatError(f"invalid branch class {cls_value}") from exc
    if cls is BranchClass.NON_BRANCH:
        raise TraceFormatError("NON_BRANCH records are not allowed in traces")
    return taken, cls, is_call


def encode_record(record: BranchRecord) -> bytes:
    """Encode one record in the v2 (YPTRACE2) 9-byte wire layout.

    The single-record unit shared by the trace-file writer and the
    prediction service's record frames (:mod:`repro.serve.protocol`).
    """
    return _RECORD.pack(
        record.pc & 0xFFFFFFFF, _pack_flags(record), record.target & 0xFFFFFFFF
    )


def decode_record(data: bytes, offset: int = 0) -> BranchRecord:
    """Decode one v2 record from ``data`` at ``offset``.

    Raises :class:`~repro.errors.TraceFormatError` on short input or an
    invalid flag byte (bad class, NON_BRANCH).
    """
    if len(data) - offset < RECORD_SIZE:
        raise TraceFormatError(
            f"truncated record: need {RECORD_SIZE} bytes,"
            f" got {max(len(data) - offset, 0)}"
        )
    pc, flags, target = _RECORD.unpack_from(data, offset)
    taken, cls, is_call = _unpack_flags(flags)
    return BranchRecord(pc=pc, cls=cls, taken=taken, target=target, is_call=is_call)


def write_trace(records: Iterable[BranchRecord], destination: PathOrFile) -> int:
    """Write ``records`` to ``destination`` (v2 format); return the count.

    ``destination`` may be a path or a binary file object.  The record count
    is written into the header, so the iterable is drained into the body
    first.
    """
    body = io.BytesIO()
    count = 0
    for record in records:
        body.write(encode_record(record))
        count += 1

    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            handle.write(_HEADER.pack(MAGIC, count, 0))
            handle.write(body.getvalue())
    else:
        destination.write(_HEADER.pack(MAGIC, count, 0))
        destination.write(body.getvalue())
    return count


def read_header(handle: IO[bytes]) -> Tuple[int, struct.Struct]:
    """Consume and validate a trace header.

    Returns the record count and the per-record :class:`struct.Struct` for
    the file's format version (the first three fields of every version are
    ``pc``, ``flags``, ``target``).
    """
    header = handle.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, count, _reserved = _HEADER.unpack(header)
    if magic == MAGIC:
        return count, _RECORD
    if magic == MAGIC_V1:
        return count, _RECORD_V1
    raise TraceFormatError(f"bad magic {magic!r}; expected {MAGIC!r} or {MAGIC_V1!r}")


def read_trace(source: PathOrFile) -> List[BranchRecord]:
    """Read a full trace into memory.

    Raises :class:`~repro.errors.TraceFormatError` on bad magic, truncated
    body, or invalid record contents.
    """
    return list(iter_trace(source))


def iter_trace(source: PathOrFile) -> Iterator[BranchRecord]:
    """Stream records from ``source`` without materialising the whole list."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            yield from _iter_handle(handle)
    else:
        yield from _iter_handle(source)


def _iter_handle(handle: IO[bytes]) -> Iterator[BranchRecord]:
    count, record_struct = read_header(handle)
    for index in range(count):
        raw = handle.read(record_struct.size)
        if len(raw) != record_struct.size:
            raise TraceFormatError(
                f"truncated trace body: header promised {count} records"
                f" ({count * record_struct.size} bytes), stream ended at record"
                f" {index} ({index * record_struct.size + len(raw)} bytes received)"
            )
        pc, flags, target = record_struct.unpack(raw)[:3]
        taken, cls, is_call = _unpack_flags(flags)
        yield BranchRecord(pc=pc, cls=cls, taken=taken, target=target, is_call=is_call)
