"""Branch trace record model.

The paper (section 4) classifies M88100 instructions into five classes:
conditional branches, subroutine returns, immediate unconditional branches,
unconditional branches on registers, and non-branch instructions.  The
branch-prediction simulator consumes a stream of *branch* events; the
non-branch instructions only matter for the instruction-mix statistics
(Figure 3), which are carried separately in :class:`InstructionMix`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple


class BranchClass(enum.IntEnum):
    """Branch classes used by the paper's methodology (section 4).

    ``NON_BRANCH`` is included so instruction-mix accounting can use the same
    enumeration; it never appears in a :class:`BranchRecord`.
    """

    CONDITIONAL = 0
    RETURN = 1
    IMM_UNCONDITIONAL = 2
    REG_UNCONDITIONAL = 3
    NON_BRANCH = 4

    @property
    def is_branch(self) -> bool:
        return self is not BranchClass.NON_BRANCH


class BranchRecord(NamedTuple):
    """One dynamic branch event.

    Attributes:
        pc: byte address of the branch instruction.
        cls: which of the four branch classes the instruction belongs to.
        taken: whether the branch was taken.  Unconditional branches and
            returns are always taken.
        target: the branch's *taken-direction* target address, recorded even
            when the branch falls through (direction predictors such as BTFN
            inspect the encoded target; the fall-through address is always
            ``pc + 4``).
        is_call: True for subroutine calls (``bsr``/``jsr``), which push a
            return address consumed later by a RETURN-class branch.
    """

    pc: int
    cls: BranchClass
    taken: bool
    target: int
    is_call: bool = False

    @property
    def is_backward(self) -> bool:
        """Whether the taken target precedes the branch (loop-closing)."""
        return self.target < self.pc

    @property
    def return_address(self) -> int:
        """Address a call's matching return should come back to."""
        return self.pc + 4


@dataclass
class InstructionMix:
    """Dynamic instruction counts by class (data behind Figures 3 and 4)."""

    conditional: int = 0
    returns: int = 0
    imm_unconditional: int = 0
    reg_unconditional: int = 0
    non_branch: int = 0

    _FIELDS = (
        ("conditional", BranchClass.CONDITIONAL),
        ("returns", BranchClass.RETURN),
        ("imm_unconditional", BranchClass.IMM_UNCONDITIONAL),
        ("reg_unconditional", BranchClass.REG_UNCONDITIONAL),
        ("non_branch", BranchClass.NON_BRANCH),
    )

    @property
    def total_instructions(self) -> int:
        return (
            self.conditional
            + self.returns
            + self.imm_unconditional
            + self.reg_unconditional
            + self.non_branch
        )

    @property
    def total_branches(self) -> int:
        return self.total_instructions - self.non_branch

    @property
    def branch_fraction(self) -> float:
        """Fraction of dynamic instructions that are branches (Figure 3)."""
        total = self.total_instructions
        return self.total_branches / total if total else 0.0

    @property
    def conditional_fraction_of_branches(self) -> float:
        """Fraction of dynamic branches that are conditional (Figure 4)."""
        branches = self.total_branches
        return self.conditional / branches if branches else 0.0

    def count(self, cls: BranchClass, n: int = 1) -> None:
        """Add ``n`` dynamic instructions of class ``cls``."""
        if cls is BranchClass.CONDITIONAL:
            self.conditional += n
        elif cls is BranchClass.RETURN:
            self.returns += n
        elif cls is BranchClass.IMM_UNCONDITIONAL:
            self.imm_unconditional += n
        elif cls is BranchClass.REG_UNCONDITIONAL:
            self.reg_unconditional += n
        else:
            self.non_branch += n

    def by_class(self) -> dict:
        """Return counts keyed by :class:`BranchClass`."""
        return {cls: getattr(self, name) for name, cls in self._FIELDS}

    def merged(self, other: "InstructionMix") -> "InstructionMix":
        """Return a new mix summing ``self`` and ``other``."""
        return InstructionMix(
            conditional=self.conditional + other.conditional,
            returns=self.returns + other.returns,
            imm_unconditional=self.imm_unconditional + other.imm_unconditional,
            reg_unconditional=self.reg_unconditional + other.reg_unconditional,
            non_branch=self.non_branch + other.non_branch,
        )
