"""Trace plumbing: record model, binary format, streams, statistics.

This subpackage is the contract between the trace *producers* (the ISA
simulator in :mod:`repro.isa`, the synthetic generators in
:mod:`repro.trace.synthetic`) and the trace *consumer* (the branch-prediction
simulator in :mod:`repro.sim`).  A trace is simply an iterable of
:class:`~repro.trace.record.BranchRecord`.
"""

from repro.trace.record import BranchClass, BranchRecord, InstructionMix
from repro.trace.columnar import PackedTrace, pack_records, read_packed_trace
from repro.trace.encoding import read_trace, write_trace
from repro.trace.stats import (
    StaticBranchCensus,
    collect_mix,
    static_branch_census,
    taken_rate,
)
from repro.trace.stream import limit_conditional, only_conditional, tee_records
from repro.trace.text_format import read_text_trace, write_text_trace

__all__ = [
    "BranchClass",
    "BranchRecord",
    "InstructionMix",
    "PackedTrace",
    "StaticBranchCensus",
    "collect_mix",
    "limit_conditional",
    "only_conditional",
    "pack_records",
    "read_packed_trace",
    "read_text_trace",
    "read_trace",
    "static_branch_census",
    "taken_rate",
    "tee_records",
    "write_text_trace",
    "write_trace",
]
