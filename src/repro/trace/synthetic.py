"""Parametric synthetic branch-trace generators.

The real evaluation traces come from running the SPEC-analog programs on the
ISA simulator (:mod:`repro.workloads`), but unit tests, property tests and
microbenchmarks need *controlled* branch behaviour: a branch with an exact
period-3 pattern, a branch with exactly 70 percent taken bias, and so on.
These generators produce such streams directly, bypassing the CPU.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.trace.record import BranchClass, BranchRecord

_TEXT_BASE = 0x1000


def _record(pc: int, taken: bool) -> BranchRecord:
    target = pc + 0x40 if taken else pc + 4
    return BranchRecord(pc=pc, cls=BranchClass.CONDITIONAL, taken=taken, target=target)


def periodic_branch(
    pattern: Sequence[bool], repetitions: int, pc: int = _TEXT_BASE
) -> Iterator[BranchRecord]:
    """A single static branch repeating an exact outcome ``pattern``.

    A two-level predictor with history length >= ``len(pattern) - 1`` learns
    such a branch perfectly after warm-up; a per-address 2-bit counter cannot
    if the pattern mixes outcomes.  This is the canonical "why Yeh-Patt wins"
    microworkload.
    """
    if not pattern:
        raise ConfigError("pattern must be non-empty")
    for _ in range(repetitions):
        for outcome in pattern:
            yield _record(pc, bool(outcome))


def biased_branch(
    taken_probability: float, count: int, pc: int = _TEXT_BASE, seed: int = 0
) -> Iterator[BranchRecord]:
    """A single branch taken independently with the given probability."""
    if not 0.0 <= taken_probability <= 1.0:
        raise ConfigError("taken_probability must be within [0, 1]")
    rng = random.Random(seed)
    for _ in range(count):
        yield _record(pc, rng.random() < taken_probability)


def loop_branch(
    trip_count: int, iterations: int, pc: int = _TEXT_BASE
) -> Iterator[BranchRecord]:
    """A backward loop branch: taken ``trip_count - 1`` times, then not taken,
    repeated for ``iterations`` loop entries.

    This is the pattern BTFN and counters handle well (one miss per exit) and
    where two-level prediction with history >= trip_count achieves zero
    steady-state misses.
    """
    if trip_count < 1:
        raise ConfigError("trip_count must be >= 1")
    pattern = [True] * (trip_count - 1) + [False]
    return periodic_branch(pattern, iterations, pc=pc)


def markov_branch(
    p_stay_taken: float,
    p_stay_not_taken: float,
    count: int,
    pc: int = _TEXT_BASE,
    seed: int = 0,
) -> Iterator[BranchRecord]:
    """A two-state Markov branch (outcome correlates with previous outcome).

    ``p_stay_taken`` is P(taken | previous taken); ``p_stay_not_taken`` is
    P(not taken | previous not taken).  High self-transition probabilities
    produce runs, which last-time predictors handle well; low ones produce
    alternation, which they handle catastrophically.
    """
    for name, p in (("p_stay_taken", p_stay_taken), ("p_stay_not_taken", p_stay_not_taken)):
        if not 0.0 <= p <= 1.0:
            raise ConfigError(f"{name} must be within [0, 1]")
    rng = random.Random(seed)
    taken = True
    for _ in range(count):
        yield _record(pc, taken)
        stay = p_stay_taken if taken else p_stay_not_taken
        if rng.random() >= stay:
            taken = not taken


def interleaved(
    branch_specs: Sequence[Tuple[int, Sequence[bool]]], repetitions: int
) -> Iterator[BranchRecord]:
    """Round-robin interleave several periodic static branches.

    ``branch_specs`` is a sequence of ``(pc, pattern)`` pairs.  Each
    repetition emits one outcome from every branch in order, cycling each
    branch through its own pattern.  Exercises per-address history isolation
    (and, under an HHRT, hash interference between the PCs).
    """
    if not branch_specs:
        raise ConfigError("at least one branch spec is required")
    positions = [0] * len(branch_specs)
    for _ in range(repetitions):
        for index, (pc, pattern) in enumerate(branch_specs):
            if not pattern:
                raise ConfigError(f"branch at {pc:#x} has an empty pattern")
            yield _record(pc, bool(pattern[positions[index]]))
            positions[index] = (positions[index] + 1) % len(pattern)


def random_program(
    static_branches: int,
    count: int,
    seed: int = 0,
    taken_bias: float = 0.6,
    periodic_fraction: float = 0.5,
    max_period: int = 8,
) -> Iterator[BranchRecord]:
    """A whole synthetic "program": many static branches, a mix of periodic
    and biased-random behaviours, visited with a skewed (hot/cold) profile.

    Roughly ``periodic_fraction`` of static branches get an exact periodic
    pattern (period 2..max_period); the rest are independently random with
    ``taken_bias``.  Visit frequencies follow a Zipf-ish skew so a small
    associative HRT sees realistic hit rates.
    """
    if static_branches < 1:
        raise ConfigError("static_branches must be >= 1")
    rng = random.Random(seed)
    pcs = [_TEXT_BASE + 4 * i for i in range(static_branches)]
    behaviours: List[Tuple[str, object]] = []
    for _ in pcs:
        if rng.random() < periodic_fraction:
            period = rng.randint(2, max(2, max_period))
            pattern = [rng.random() < taken_bias for _ in range(period)]
            behaviours.append(("periodic", pattern))
        else:
            behaviours.append(("biased", min(1.0, max(0.0, rng.gauss(taken_bias, 0.2)))))
    weights = [1.0 / (rank + 1) for rank in range(static_branches)]
    positions = [0] * static_branches
    for _ in range(count):
        index = rng.choices(range(static_branches), weights=weights)[0]
        kind, param = behaviours[index]
        if kind == "periodic":
            pattern = param  # type: ignore[assignment]
            outcome = bool(pattern[positions[index] % len(pattern)])  # type: ignore[index, arg-type]
            positions[index] += 1
        else:
            outcome = rng.random() < float(param)  # type: ignore[arg-type]
        yield _record(pcs[index], outcome)
