"""Trace statistics: instruction mix, taken rates, static branch census.

These feed Figure 3 (dynamic instruction distribution), Figure 4 (dynamic
branch-class distribution) and Table 1 (static conditional branch counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from repro.trace.record import BranchClass, BranchRecord, InstructionMix


def collect_mix(records: Iterable[BranchRecord], non_branch: int = 0) -> InstructionMix:
    """Build an :class:`InstructionMix` from a branch-record stream.

    Branch traces do not carry non-branch instructions, so their count (known
    to the producer, e.g. :meth:`repro.isa.cpu.CPU.run`) is supplied
    separately via ``non_branch``.
    """
    mix = InstructionMix(non_branch=non_branch)
    for record in records:
        mix.count(record.cls)
    return mix


def taken_rate(records: Iterable[BranchRecord]) -> float:
    """Fraction of conditional branches that were taken.

    The paper reports ~60 percent of conditional branches taken across its
    benchmarks; this helper lets tests pin our analogs to the same ballpark.
    """
    taken = 0
    total = 0
    for record in records:
        if record.cls is BranchClass.CONDITIONAL:
            total += 1
            taken += 1 if record.taken else 0
    return taken / total if total else 0.0


@dataclass
class StaticBranchCensus:
    """Static (unique-PC) branch population of a trace (Table 1).

    ``per_class`` maps each branch class to the set of distinct branch PCs
    observed; ``static_conditional`` is the Table 1 number.
    """

    per_class: Dict[BranchClass, Set[int]] = field(default_factory=dict)

    @property
    def static_conditional(self) -> int:
        return len(self.per_class.get(BranchClass.CONDITIONAL, ()))

    def static_count(self, cls: BranchClass) -> int:
        return len(self.per_class.get(cls, ()))

    def observe(self, record: BranchRecord) -> None:
        self.per_class.setdefault(record.cls, set()).add(record.pc)


def static_branch_census(records: Iterable[BranchRecord]) -> StaticBranchCensus:
    """Count distinct static branches per class over a trace."""
    census = StaticBranchCensus()
    for record in records:
        census.observe(record)
    return census


class SiteProfile:
    """Dynamic behaviour of one static branch site."""

    __slots__ = ("pc", "cls", "executions", "taken", "targets")

    def __init__(self, pc: int, cls: BranchClass):
        self.pc = pc
        self.cls = cls
        self.executions = 0
        self.taken = 0
        self.targets: Set[int] = set()

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0


def branch_site_profile(records: Iterable[BranchRecord]) -> Dict[int, SiteProfile]:
    """Per-site dynamic profile: executions, taken count, observed targets.

    The dynamic counterpart of the static analyzer's
    :func:`repro.analysis.branches.static_branch_table` — the two views are
    compared site by site in :mod:`repro.analysis.crossval`.  Sites with a
    single observed target have a statically-encoded destination; returns
    and register-indirect jumps typically accumulate several.
    """
    profiles: Dict[int, SiteProfile] = {}
    for record in records:
        profile = profiles.get(record.pc)
        if profile is None:
            profile = profiles[record.pc] = SiteProfile(record.pc, record.cls)
        profile.executions += 1
        if record.taken:
            profile.taken += 1
        profile.targets.add(record.target)
    return profiles


def conditional_pc_histogram(records: Iterable[BranchRecord]) -> Dict[int, int]:
    """Dynamic execution count per static conditional branch.

    Handy for workload debugging: a healthy analog spreads its dynamic
    branches across many static sites rather than one hot loop.
    """
    histogram: Dict[int, int] = {}
    for record in records:
        if record.cls is BranchClass.CONDITIONAL:
            histogram[record.pc] = histogram.get(record.pc, 0) + 1
    return histogram
