"""Columnar (structure-of-arrays) packed trace representation.

A branch trace is normally a ``List[BranchRecord]`` — convenient, but a
Python sweep pays tuple attribute lookups and enum identity checks for every
one of the millions of records it replays.  :class:`PackedTrace` stores the
same information as parallel machine-typed columns:

* ``pc`` / ``target`` — ``array('I')`` of 32-bit addresses,
* ``flags`` — ``bytes``, one byte per record in exactly the on-disk flag
  layout of :mod:`repro.trace.encoding` (bit 0 = taken, bits 1..3 = class,
  bit 4 = is_call),

plus three *derived* conditional-only columns (``cond_pc``, ``cond_target``,
``cond_taken``) so the direction-predictor hot loop in
:func:`repro.sim.engine.simulate_packed` touches nothing but the records it
scores.  The derived columns are computed lazily on first access (flag
validation still happens eagerly in ``__init__``): warm cache loads,
RAS-path simulations and the vectorized kernel backend never pay for boxed
tuples they do not read.  The round-trip
``records -> pack_records -> to_records`` is
lossless for every valid branch record (32-bit addresses, all four branch
classes, both flag bits).

``read_packed_trace`` parses a binary trace file straight into columns
without materialising intermediate :class:`BranchRecord` objects, which
makes warm cache hits in a parallel sweep cheap.
"""

from __future__ import annotations

from array import array
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import TraceFormatError
from repro.trace.record import BranchClass, BranchRecord

#: bits a valid flag byte may use: taken (0x01), class 0..3 (0x06), call (0x10).
_VALID_FLAG_MASK = 0x17
_CLS_MASK = 0x0E
_RETURN_BITS = int(BranchClass.RETURN) << 1

_ADDR_TYPECODE = "I" if array("I").itemsize >= 4 else "L"

#: translate table mapping a flag byte to 1 for conditional records, else 0,
#: so ``sum(flags.translate(...))`` counts conditionals without a Python loop.
_CONDITIONAL_TABLE = bytes(
    1 if not byte & _CLS_MASK else 0 for byte in range(256)
)


def pack_flags(taken: bool, cls: BranchClass, is_call: bool) -> int:
    """Pack the per-record flag byte (same layout as the binary format)."""
    return (1 if taken else 0) | (int(cls) << 1) | (0x10 if is_call else 0)


def unpack_flags(flags: int) -> Tuple[bool, BranchClass, bool]:
    """Inverse of :func:`pack_flags`; rejects invalid or non-branch classes."""
    if flags & ~_VALID_FLAG_MASK:
        cls_value = (flags >> 1) & 0x7
        if cls_value == int(BranchClass.NON_BRANCH):
            raise TraceFormatError("NON_BRANCH records are not allowed in traces")
        raise TraceFormatError(f"invalid branch flags {flags:#04x}")
    return bool(flags & 1), BranchClass((flags >> 1) & 0x3), bool(flags & 0x10)


class PackedTrace:
    """A branch trace packed into parallel columns.

    Build one with :func:`pack_records` (from records) or
    :func:`read_packed_trace` (from a binary trace file); convert back with
    :meth:`to_records`.  Iterating a :class:`PackedTrace` yields
    :class:`BranchRecord` objects, so it can stand in for a record list
    anywhere a plain iterable is expected, while
    :func:`repro.sim.engine.simulate` recognises the type and switches to
    the columnar fast path.
    """

    __slots__ = ("pc", "target", "flags", "_num_conditional", "_cond_columns")

    def __init__(self, pc: array, target: array, flags: bytes):
        if not (len(pc) == len(target) == len(flags)):
            raise TraceFormatError(
                f"column length mismatch: pc={len(pc)} target={len(target)}"
                f" flags={len(flags)}"
            )
        # Flag validation stays eager — a malformed trace must fail at
        # construction, not at first replay — but runs at C speed: a byte
        # column has at most 256 distinct values, so checking set(flags)
        # never scales with trace length.
        invalid = {f for f in set(flags) if f & ~_VALID_FLAG_MASK}
        if invalid:
            for f in flags:  # find the first offender for a precise message
                if f in invalid:
                    unpack_flags(f)  # raises
        self.pc = pc
        self.target = target
        self.flags = flags
        # bytes.translate + sum stay in C; the count is needed eagerly by
        # the stats plumbing and is cheap, unlike the boxed columns below.
        self._num_conditional = sum(flags.translate(_CONDITIONAL_TABLE))
        # The derived conditional-only columns are computed lazily (cached
        # on first access): warm cache loads and RAS-path simulations never
        # touch them, and the vector backend reads the raw byte columns
        # directly.
        self._cond_columns: Optional[
            Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[bool, ...]]
        ] = None

    def _derive_cond_columns(
        self,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[bool, ...]]:
        # Tuples rather than arrays: the replay loop reads every element
        # once per simulated predictor, and tuples hand back already-boxed
        # ints where an array would have to re-box on every pass.
        if self._cond_columns is None:
            cond_pc = []
            cond_target = []
            cond_taken = []
            append_pc = cond_pc.append
            append_target = cond_target.append
            append_taken = cond_taken.append
            pc = self.pc
            target = self.target
            for index, f in enumerate(self.flags):
                if not f & _CLS_MASK:  # BranchClass.CONDITIONAL == 0
                    append_pc(pc[index])
                    append_target(target[index])
                    append_taken(bool(f & 1))
            self._cond_columns = (tuple(cond_pc), tuple(cond_target), tuple(cond_taken))
        return self._cond_columns

    @property
    def cond_pc(self) -> Tuple[int, ...]:
        """Addresses of the conditional records (lazy, cached)."""
        return self._derive_cond_columns()[0]

    @property
    def cond_target(self) -> Tuple[int, ...]:
        """Targets of the conditional records (lazy, cached)."""
        return self._derive_cond_columns()[1]

    @property
    def cond_taken(self) -> Tuple[bool, ...]:
        """Outcomes of the conditional records (lazy, cached)."""
        return self._derive_cond_columns()[2]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.flags)

    @property
    def num_conditional(self) -> int:
        """Number of conditional-branch records in the trace."""
        return self._num_conditional

    def __iter__(self) -> Iterator[BranchRecord]:
        for pc, target, flags in zip(self.pc, self.target, self.flags):
            taken, cls, is_call = unpack_flags(flags)
            yield BranchRecord(pc=pc, cls=cls, taken=taken, target=target, is_call=is_call)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return (
            list(self.pc) == list(other.pc)
            and list(self.target) == list(other.target)
            and self.flags == other.flags
        )

    def to_records(self) -> List[BranchRecord]:
        """Unpack back into the ordinary record-list representation."""
        return list(self)


def pack_records(records: Iterable[BranchRecord]) -> PackedTrace:
    """Pack an iterable of records into a :class:`PackedTrace` (lossless)."""
    pcs = array(_ADDR_TYPECODE)
    targets = array(_ADDR_TYPECODE)
    flags = bytearray()
    for record in records:
        pcs.append(record.pc & 0xFFFFFFFF)
        targets.append(record.target & 0xFFFFFFFF)
        flags.append(pack_flags(record.taken, record.cls, record.is_call))
    return PackedTrace(pcs, targets, bytes(flags))


def read_packed_trace(source: "Union[str, Path, IO[bytes]]") -> PackedTrace:
    """Read a binary trace file (v1 or v2) directly into columns.

    Equivalent to ``pack_records(read_trace(source))`` but skips the
    per-record ``BranchRecord`` construction, so loading a cached trace costs
    a fraction of regenerating or even re-reading it record-wise.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return _read_packed_handle(handle)
    return _read_packed_handle(source)


def _read_packed_handle(handle: IO[bytes]) -> PackedTrace:
    from repro.trace import encoding

    count, record_struct = encoding.read_header(handle)
    expected_bytes = count * record_struct.size
    raw = handle.read(expected_bytes)
    if len(raw) != expected_bytes:
        raise TraceFormatError(
            f"truncated trace body: header promised {count} records"
            f" ({expected_bytes} bytes), got {len(raw)} bytes"
            f" ({len(raw) // record_struct.size} complete records)"
        )
    pcs = array(_ADDR_TYPECODE)
    targets = array(_ADDR_TYPECODE)
    flags = bytearray()
    for fields in record_struct.iter_unpack(raw):
        pcs.append(fields[0])
        flags.append(fields[1])
        targets.append(fields[2])
    return PackedTrace(pcs, targets, bytes(flags))
