"""Memory-mapped, sharded on-disk trace store.

Paper-scale runs replay ~20 million conditional branches per benchmark;
generating such a trace through the pure-Python ISA interpreter takes
minutes, so the trace *must* be paid for once per machine and then loaded
in milliseconds.  The legacy disk layer (``.trc`` files written by
:class:`~repro.workloads.base.TraceCache`) re-parsed nine bytes per record
through ``struct.iter_unpack`` on every warm load — fine at 50k records,
minutes at 20M.  This module replaces it with a *shard* store:

* One **shard file** per trace, holding the three
  :class:`~repro.trace.columnar.PackedTrace` columns as contiguous
  sections plus a JSON meta section (instruction mix and the full content
  key), so every shard is self-describing.
* Uncompressed shards are **memory-mapped** on load: the ``pc`` and
  ``target`` columns become zero-copy views into the page cache and the
  OS faults pages in as the kernels touch them.  A warm load is O(header)
  no matter the trace length.
* Shards may be **zstd-compressed** (the ``[store]`` optional extra).
  When the ``zstandard`` module is missing the store degrades gracefully
  to uncompressed shards; only *reading* an already-compressed shard
  without the module is an error (a typed :class:`StoreError`).
* Keys are **content-addressed**: the stem embeds a digest of the
  workload name, role, data-set parameters, workload version, scale and
  shard-format version, so *any* ingredient changing (a program generator
  edit, a data-set tweak, a format bump) makes the old entry unreachable
  rather than silently stale.
* The store is **bounded**: total shard bytes are kept under ``max_bytes``
  (default 4 GiB, override with ``REPRO_STORE_MAX_BYTES``) by evicting
  least-recently-used shards after each write.  Access statistics live in
  a best-effort ``index.json``; losing it costs only LRU fidelity (file
  mtimes take over), never data.

Corruption is reported through :class:`~repro.errors.StoreError` following
the trace readers' convention: promised byte/record counts next to what
was actually received.  The cache layer treats a corrupt shard as a miss
and regenerates; ``repro cache --verify`` surfaces the same errors to the
operator.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import time
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError, StoreError
from repro.trace.columnar import PackedTrace

__all__ = [
    "TraceStore",
    "ShardInfo",
    "content_key",
    "read_shard",
    "write_shard",
    "zstd_available",
    "DEFAULT_MAX_BYTES",
    "FORMAT_VERSION",
    "SHARD_SUFFIX",
]

#: bump when the shard layout changes; part of every content key.
FORMAT_VERSION = 1

SHARD_SUFFIX = ".shard"

_MAGIC = b"YPSHARD1"

#: magic, compression (0=none, 1=zstd), address itemsize, reserved,
#: record count, then the four section byte lengths (pc, target, flags,
#: meta) as stored on disk (i.e. post-compression).
_HEADER = struct.Struct("<8sBBHQQQQQ")

_COMPRESSION_NONE = 0
_COMPRESSION_ZSTD = 1
_COMPRESSION_NAMES = {_COMPRESSION_NONE: "none", _COMPRESSION_ZSTD: "zstd"}

DEFAULT_MAX_BYTES = 4 * 1024**3

_ADDR_TYPECODE = "I" if array("I").itemsize == 4 else "L"


def _zstd() -> Any:
    """The ``zstandard`` module, or ``None`` when the extra is not installed."""
    try:
        import zstandard
    except ImportError:
        return None
    return zstandard


def zstd_available() -> bool:
    """Whether compressed shards can be written (and read) in this process."""
    return _zstd() is not None


def _resolve_compression(requested: Optional[str]) -> int:
    """Map a compression request to the on-disk code.

    ``None``/``"auto"`` uses zstd when installed and degrades to
    uncompressed otherwise; an explicit ``"zstd"`` without the module is a
    configuration error rather than a silent downgrade.
    """
    if requested in (None, "auto"):
        return _COMPRESSION_ZSTD if zstd_available() else _COMPRESSION_NONE
    if requested == "none":
        return _COMPRESSION_NONE
    if requested == "zstd":
        if not zstd_available():
            raise ConfigError(
                "compression 'zstd' requested but the zstandard module is not"
                " installed (pip install 'repro-branch-prediction[store]')"
            )
        return _COMPRESSION_ZSTD
    raise ConfigError(
        f"unknown shard compression {requested!r} (choose none, zstd, or auto)"
    )


# ----------------------------------------------------------------------
# content-addressed keys
# ----------------------------------------------------------------------
def content_key(
    workload: str,
    role: str,
    scale: int,
    version: int,
    params: Optional[Dict[str, int]] = None,
) -> Tuple[str, Dict[str, Any]]:
    """The ``(stem, key_dict)`` identifying one trace in the store.

    The stem is human-scannable (``name-role-scale-vN-digest``) while the
    digest covers the *canonical JSON* of every generation ingredient —
    including the data-set parameters, which the legacy cache keys omitted
    — so a changed seed or table size can never alias a stale shard.
    """
    key = {
        "workload": workload,
        "role": role,
        "scale": int(scale),
        "version": int(version),
        "params": dict(sorted((params or {}).items())),
        "format": FORMAT_VERSION,
    }
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    stem = f"{workload}-{role}-{scale}-v{version}-{digest}"
    return stem, key


# ----------------------------------------------------------------------
# shard encode / decode
# ----------------------------------------------------------------------
def write_shard(
    path: Path,
    packed: PackedTrace,
    meta: Dict[str, Any],
    compression: Optional[str] = None,
) -> int:
    """Write ``packed`` (plus its JSON ``meta``) as one shard file.

    The write is atomic (temp file + ``os.replace``), so readers never see
    a half-written shard.  Returns the shard's size in bytes.
    """
    code = _resolve_compression(compression)
    pc_raw = bytes(memoryview(packed.pc))
    target_raw = bytes(memoryview(packed.target))
    flags_raw = packed.flags
    meta_raw = json.dumps(meta, sort_keys=True).encode()
    itemsize = memoryview(packed.pc).itemsize
    if code == _COMPRESSION_ZSTD:
        compressor = _zstd().ZstdCompressor()
        pc_raw = compressor.compress(pc_raw)
        target_raw = compressor.compress(target_raw)
        flags_raw = compressor.compress(flags_raw)
    header = _HEADER.pack(
        _MAGIC,
        code,
        itemsize,
        0,
        len(packed),
        len(pc_raw),
        len(target_raw),
        len(flags_raw),
        len(meta_raw),
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(pc_raw)
        handle.write(target_raw)
        handle.write(flags_raw)
        handle.write(meta_raw)
    os.replace(tmp, path)
    return _HEADER.size + len(pc_raw) + len(target_raw) + len(flags_raw) + len(meta_raw)


def _parse_header(path: Path, raw: bytes) -> Tuple[int, int, int, Tuple[int, int, int, int]]:
    if len(raw) < _HEADER.size:
        raise StoreError(
            f"{path.name}: shard header needs {_HEADER.size} bytes,"
            f" got {len(raw)}"
        )
    magic, code, itemsize, _reserved, count, pc_len, target_len, flags_len, meta_len = (
        _HEADER.unpack_from(raw)
    )
    if magic != _MAGIC:
        raise StoreError(f"{path.name}: bad shard magic {magic!r} (expected {_MAGIC!r})")
    if code not in _COMPRESSION_NAMES:
        raise StoreError(f"{path.name}: unknown compression code {code}")
    return code, itemsize, count, (pc_len, target_len, flags_len, meta_len)


def read_shard(path: Path) -> Tuple[PackedTrace, Dict[str, Any]]:
    """Load one shard into a :class:`PackedTrace` plus its meta dict.

    Uncompressed shards are memory-mapped: the address columns are
    zero-copy views into the mapping (the flag column is copied — the
    simulation layers need real ``bytes`` for C-speed ``translate``
    counting).  Raises :class:`StoreError` for any damage, naming the
    promised and received byte counts.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(_HEADER.size)
            code, itemsize, count, sections = _parse_header(path, head)
            total = _HEADER.size + sum(sections)
            size = os.fstat(handle.fileno()).st_size
            if size < total:
                raise StoreError(
                    f"{path.name}: truncated shard: header promises {total} bytes"
                    f" ({count} records), file has {size} bytes"
                )
            if code == _COMPRESSION_NONE:
                buffer: Any = memoryview(mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ))
            else:
                buffer = memoryview(handle.read(total - _HEADER.size))
                # shift section offsets back as if the header were present
                buffer = memoryview(bytes(_HEADER.size) + bytes(buffer))
    except OSError as exc:
        raise StoreError(f"{path.name}: unreadable shard: {exc}") from exc

    pc_len, target_len, flags_len, meta_len = sections
    offset = _HEADER.size
    pc_raw = buffer[offset:offset + pc_len]
    offset += pc_len
    target_raw = buffer[offset:offset + target_len]
    offset += target_len
    flags_raw = buffer[offset:offset + flags_len]
    offset += flags_len
    meta_raw = bytes(buffer[offset:offset + meta_len])

    if code == _COMPRESSION_ZSTD:
        zstandard = _zstd()
        if zstandard is None:
            raise StoreError(
                f"{path.name}: shard is zstd-compressed but the zstandard module"
                " is not installed (pip install 'repro-branch-prediction[store]')"
            )
        decompressor = zstandard.ZstdDecompressor()
        pc_raw = memoryview(decompressor.decompress(bytes(pc_raw), max_output_size=count * itemsize))
        target_raw = memoryview(decompressor.decompress(bytes(target_raw), max_output_size=count * itemsize))
        flags_raw = memoryview(decompressor.decompress(bytes(flags_raw), max_output_size=count))

    expected = count * itemsize
    if len(pc_raw) != expected or len(target_raw) != expected or len(flags_raw) != count:
        raise StoreError(
            f"{path.name}: column length mismatch: header promises {count}"
            f" records ({expected}B addresses, {count}B flags), got"
            f" pc={len(pc_raw)}B target={len(target_raw)}B flags={len(flags_raw)}B"
        )
    try:
        pc = pc_raw.cast("B").cast(_ADDR_TYPECODE if itemsize == 4 else "Q")
        target = target_raw.cast("B").cast(_ADDR_TYPECODE if itemsize == 4 else "Q")
    except TypeError as exc:
        raise StoreError(f"{path.name}: bad address itemsize {itemsize}") from exc
    flags = bytes(flags_raw)
    try:
        meta = json.loads(meta_raw.decode()) if meta_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"{path.name}: corrupt shard meta section: {exc}") from exc
    try:
        return PackedTrace(pc, target, flags), meta
    except Exception as exc:
        raise StoreError(f"{path.name}: corrupt shard columns: {exc}") from exc


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
@dataclass
class ShardInfo:
    """One store entry as reported by :meth:`TraceStore.entries`."""

    stem: str
    path: Path
    bytes: int
    records: int
    compression: str
    hits: int
    last_used: float
    created: float

    @property
    def name(self) -> str:
        return self.path.name


def default_max_bytes() -> int:
    """The store's size bound: ``REPRO_STORE_MAX_BYTES`` or 4 GiB."""
    value = os.environ.get("REPRO_STORE_MAX_BYTES")
    if not value:
        return DEFAULT_MAX_BYTES
    try:
        parsed = int(value)
    except ValueError as exc:
        raise ConfigError(
            f"REPRO_STORE_MAX_BYTES={value!r} is not an integer byte count"
        ) from exc
    if parsed <= 0:
        raise ConfigError("REPRO_STORE_MAX_BYTES must be positive")
    return parsed


class TraceStore:
    """A bounded, content-addressed shard store rooted at one directory.

    The cache layer (:class:`~repro.workloads.base.TraceCache`) is the
    normal client: it asks for ``load(stem)`` before generating and calls
    ``store(...)`` after.  The ``repro cache`` CLI drives the inspection
    surface (:meth:`entries`, :meth:`verify`, :meth:`evict`,
    :meth:`clear`).

    Creating a store on a directory that holds the legacy ``.trc`` cache
    performs a one-shot invalidation: legacy entries predate
    content-addressed keys (their names never covered data-set parameters)
    and re-reading them record-wise is exactly the cost this store exists
    to remove, so they are deleted rather than migrated in place.
    """

    def __init__(
        self,
        root: "Path | str",
        max_bytes: Optional[int] = None,
        compression: Optional[str] = None,
    ):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes if max_bytes is not None else default_max_bytes()
        if self.max_bytes <= 0:
            raise ConfigError("TraceStore max_bytes must be positive")
        self.compression = compression
        self._index_path = self.root / "index.json"
        self._invalidate_legacy()

    # -- legacy migration ----------------------------------------------
    def _invalidate_legacy(self) -> None:
        """Delete pre-store ``.trc`` cache entries (and their sidecars) once."""
        marker = self.root / ".store-format"
        if marker.exists():
            return
        removed = False
        for trc in self.root.glob("*.trc"):
            sidecar = trc.with_suffix(".json")
            for stale in (trc, sidecar):
                try:
                    stale.unlink()
                    removed = True
                except OSError:
                    pass
        try:
            marker.write_text(f"{FORMAT_VERSION}\n")
        except OSError:
            pass  # read-only roots simply re-scan (and find nothing) next time
        if removed:
            self._write_index({})

    # -- index (best-effort access stats) ------------------------------
    def _read_index(self) -> Dict[str, Dict[str, Any]]:
        try:
            data = json.loads(self._index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        entries = data.get("entries") if isinstance(data, dict) else None
        return entries if isinstance(entries, dict) else {}

    def _write_index(self, entries: Dict[str, Dict[str, Any]]) -> None:
        tmp = self._index_path.with_name(self._index_path.name + ".tmp")
        try:
            tmp.write_text(json.dumps({"entries": entries}, sort_keys=True, indent=1))
            os.replace(tmp, self._index_path)
        except OSError:
            pass  # stats are advisory; never fail a run over them

    def _touch(self, stem: str, size: int, records: int, code: int, hit: bool) -> None:
        entries = self._read_index()
        entry = entries.setdefault(
            stem,
            {
                "created": time.time(),
                "hits": 0,
                "bytes": size,
                "records": records,
                "compression": _COMPRESSION_NAMES[code],
            },
        )
        entry["bytes"] = size
        entry["records"] = records
        entry["compression"] = _COMPRESSION_NAMES[code]
        entry["last_used"] = time.time()
        if hit:
            entry["hits"] = int(entry.get("hits", 0)) + 1
        self._write_index(entries)

    # -- core API ------------------------------------------------------
    def path_for(self, stem: str) -> Path:
        return self.root / f"{stem}{SHARD_SUFFIX}"

    def has(self, stem: str) -> bool:
        return self.path_for(stem).exists()

    def load(self, stem: str) -> Optional[Tuple[PackedTrace, Dict[str, Any]]]:
        """Load a shard by stem; ``None`` on a miss *or* a corrupt shard.

        A damaged shard behaves exactly like a miss (the caller regenerates
        and overwrites it); use :meth:`verify` / :func:`read_shard` when the
        damage itself is the point.
        """
        path = self.path_for(stem)
        if not path.exists():
            return None
        try:
            packed, meta = read_shard(path)
        except StoreError:
            return None
        try:
            code, _itemsize, _count, _sections = read_shard_header(path)
            size = path.stat().st_size
        except (StoreError, OSError):  # pragma: no cover - raced deletion
            code, size = _COMPRESSION_NONE, 0
        self._touch(stem, size, len(packed), code, hit=True)
        return packed, meta

    def store(
        self,
        stem: str,
        packed: PackedTrace,
        meta: Dict[str, Any],
    ) -> Path:
        """Write one shard, update stats, and evict down to ``max_bytes``.

        The entry just written is never its own eviction victim, so a trace
        larger than the bound still lands (the store simply holds that one
        oversized shard until something newer replaces it).
        """
        path = self.path_for(stem)
        size = write_shard(path, packed, meta, self.compression)
        code = _resolve_compression(self.compression)
        self._touch(stem, size, len(packed), code, hit=False)
        self._evict_to_bound(keep=stem)
        return path

    # -- bounding ------------------------------------------------------
    def entries(self) -> List[ShardInfo]:
        """Every shard on disk, stats merged from the index (mtime fallback)."""
        index = self._read_index()
        infos: List[ShardInfo] = []
        for path in sorted(self.root.glob(f"*{SHARD_SUFFIX}")):
            stem = path.name[: -len(SHARD_SUFFIX)]
            try:
                stat = path.stat()
            except OSError:
                continue
            entry = index.get(stem, {})
            records = int(entry.get("records", 0))
            compression = str(entry.get("compression", "?"))
            if not entry:
                try:
                    code, _itemsize, records, _sections = read_shard_header(path)
                    compression = _COMPRESSION_NAMES[code]
                except StoreError:
                    compression = "corrupt"
            infos.append(
                ShardInfo(
                    stem=stem,
                    path=path,
                    bytes=stat.st_size,
                    records=records,
                    compression=compression,
                    hits=int(entry.get("hits", 0)),
                    last_used=float(entry.get("last_used", stat.st_mtime)),
                    created=float(entry.get("created", stat.st_mtime)),
                )
            )
        return infos

    def total_bytes(self) -> int:
        return sum(info.bytes for info in self.entries())

    def _evict_to_bound(self, keep: Optional[str] = None) -> List[str]:
        infos = self.entries()
        total = sum(info.bytes for info in infos)
        victims: List[str] = []
        if total <= self.max_bytes:
            return victims
        for info in sorted(infos, key=lambda i: i.last_used):
            if total <= self.max_bytes:
                break
            if info.stem == keep:
                continue
            try:
                info.path.unlink()
            except OSError:
                continue
            total -= info.bytes
            victims.append(info.stem)
        if victims:
            entries = self._read_index()
            for stem in victims:
                entries.pop(stem, None)
            self._write_index(entries)
        return victims

    def evict(self, stems: List[str]) -> List[str]:
        """Explicitly drop the named shards; returns the stems removed."""
        removed: List[str] = []
        entries = self._read_index()
        for stem in stems:
            path = self.path_for(stem)
            try:
                path.unlink()
                removed.append(stem)
            except OSError:
                pass
            entries.pop(stem, None)
        self._write_index(entries)
        return removed

    def clear(self) -> int:
        """Drop every shard; returns how many were removed."""
        count = 0
        for path in self.root.glob(f"*{SHARD_SUFFIX}"):
            try:
                path.unlink()
                count += 1
            except OSError:
                pass
        self._write_index({})
        return count

    def verify(self) -> List[Tuple[str, Optional[StoreError]]]:
        """Fully read every shard; ``(stem, None)`` when sound, else the error."""
        results: List[Tuple[str, Optional[StoreError]]] = []
        for path in sorted(self.root.glob(f"*{SHARD_SUFFIX}")):
            stem = path.name[: -len(SHARD_SUFFIX)]
            try:
                read_shard(path)
            except StoreError as exc:
                results.append((stem, exc))
            else:
                results.append((stem, None))
        return results


def read_shard_header(path: Path) -> Tuple[int, int, int, Tuple[int, int, int, int]]:
    """Parse just a shard's header: ``(compression, itemsize, records,
    section_lengths)``.  Raises :class:`StoreError` on damage."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(_HEADER.size)
    except OSError as exc:
        raise StoreError(f"{path.name}: unreadable shard: {exc}") from exc
    return _parse_header(path, head)
