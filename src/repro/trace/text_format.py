"""Human-readable text trace format.

One record per line::

    # yptrace-text v1
    0x00001040 C T 0x00001080
    0x00001100 I T 0x00002000 call
    0x00002010 R T 0x00001104

Columns: branch pc, class letter (``C`` conditional, ``R`` return, ``I``
immediate-unconditional, ``G`` register-unconditional), outcome (``T``/``N``),
taken-direction target, and an optional ``call`` marker.  Lines starting
with ``#`` and blank lines are ignored, so traces can be annotated.

The binary format (:mod:`repro.trace.encoding`) is the storage format; this
one exists for eyeballs, diffs and toolchain interchange.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from repro.errors import TraceFormatError
from repro.trace.record import BranchClass, BranchRecord

HEADER = "# yptrace-text v1"

_CLASS_TO_LETTER = {
    BranchClass.CONDITIONAL: "C",
    BranchClass.RETURN: "R",
    BranchClass.IMM_UNCONDITIONAL: "I",
    BranchClass.REG_UNCONDITIONAL: "G",
}
_LETTER_TO_CLASS = {letter: cls for cls, letter in _CLASS_TO_LETTER.items()}

PathOrFile = Union[str, Path, IO[str]]


def format_record(record: BranchRecord) -> str:
    """Render one record as a text line."""
    fields = [
        f"{record.pc:#010x}",
        _CLASS_TO_LETTER[record.cls],
        "T" if record.taken else "N",
        f"{record.target:#010x}",
    ]
    if record.is_call:
        fields.append("call")
    return " ".join(fields)


def parse_record(line: str, line_number: int = 0) -> BranchRecord:
    """Parse one text line back into a record."""
    fields = line.split()
    if len(fields) not in (4, 5):
        raise TraceFormatError(f"line {line_number}: expected 4-5 fields, got {len(fields)}")
    try:
        pc = int(fields[0], 16)
        target = int(fields[3], 16)
    except ValueError as exc:
        raise TraceFormatError(f"line {line_number}: bad address field") from exc
    try:
        cls = _LETTER_TO_CLASS[fields[1]]
    except KeyError as exc:
        raise TraceFormatError(
            f"line {line_number}: unknown class letter {fields[1]!r}"
        ) from exc
    if fields[2] not in ("T", "N"):
        raise TraceFormatError(f"line {line_number}: outcome must be T or N")
    is_call = False
    if len(fields) == 5:
        if fields[4] != "call":
            raise TraceFormatError(f"line {line_number}: unknown marker {fields[4]!r}")
        is_call = True
    return BranchRecord(pc=pc, cls=cls, taken=fields[2] == "T", target=target, is_call=is_call)


def write_text_trace(records: Iterable[BranchRecord], destination: PathOrFile) -> int:
    """Write a text trace; returns the record count."""
    lines = [HEADER]
    count = 0
    for record in records:
        lines.append(format_record(record))
        count += 1
    content = "\n".join(lines) + "\n"
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(content)
    else:
        destination.write(content)
    return count


def read_text_trace(source: PathOrFile) -> List[BranchRecord]:
    """Read a whole text trace into memory."""
    return list(iter_text_trace(source))


def iter_text_trace(source: PathOrFile) -> Iterator[BranchRecord]:
    """Stream records from a text trace (comments/blank lines skipped)."""
    if isinstance(source, (str, Path)):
        with open(source, "r") as handle:
            yield from _iter_lines(handle)
    else:
        yield from _iter_lines(source)


def _iter_lines(handle: IO[str]) -> Iterator[BranchRecord]:
    for line_number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_record(line, line_number)
