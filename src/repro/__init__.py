"""repro — a full reproduction of Yeh & Patt, "Two-Level Adaptive Training
Branch Prediction" (MICRO-24, 1991).

The package provides, from the bottom up:

* :mod:`repro.isa` — an M88100-flavoured RISC (assembler + instruction-level
  simulator), standing in for the paper's Motorola 88100 ISIM trace source.
* :mod:`repro.trace` — branch-trace records, a binary trace format, stream
  helpers, statistics, and synthetic trace generators.
* :mod:`repro.workloads` — nine SPEC89-analog benchmark programs with the
  Table 3 training/testing data-set structure.
* :mod:`repro.predictors` — the Two-Level Adaptive Training predictor (the
  paper's contribution) plus every comparator: Static Training, Lee & Smith
  BTB designs, Always Taken, BTFN, profiling, a return address stack, and
  the Table 2 configuration-string parser.
* :mod:`repro.sim` — the trace-driven branch-prediction simulator and sweep
  runner with geometric-mean reporting.
* :mod:`repro.experiments` — one runnable experiment per table/figure of the
  paper, each with explicit shape checks.

Quick start::

    from repro import parse_spec, run_sweep

    sweep = run_sweep(
        ["AT(AHRT(512,12SR),PT(2^12,A2),)", "LS(AHRT(512,A2),,)", "BTFN"],
        max_conditional=20_000,
    )
    for scheme in sweep.schemes():
        print(scheme, round(sweep.mean(scheme), 3))
"""

from repro.errors import (
    AssemblyError,
    ConfigError,
    EncodingError,
    ExecutionError,
    ReproError,
    SpecParseError,
    TraceFormatError,
    WorkloadError,
)
from repro.experiments import experiment_ids, get_experiment
from repro.predictors import (
    ConditionalBranchPredictor,
    PredictorSpec,
    TwoLevelAdaptivePredictor,
    measure_accuracy,
    parse_spec,
)
from repro.sim import SweepResult, run_sweep, simulate
from repro.trace import BranchClass, BranchRecord
from repro.workloads import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AssemblyError",
    "BranchClass",
    "BranchRecord",
    "ConditionalBranchPredictor",
    "ConfigError",
    "EncodingError",
    "ExecutionError",
    "PredictorSpec",
    "ReproError",
    "SpecParseError",
    "SweepResult",
    "TraceFormatError",
    "TwoLevelAdaptivePredictor",
    "WorkloadError",
    "__version__",
    "experiment_ids",
    "get_experiment",
    "get_workload",
    "measure_accuracy",
    "parse_spec",
    "run_sweep",
    "simulate",
    "workload_names",
]
