"""Binary instruction encoding.

Each instruction is one 32-bit word:

* R-format: ``opcode[31:26] rd[25:21] rs1[20:16] rs2[15:11] 0[10:0]``
* I-format: ``opcode[31:26] rd[25:21] rs1[20:16] imm16[15:0]``
* B-format: ``opcode[31:26] 0[25:21]  rs1[20:16] rs2? -- see note`` —
  conditional branches carry two source registers and a 16-bit word offset,
  laid out as ``opcode[31:26] rs1[25:21] rs2[20:16] offset16[15:0]``
* J-format: ``opcode[31:26] offset26[25:0]`` for ``br``/``bsr``;
  ``opcode[31:26] rs1[25:21] 0[20:0]`` for ``jmp``/``jsr``; all-zero operand
  field for ``rts``.

The interpreter executes decoded :class:`~repro.isa.instructions.Instruction`
objects directly; this module exists so programs can be stored as genuine
machine words (tests verify the encode/decode round-trip over the whole ISA).
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instructions import (
    B_FORMAT,
    I_FORMAT,
    IMM16_MAX,
    IMM16_MIN,
    Instruction,
    OFFSET16_MAX,
    OFFSET16_MIN,
    OFFSET26_MAX,
    OFFSET26_MIN,
    Opcode,
    R_FORMAT,
)
from repro.isa.registers import NUM_REGISTERS

_WORD_MASK = 0xFFFFFFFF


def _check_register(value: int, role: str) -> None:
    if not 0 <= value < NUM_REGISTERS:
        raise EncodingError(f"{role} out of range: {value}")


def _to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _to_signed(value: int, bits: int) -> int:
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit


def encode(instruction: Instruction) -> int:
    """Encode one instruction to its 32-bit machine word."""
    opcode = instruction.opcode
    word = int(opcode) << 26

    if opcode in R_FORMAT:
        for value, role in (
            (instruction.rd, "rd"),
            (instruction.rs1, "rs1"),
            (instruction.rs2, "rs2"),
        ):
            _check_register(value, role)
        word |= instruction.rd << 21 | instruction.rs1 << 16 | instruction.rs2 << 11
    elif opcode in I_FORMAT:
        _check_register(instruction.rd, "rd")
        _check_register(instruction.rs1, "rs1")
        if not IMM16_MIN <= instruction.imm <= IMM16_MAX:
            raise EncodingError(f"imm16 out of range: {instruction.imm}")
        word |= instruction.rd << 21 | instruction.rs1 << 16 | _to_unsigned(instruction.imm, 16)
    elif opcode in B_FORMAT:
        _check_register(instruction.rs1, "rs1")
        _check_register(instruction.rs2, "rs2")
        if not OFFSET16_MIN <= instruction.imm <= OFFSET16_MAX:
            raise EncodingError(f"branch offset out of range: {instruction.imm}")
        word |= instruction.rs1 << 21 | instruction.rs2 << 16 | _to_unsigned(instruction.imm, 16)
    elif opcode in (Opcode.BR, Opcode.BSR):
        if not OFFSET26_MIN <= instruction.imm <= OFFSET26_MAX:
            raise EncodingError(f"jump offset out of range: {instruction.imm}")
        word |= _to_unsigned(instruction.imm, 26)
    elif opcode in (Opcode.JMP, Opcode.JSR):
        _check_register(instruction.rs1, "rs1")
        word |= instruction.rs1 << 21
    elif opcode in (Opcode.RTS, Opcode.NOP, Opcode.HALT):
        pass
    else:  # pragma: no cover - enum is closed, defensive only
        raise EncodingError(f"unknown opcode {opcode!r}")
    return word & _WORD_MASK


def decode(word: int) -> Instruction:
    """Decode one 32-bit machine word, raising
    :class:`~repro.errors.EncodingError` on an invalid opcode."""
    if not 0 <= word <= _WORD_MASK:
        raise EncodingError(f"machine word out of range: {word:#x}")
    opcode_value = word >> 26
    try:
        opcode = Opcode(opcode_value)
    except ValueError as exc:
        raise EncodingError(f"invalid opcode field {opcode_value}") from exc

    if opcode in R_FORMAT:
        return Instruction(
            opcode,
            rd=(word >> 21) & 0x1F,
            rs1=(word >> 16) & 0x1F,
            rs2=(word >> 11) & 0x1F,
        )
    if opcode in I_FORMAT:
        return Instruction(
            opcode,
            rd=(word >> 21) & 0x1F,
            rs1=(word >> 16) & 0x1F,
            imm=_to_signed(word & 0xFFFF, 16),
        )
    if opcode in B_FORMAT:
        return Instruction(
            opcode,
            rs1=(word >> 21) & 0x1F,
            rs2=(word >> 16) & 0x1F,
            imm=_to_signed(word & 0xFFFF, 16),
        )
    if opcode in (Opcode.BR, Opcode.BSR):
        return Instruction(opcode, imm=_to_signed(word & 0x3FFFFFF, 26))
    if opcode in (Opcode.JMP, Opcode.JSR):
        return Instruction(opcode, rs1=(word >> 21) & 0x1F)
    # RTS, NOP, HALT
    return Instruction(opcode)


def encode_program(instructions: "list[Instruction]") -> "list[int]":
    """Encode a sequence of instructions to machine words."""
    return [encode(instruction) for instruction in instructions]


def decode_program(words: "list[int]") -> "list[Instruction]":
    """Decode a sequence of machine words back to instructions."""
    return [decode(word) for word in words]
