"""Disassembler: inverse of the assembler, for debugging and round-trip tests.

Branch targets are rendered as absolute hex addresses (the assembler accepts
numeric targets, so disassembled text re-assembles to the same program when
placed at the same base address).
"""

from __future__ import annotations

from repro.isa.instructions import (
    B_FORMAT,
    I_FORMAT,
    Instruction,
    Opcode,
    R_FORMAT,
)
from repro.isa.program import Program
from repro.isa.registers import register_name


def disassemble_instruction(instruction: Instruction, pc: int) -> str:
    """Render one instruction at byte address ``pc`` as assembly text."""
    opcode = instruction.opcode
    name = opcode.name.lower()

    if opcode in R_FORMAT:
        return (
            f"{name} {register_name(instruction.rd)}, "
            f"{register_name(instruction.rs1)}, {register_name(instruction.rs2)}"
        )
    if opcode in (Opcode.LD, Opcode.ST, Opcode.LDB, Opcode.STB):
        return (
            f"{name} {register_name(instruction.rd)}, "
            f"{instruction.imm}({register_name(instruction.rs1)})"
        )
    if opcode is Opcode.LUI:
        return f"{name} {register_name(instruction.rd)}, {instruction.imm & 0xFFFF}"
    if opcode in I_FORMAT:
        return (
            f"{name} {register_name(instruction.rd)}, "
            f"{register_name(instruction.rs1)}, {instruction.imm}"
        )
    if opcode in B_FORMAT:
        target = pc + 4 + 4 * instruction.imm
        return (
            f"{name} {register_name(instruction.rs1)}, "
            f"{register_name(instruction.rs2)}, {target:#x}"
        )
    if opcode in (Opcode.BR, Opcode.BSR):
        target = pc + 4 + 4 * instruction.imm
        return f"{name} {target:#x}"
    if opcode in (Opcode.JMP, Opcode.JSR):
        return f"{name} {register_name(instruction.rs1)}"
    return name  # rts / nop / halt


def disassemble_program(program: Program) -> str:
    """Render a whole program, one ``address: text`` line per instruction."""
    lines = []
    for index, instruction in enumerate(program.instructions):
        pc = program.text_base + 4 * index
        lines.append(f"{pc:#010x}: {disassemble_instruction(instruction, pc)}")
    return "\n".join(lines)
