"""An M88100-flavoured 32-bit RISC: the trace-generating substrate.

The paper drives its branch-prediction simulator with instruction traces from
a Motorola 88100 instruction-level simulator.  This subpackage provides the
equivalent: a small fixed-width RISC with

* 32 general registers (``r0`` hardwired to zero, ``r1`` the link register),
* a two-pass assembler with labels, data directives and pseudo-instructions,
* a binary instruction encoding with a verified encode/decode round-trip,
* an instruction-level interpreter (:class:`~repro.isa.cpu.CPU`) that counts
  the dynamic instruction mix and emits
  :class:`~repro.trace.record.BranchRecord` events for every branch.

The branch classes match the paper's methodology exactly: conditional
branches, subroutine returns (``rts``), immediate unconditional branches
(``br``/``bsr``), and unconditional branches on registers (``jmp``/``jsr``).
"""

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU, CPUResult
from repro.isa.disassembler import disassemble_instruction, disassemble_program
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction, Opcode, branch_class_of
from repro.isa.memory import Memory
from repro.isa.program import Program
from repro.isa.registers import LINK_REGISTER, NUM_REGISTERS, SP_REGISTER, register_number

__all__ = [
    "CPU",
    "CPUResult",
    "Instruction",
    "LINK_REGISTER",
    "Memory",
    "NUM_REGISTERS",
    "Opcode",
    "Program",
    "SP_REGISTER",
    "assemble",
    "branch_class_of",
    "decode",
    "disassemble_instruction",
    "disassemble_program",
    "encode",
    "register_number",
]
