"""Sparse data memory.

Word-granular storage over a dict keyed by word index, so workloads can place
data anywhere in the 32-bit address space without reserving it.  Byte
accesses (``ldb``/``stb``) are implemented over the word store with
big-endian byte order, matching the M88100.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import ExecutionError

WORD_MASK = 0xFFFFFFFF


class Memory:
    """Byte-addressed, word-backed sparse memory.

    Unwritten locations read as zero.  Word accesses must be 4-byte aligned;
    misalignment raises :class:`~repro.errors.ExecutionError` (the M88100
    faults on misaligned accesses too).
    """

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def load_word(self, address: int) -> int:
        if address & 3:
            raise ExecutionError(f"misaligned word load at {address:#x}")
        return self._words.get(address >> 2, 0)

    def store_word(self, address: int, value: int) -> None:
        if address & 3:
            raise ExecutionError(f"misaligned word store at {address:#x}")
        self._words[address >> 2] = value & WORD_MASK

    def load_byte(self, address: int) -> int:
        """Load one unsigned byte (big-endian within the word)."""
        word = self._words.get(address >> 2, 0)
        shift = (3 - (address & 3)) * 8
        return (word >> shift) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        """Store one byte (big-endian within the word)."""
        index = address >> 2
        shift = (3 - (address & 3)) * 8
        word = self._words.get(index, 0)
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._words[index] = word & WORD_MASK

    def store_words(self, address: int, values: Iterable[int]) -> None:
        """Bulk store consecutive words starting at ``address``."""
        if address & 3:
            raise ExecutionError(f"misaligned bulk store at {address:#x}")
        index = address >> 2
        for offset, value in enumerate(values):
            self._words[index + offset] = value & WORD_MASK

    def load_words(self, address: int, count: int) -> "list[int]":
        """Bulk load ``count`` consecutive words starting at ``address``."""
        if address & 3:
            raise ExecutionError(f"misaligned bulk load at {address:#x}")
        index = address >> 2
        return [self._words.get(index + offset, 0) for offset in range(count)]

    def footprint_words(self) -> int:
        """Number of distinct words ever written (for tests/diagnostics)."""
        return len(self._words)

    def clear(self) -> None:
        self._words.clear()
