"""Two-pass assembler for the repro ISA.

Source syntax::

    ; full-line or trailing comment ("#" also starts a comment)
    _start:
        li    r2, 100           ; pseudo: load 32-bit immediate
        li    r3, table         ; symbols resolve to absolute addresses
    loop:
        ld    r4, 0(r3)         ; word load, numeric offset only
        addi  r3, r3, 4
        addi  r2, r2, -1
        bgt   r2, r0, loop      ; conditional branch to label
        halt
    .data
    table:  .word 1, 2, 0x10, end-4
    buf:    .space 64           ; 64 zero words

Constants can be named with ``.equ NAME, expression`` (usable anywhere an
expression is), and ``.align N`` advances the data cursor to the next
multiple of ``N`` words.

Two passes: the first sizes every statement (pseudo-instructions expand to a
known instruction count) and assigns label addresses; the second emits
decoded :class:`~repro.isa.instructions.Instruction` objects with all label
references resolved.  Text starts at ``text_base``, data at ``data_base``.

Pseudo-instructions: ``li rd, expr`` (1 or 2 machine instructions), ``mov rd,
rs``, ``subi rd, rs, imm``, ``neg rd, rs``, ``not rd, rs``, and the
zero-compare branches ``beqz/bnez/bltz/bgez/bgtz/blez rs, label``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.isa.instructions import (
    B_FORMAT,
    I_FORMAT,
    IMM16_MAX,
    IMM16_MIN,
    Instruction,
    OFFSET16_MAX,
    OFFSET16_MIN,
    OFFSET26_MAX,
    OFFSET26_MIN,
    Opcode,
    R_FORMAT,
)
from repro.isa.program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program
from repro.isa.registers import register_number

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?[\w.$+\-]*)\((\w+)\)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

_ZERO_BRANCH_PSEUDOS = {
    "beqz": Opcode.BEQ,
    "bnez": Opcode.BNE,
    "bltz": Opcode.BLT,
    "bgez": Opcode.BGE,
    "bgtz": Opcode.BGT,
    "blez": Opcode.BLE,
}

_MNEMONICS = {op.name.lower(): op for op in Opcode}


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _split_operands(rest: str, line_no: int) -> List[str]:
    if not rest:
        return []
    operands = [part.strip() for part in rest.split(",")]
    if any(not part for part in operands):
        raise AssemblyError("empty operand", line_no)
    return operands


def _parse_number(token: str) -> Optional[int]:
    try:
        return int(token, 0)
    except ValueError:
        return None


@dataclass
class _Statement:
    """One source statement after pass 1 (sized, not yet resolved)."""

    line_no: int
    mnemonic: str
    operands: List[str]
    address: int
    size_words: int


class _Assembler:
    def __init__(self, source: str, text_base: int, data_base: int):
        self.source = source
        self.text_base = text_base
        self.data_base = data_base
        self.symbols: Dict[str, int] = {}
        self.statements: List[_Statement] = []
        self.data_words: List[Tuple[int, str, int]] = []  # (address, expr, line)
        self.instructions: List[Instruction] = []
        self.data: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # expression evaluation (numbers, symbols, symbol +/- number)
    # ------------------------------------------------------------------
    def eval_expr(self, token: str, line_no: int) -> int:
        token = token.strip()
        value = _parse_number(token)
        if value is not None:
            return value
        match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-])\s*(\w+)$", token)
        if match:
            base = self._symbol_value(match.group(1), line_no)
            offset = _parse_number(match.group(3))
            if offset is None:
                raise AssemblyError(f"bad offset in expression {token!r}", line_no)
            return base + offset if match.group(2) == "+" else base - offset
        if _SYMBOL_RE.match(token):
            return self._symbol_value(token, line_no)
        raise AssemblyError(f"cannot evaluate expression {token!r}", line_no)

    def _symbol_value(self, name: str, line_no: int) -> int:
        if name not in self.symbols:
            raise AssemblyError(f"undefined symbol {name!r}", line_no)
        return self.symbols[name]

    # ------------------------------------------------------------------
    # pass 1: size statements, place labels
    # ------------------------------------------------------------------
    def pass1(self) -> None:
        section = "text"
        text_cursor = self.text_base
        data_cursor = self.data_base

        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw)
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in self.symbols:
                    raise AssemblyError(f"duplicate label {label!r}", line_no)
                self.symbols[label] = text_cursor if section == "text" else data_cursor
                line = line[match.end():].strip()
            if not line:
                continue

            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1].strip() if len(parts) > 1 else ""

            if mnemonic == ".text":
                section = "text"
                continue
            if mnemonic == ".data":
                section = "data"
                continue
            if mnemonic == ".equ":
                parts_equ = _split_operands(rest, line_no)
                if len(parts_equ) != 2:
                    raise AssemblyError(".equ takes NAME, expression", line_no)
                name = parts_equ[0]
                if not _SYMBOL_RE.match(name):
                    raise AssemblyError(f"bad .equ name {name!r}", line_no)
                if name in self.symbols:
                    raise AssemblyError(f"duplicate label {name!r}", line_no)
                self.symbols[name] = self.eval_expr(parts_equ[1], line_no)
                continue
            if mnemonic == ".align":
                if section != "data":
                    raise AssemblyError(".align outside .data section", line_no)
                count = _parse_number(rest)
                if count is None or count < 1:
                    raise AssemblyError(f"bad .align count {rest!r}", line_no)
                step = 4 * count
                data_cursor = ((data_cursor + step - 1) // step) * step
                continue
            if mnemonic == ".word":
                if section != "data":
                    raise AssemblyError(".word outside .data section", line_no)
                for expr in _split_operands(rest, line_no):
                    self.data_words.append((data_cursor, expr, line_no))
                    data_cursor += 4
                continue
            if mnemonic == ".space":
                if section != "data":
                    raise AssemblyError(".space outside .data section", line_no)
                count = _parse_number(rest)
                if count is None or count < 0:
                    raise AssemblyError(f"bad .space count {rest!r}", line_no)
                data_cursor += 4 * count
                continue
            if mnemonic.startswith("."):
                raise AssemblyError(f"unknown directive {mnemonic!r}", line_no)

            if section != "text":
                raise AssemblyError("instruction outside .text section", line_no)
            operands = _split_operands(rest, line_no)
            size = self._statement_size(mnemonic, operands, line_no)
            self.statements.append(
                _Statement(line_no, mnemonic, operands, text_cursor, size)
            )
            text_cursor += 4 * size

    def _statement_size(self, mnemonic: str, operands: List[str], line_no: int) -> int:
        if mnemonic != "li":
            return 1
        if len(operands) != 2:
            raise AssemblyError("li takes 2 operands", line_no)
        value = _parse_number(operands[1])
        if value is not None and IMM16_MIN <= value <= IMM16_MAX:
            return 1
        return 2  # lui + ori (symbols always use the long form)

    # ------------------------------------------------------------------
    # pass 2: emit instructions and data
    # ------------------------------------------------------------------
    def pass2(self) -> None:
        for statement in self.statements:
            self.instructions.extend(self._emit(statement))
        for address, expr, line_no in self.data_words:
            self.data.append((address, self.eval_expr(expr, line_no) & 0xFFFFFFFF))

    def _emit(self, st: _Statement) -> List[Instruction]:
        mnemonic, ops, line_no = st.mnemonic, st.operands, st.line_no

        # --- pseudo-instructions -------------------------------------
        if mnemonic == "li":
            return self._emit_li(st)
        if mnemonic == "mov":
            self._arity(ops, 2, line_no, "mov")
            return [Instruction(Opcode.ADDI, rd=self._reg(ops[0], line_no),
                                rs1=self._reg(ops[1], line_no), imm=0)]
        if mnemonic == "subi":
            self._arity(ops, 3, line_no, "subi")
            imm = self.eval_expr(ops[2], line_no)
            return [Instruction(Opcode.ADDI, rd=self._reg(ops[0], line_no),
                                rs1=self._reg(ops[1], line_no),
                                imm=self._check_imm16(-imm, line_no))]
        if mnemonic == "neg":
            self._arity(ops, 2, line_no, "neg")
            return [Instruction(Opcode.SUB, rd=self._reg(ops[0], line_no),
                                rs1=0, rs2=self._reg(ops[1], line_no))]
        if mnemonic == "not":
            self._arity(ops, 2, line_no, "not")
            return [Instruction(Opcode.XORI, rd=self._reg(ops[0], line_no),
                                rs1=self._reg(ops[1], line_no), imm=-1)]
        if mnemonic in _ZERO_BRANCH_PSEUDOS:
            self._arity(ops, 2, line_no, mnemonic)
            opcode = _ZERO_BRANCH_PSEUDOS[mnemonic]
            offset = self._branch_offset(ops[1], st.address, line_no, OFFSET16_MIN, OFFSET16_MAX)
            return [Instruction(opcode, rs1=self._reg(ops[0], line_no), rs2=0, imm=offset)]

        # --- machine instructions ------------------------------------
        opcode = _MNEMONICS.get(mnemonic)
        if opcode is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no)

        if opcode in R_FORMAT:
            self._arity(ops, 3, line_no, mnemonic)
            return [Instruction(opcode, rd=self._reg(ops[0], line_no),
                                rs1=self._reg(ops[1], line_no),
                                rs2=self._reg(ops[2], line_no))]
        if opcode in (Opcode.LD, Opcode.ST, Opcode.LDB, Opcode.STB):
            self._arity(ops, 2, line_no, mnemonic)
            base, offset = self._mem_operand(ops[1], line_no)
            return [Instruction(opcode, rd=self._reg(ops[0], line_no), rs1=base,
                                imm=self._check_imm16(offset, line_no))]
        if opcode is Opcode.LUI:
            self._arity(ops, 2, line_no, mnemonic)
            value = self.eval_expr(ops[1], line_no)
            if not 0 <= value <= 0xFFFF:
                raise AssemblyError(f"lui immediate out of range: {value}", line_no)
            return [Instruction(opcode, rd=self._reg(ops[0], line_no),
                                imm=self._as_signed16(value))]
        if opcode in I_FORMAT:
            self._arity(ops, 3, line_no, mnemonic)
            imm = self.eval_expr(ops[2], line_no)
            if opcode in (Opcode.ANDI, Opcode.ORI, Opcode.XORI):
                if not -(1 << 15) <= imm <= 0xFFFF:
                    raise AssemblyError(f"imm16 out of range: {imm}", line_no)
                imm = self._as_signed16(imm & 0xFFFF)
            else:
                imm = self._check_imm16(imm, line_no)
            return [Instruction(opcode, rd=self._reg(ops[0], line_no),
                                rs1=self._reg(ops[1], line_no), imm=imm)]
        if opcode in B_FORMAT:
            self._arity(ops, 3, line_no, mnemonic)
            offset = self._branch_offset(ops[2], st.address, line_no, OFFSET16_MIN, OFFSET16_MAX)
            return [Instruction(opcode, rs1=self._reg(ops[0], line_no),
                                rs2=self._reg(ops[1], line_no), imm=offset)]
        if opcode in (Opcode.BR, Opcode.BSR):
            self._arity(ops, 1, line_no, mnemonic)
            offset = self._branch_offset(ops[0], st.address, line_no, OFFSET26_MIN, OFFSET26_MAX)
            return [Instruction(opcode, imm=offset)]
        if opcode in (Opcode.JMP, Opcode.JSR):
            self._arity(ops, 1, line_no, mnemonic)
            return [Instruction(opcode, rs1=self._reg(ops[0], line_no))]
        if opcode in (Opcode.RTS, Opcode.NOP, Opcode.HALT):
            self._arity(ops, 0, line_no, mnemonic)
            return [Instruction(opcode)]
        raise AssemblyError(f"unhandled opcode {opcode!r}", line_no)  # pragma: no cover

    def _emit_li(self, st: _Statement) -> List[Instruction]:
        self._arity(st.operands, 2, st.line_no, "li")
        rd = self._reg(st.operands[0], st.line_no)
        value = self.eval_expr(st.operands[1], st.line_no) & 0xFFFFFFFF
        if st.size_words == 1:
            signed = value if value <= IMM16_MAX else value - (1 << 32)
            return [Instruction(Opcode.ADDI, rd=rd, rs1=0,
                                imm=self._check_imm16(signed, st.line_no))]
        high, low = value >> 16, value & 0xFFFF
        emitted = [Instruction(Opcode.LUI, rd=rd, imm=self._as_signed16(high))]
        emitted.append(Instruction(Opcode.ORI, rd=rd, rs1=rd, imm=self._as_signed16(low)))
        return emitted

    # ------------------------------------------------------------------
    # operand helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _arity(ops: List[str], expected: int, line_no: int, name: str) -> None:
        if len(ops) != expected:
            raise AssemblyError(
                f"{name} takes {expected} operand(s), got {len(ops)}", line_no
            )

    @staticmethod
    def _reg(token: str, line_no: int) -> int:
        try:
            return register_number(token)
        except AssemblyError as exc:
            raise AssemblyError(str(exc), line_no) from None

    def _mem_operand(self, token: str, line_no: int) -> Tuple[int, int]:
        match = _MEM_OPERAND_RE.match(token.replace(" ", ""))
        if not match:
            raise AssemblyError(f"bad memory operand {token!r}", line_no)
        offset_text = match.group(1) or "0"
        offset = self.eval_expr(offset_text, line_no)
        return self._reg(match.group(2), line_no), offset

    def _branch_offset(
        self, token: str, pc: int, line_no: int, lo: int, hi: int
    ) -> int:
        target = self.eval_expr(token, line_no)
        delta = target - (pc + 4)
        if delta & 3:
            raise AssemblyError(f"branch target {target:#x} not word-aligned", line_no)
        offset = delta >> 2
        if not lo <= offset <= hi:
            raise AssemblyError(f"branch offset out of range: {offset}", line_no)
        return offset

    @staticmethod
    def _check_imm16(value: int, line_no: int) -> int:
        if not IMM16_MIN <= value <= IMM16_MAX:
            raise AssemblyError(f"imm16 out of range: {value}", line_no)
        return value

    @staticmethod
    def _as_signed16(value: int) -> int:
        return value - (1 << 16) if value & 0x8000 else value


def assemble(
    source: str,
    text_base: int = DEFAULT_TEXT_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> Program:
    """Assemble ``source`` into a :class:`~repro.isa.program.Program`.

    Raises :class:`~repro.errors.AssemblyError` with the offending line
    number on any syntax or range error.
    """
    assembler = _Assembler(source, text_base, data_base)
    assembler.pass1()
    assembler.pass2()
    return Program(
        instructions=assembler.instructions,
        data=assembler.data,
        symbols=assembler.symbols,
        text_base=text_base,
    )
