"""Instruction-level interpreter with branch-trace hooks.

This is the counterpart of the paper's Motorola 88100 ISIM: it executes an
assembled :class:`~repro.isa.program.Program`, counts the dynamic
instruction mix per class (Figures 3 and 4), and records a
:class:`~repro.trace.record.BranchRecord` for every executed branch.

The ``run`` loop is deliberately written as one flat dispatch chain over
integer opcode values with everything hot cached in locals — this is the
single performance-critical function in the repository (every trace event
passes through it), so readability concessions are confined here and the
instruction semantics are each a line or two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ExecutionError
from repro.isa.instructions import Opcode
from repro.isa.memory import Memory
from repro.isa.program import Program
from repro.trace.record import BranchClass, BranchRecord, InstructionMix

_WORD = 0xFFFFFFFF
_SIGN = 0x80000000


def _signed(value: int) -> int:
    """Interpret a 32-bit unsigned register value as signed."""
    return value - 0x100000000 if value & _SIGN else value


@dataclass
class CPUResult:
    """Outcome of one :meth:`CPU.run` call."""

    mix: InstructionMix
    branch_records: List[BranchRecord]
    instructions_executed: int
    halted: bool
    final_pc: int

    @property
    def conditional_branches(self) -> int:
        return self.mix.conditional


class CPU:
    """The interpreter.

    Args:
        program: assembled program; its data segment is loaded into memory.
        memory: optional pre-populated :class:`~repro.isa.memory.Memory`
            (a fresh one is created otherwise).

    Registers are exposed as the ``regs`` list for tests and for workloads
    that want to pass parameters in registers. ``r0`` reads as zero; writes
    to it are discarded.
    """

    def __init__(self, program: Program, memory: Optional[Memory] = None):
        self.program = program
        self.memory = memory if memory is not None else Memory()
        for address, word in program.data:
            self.memory.store_word(address, word)
        self.regs: List[int] = [0] * 32
        self.pc = program.entry
        self.halted = False

    def run(
        self,
        max_instructions: Optional[int] = None,
        max_conditional_branches: Optional[int] = None,
        collect_branches: bool = True,
    ) -> CPUResult:
        """Execute until HALT or a limit is reached.

        Args:
            max_instructions: stop after this many dynamic instructions.
            max_conditional_branches: stop after this many conditional
                branches have executed (the paper's per-benchmark cap).
            collect_branches: when False, branch records are not retained
                (mix statistics are still counted) — useful for mix-only runs.
        """
        program = self.program
        instrs = program.instructions
        text_base = program.text_base
        n_instrs = len(instrs)
        memory = self.memory
        mem_words = memory._words  # noqa: SLF001 - hot path, same package
        regs = self.regs
        pc = self.pc

        records: List[BranchRecord] = []
        append = records.append if collect_branches else None

        # Mix counters (locals; folded into InstructionMix at the end).
        n_cond = n_ret = n_imm_unc = n_reg_unc = n_non = 0
        executed = 0
        halted = False

        limit_i = max_instructions if max_instructions is not None else -1
        limit_b = max_conditional_branches if max_conditional_branches is not None else -1

        # Opcode integer constants, cached as locals.
        NOP, HALT = int(Opcode.NOP), int(Opcode.HALT)
        ADD, SUB, MUL, DIVS, REMS = (
            int(Opcode.ADD), int(Opcode.SUB), int(Opcode.MUL),
            int(Opcode.DIVS), int(Opcode.REMS),
        )
        AND_, OR_, XOR_ = int(Opcode.AND), int(Opcode.OR), int(Opcode.XOR)
        SHL, SHR, SRA = int(Opcode.SHL), int(Opcode.SHR), int(Opcode.SRA)
        ADDI, MULI = int(Opcode.ADDI), int(Opcode.MULI)
        ANDI, ORI, XORI = int(Opcode.ANDI), int(Opcode.ORI), int(Opcode.XORI)
        SHLI, SHRI, SRAI, LUI = (
            int(Opcode.SHLI), int(Opcode.SHRI), int(Opcode.SRAI), int(Opcode.LUI),
        )
        LD, ST, LDB, STB = int(Opcode.LD), int(Opcode.ST), int(Opcode.LDB), int(Opcode.STB)
        BEQ, BNE, BLT, BGE, BLE, BGT = (
            int(Opcode.BEQ), int(Opcode.BNE), int(Opcode.BLT),
            int(Opcode.BGE), int(Opcode.BLE), int(Opcode.BGT),
        )
        BR, BSR, JMP, JSR, RTS = (
            int(Opcode.BR), int(Opcode.BSR), int(Opcode.JMP),
            int(Opcode.JSR), int(Opcode.RTS),
        )
        CLS_COND = BranchClass.CONDITIONAL
        CLS_RET = BranchClass.RETURN
        CLS_IMM = BranchClass.IMM_UNCONDITIONAL
        CLS_REG = BranchClass.REG_UNCONDITIONAL
        make = BranchRecord

        while True:
            if executed == limit_i or n_cond == limit_b:
                break
            index = (pc - text_base) >> 2
            if pc & 3 or not 0 <= index < n_instrs:
                self.pc = pc
                raise ExecutionError("instruction fetch outside text segment", pc=pc)
            op, rd, rs1, rs2, imm = instrs[index]
            executed += 1
            next_pc = pc + 4

            if op == ADDI:
                if rd:
                    regs[rd] = (regs[rs1] + imm) & _WORD
                n_non += 1
            elif BEQ <= op <= BGT:
                a = regs[rs1]
                b = regs[rs2]
                if op == BEQ:
                    taken = a == b
                elif op == BNE:
                    taken = a != b
                else:
                    sa = a - 0x100000000 if a & _SIGN else a
                    sb = b - 0x100000000 if b & _SIGN else b
                    if op == BLT:
                        taken = sa < sb
                    elif op == BGE:
                        taken = sa >= sb
                    elif op == BLE:
                        taken = sa <= sb
                    else:
                        taken = sa > sb
                target = next_pc + (imm << 2)
                n_cond += 1
                if append is not None:
                    append(make(pc, CLS_COND, taken, target))
                if taken:
                    next_pc = target
            elif op == LD:
                if rd:
                    regs[rd] = mem_words.get((regs[rs1] + imm) >> 2, 0)
                n_non += 1
            elif op == ST:
                address = regs[rs1] + imm
                mem_words[address >> 2] = regs[rd]
                n_non += 1
            elif op == ADD:
                if rd:
                    regs[rd] = (regs[rs1] + regs[rs2]) & _WORD
                n_non += 1
            elif op == SUB:
                if rd:
                    regs[rd] = (regs[rs1] - regs[rs2]) & _WORD
                n_non += 1
            elif op == MUL:
                if rd:
                    regs[rd] = (_signed(regs[rs1]) * _signed(regs[rs2])) & _WORD
                n_non += 1
            elif op == AND_:
                if rd:
                    regs[rd] = regs[rs1] & regs[rs2]
                n_non += 1
            elif op == OR_:
                if rd:
                    regs[rd] = regs[rs1] | regs[rs2]
                n_non += 1
            elif op == XOR_:
                if rd:
                    regs[rd] = regs[rs1] ^ regs[rs2]
                n_non += 1
            elif op == SHL:
                if rd:
                    regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _WORD
                n_non += 1
            elif op == SHR:
                if rd:
                    regs[rd] = regs[rs1] >> (regs[rs2] & 31)
                n_non += 1
            elif op == SRA:
                if rd:
                    regs[rd] = (_signed(regs[rs1]) >> (regs[rs2] & 31)) & _WORD
                n_non += 1
            elif op == MULI:
                if rd:
                    regs[rd] = (_signed(regs[rs1]) * imm) & _WORD
                n_non += 1
            elif op == ANDI:
                if rd:
                    regs[rd] = regs[rs1] & (imm & 0xFFFF)
                n_non += 1
            elif op == ORI:
                if rd:
                    regs[rd] = regs[rs1] | (imm & 0xFFFF)
                n_non += 1
            elif op == XORI:
                if rd:
                    regs[rd] = regs[rs1] ^ (imm & 0xFFFF)
                n_non += 1
            elif op == SHLI:
                if rd:
                    regs[rd] = (regs[rs1] << (imm & 31)) & _WORD
                n_non += 1
            elif op == SHRI:
                if rd:
                    regs[rd] = regs[rs1] >> (imm & 31)
                n_non += 1
            elif op == SRAI:
                if rd:
                    regs[rd] = (_signed(regs[rs1]) >> (imm & 31)) & _WORD
                n_non += 1
            elif op == LUI:
                if rd:
                    regs[rd] = (imm & 0xFFFF) << 16
                n_non += 1
            elif op == LDB:
                address = regs[rs1] + imm
                word = mem_words.get(address >> 2, 0)
                if rd:
                    regs[rd] = (word >> ((3 - (address & 3)) * 8)) & 0xFF
                n_non += 1
            elif op == STB:
                address = regs[rs1] + imm
                windex = address >> 2
                shift = (3 - (address & 3)) * 8
                word = mem_words.get(windex, 0)
                mem_words[windex] = (word & ~(0xFF << shift)) | ((regs[rd] & 0xFF) << shift)
                n_non += 1
            elif op == DIVS:
                divisor = _signed(regs[rs2])
                if divisor == 0:
                    self.pc = pc
                    raise ExecutionError("division by zero", pc=pc)
                quotient = int(_signed(regs[rs1]) / divisor)  # trunc toward zero
                if rd:
                    regs[rd] = quotient & _WORD
                n_non += 1
            elif op == REMS:
                divisor = _signed(regs[rs2])
                if divisor == 0:
                    self.pc = pc
                    raise ExecutionError("division by zero", pc=pc)
                dividend = _signed(regs[rs1])
                if rd:
                    regs[rd] = (dividend - int(dividend / divisor) * divisor) & _WORD
                n_non += 1
            elif op == BR:
                target = next_pc + (imm << 2)
                n_imm_unc += 1
                if append is not None:
                    append(make(pc, CLS_IMM, True, target))
                next_pc = target
            elif op == BSR:
                target = next_pc + (imm << 2)
                regs[1] = next_pc
                n_imm_unc += 1
                if append is not None:
                    append(make(pc, CLS_IMM, True, target, True))
                next_pc = target
            elif op == RTS:
                target = regs[1]
                n_ret += 1
                if append is not None:
                    append(make(pc, CLS_RET, True, target))
                next_pc = target
            elif op == JMP:
                target = regs[rs1]
                n_reg_unc += 1
                if append is not None:
                    append(make(pc, CLS_REG, True, target))
                next_pc = target
            elif op == JSR:
                target = regs[rs1]
                regs[1] = next_pc
                n_reg_unc += 1
                if append is not None:
                    append(make(pc, CLS_REG, True, target, True))
                next_pc = target
            elif op == NOP:
                n_non += 1
            elif op == HALT:
                n_non += 1
                halted = True
                pc = next_pc
                break
            else:  # pragma: no cover - enum is closed, defensive only
                self.pc = pc
                raise ExecutionError(f"unimplemented opcode {op}", pc=pc)

            pc = next_pc

        self.pc = pc
        self.halted = halted
        mix = InstructionMix(
            conditional=n_cond,
            returns=n_ret,
            imm_unconditional=n_imm_unc,
            reg_unconditional=n_reg_unc,
            non_branch=n_non,
        )
        return CPUResult(
            mix=mix,
            branch_records=records,
            instructions_executed=executed,
            halted=halted,
            final_pc=pc,
        )
