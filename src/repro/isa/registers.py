"""Register file conventions.

Following the M88100: 32 general-purpose registers, ``r0`` hardwired to zero
and ``r1`` used as the subroutine link register by ``bsr``/``jsr``.  We add a
software convention of ``r30`` as stack pointer for workloads that need one
(the hardware does not treat it specially).
"""

from __future__ import annotations

from repro.errors import AssemblyError

NUM_REGISTERS = 32
ZERO_REGISTER = 0
LINK_REGISTER = 1
SP_REGISTER = 30

_ALIASES = {
    "zero": ZERO_REGISTER,
    "lr": LINK_REGISTER,
    "sp": SP_REGISTER,
}


def register_number(name: str) -> int:
    """Parse a register operand (``r7``, ``sp``, ``lr``, ``zero``) to its
    number, raising :class:`~repro.errors.AssemblyError` on anything else."""
    token = name.strip().lower()
    if token in _ALIASES:
        return _ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        number = int(token[1:])
        if 0 <= number < NUM_REGISTERS:
            return number
    raise AssemblyError(f"invalid register {name!r}")


def register_name(number: int) -> str:
    """Canonical printable name for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"register number out of range: {number}")
    return f"r{number}"
