"""Assembled program image.

A :class:`Program` couples the decoded text segment (a list of instructions
laid out contiguously from ``text_base``), the initial data segment, and the
symbol table produced by the assembler.  It is what the CPU loads and what
the disassembler walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ExecutionError
from repro.isa.instructions import Instruction

DEFAULT_TEXT_BASE = 0x0000_1000
DEFAULT_DATA_BASE = 0x0010_0000


@dataclass
class Program:
    """An executable image.

    Attributes:
        instructions: decoded text segment; instruction ``i`` lives at byte
            address ``text_base + 4 * i``.
        data: initial data segment as ``(address, word)`` pairs.
        symbols: label name -> byte address.
        text_base: base byte address of the text segment.
        entry: byte address execution starts at (defaults to ``text_base``,
            or the ``_start`` symbol when the source defines one).
    """

    instructions: List[Instruction]
    data: List[Tuple[int, int]] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    text_base: int = DEFAULT_TEXT_BASE
    entry: int = -1

    def __post_init__(self) -> None:
        if self.entry < 0:
            self.entry = self.symbols.get("_start", self.text_base)

    @property
    def text_end(self) -> int:
        """First byte address past the text segment."""
        return self.text_base + 4 * len(self.instructions)

    def address_of(self, label: str) -> int:
        """Resolve a label, raising :class:`~repro.errors.ExecutionError` if
        it is not defined (callers usually hold labels from the same source,
        so a miss is a bug worth failing loudly on)."""
        try:
            return self.symbols[label]
        except KeyError as exc:
            raise ExecutionError(f"undefined symbol {label!r}") from exc

    def instruction_at(self, address: int) -> Instruction:
        """Fetch the decoded instruction at a byte address."""
        index = (address - self.text_base) >> 2
        if address & 3 or not 0 <= index < len(self.instructions):
            raise ExecutionError("instruction fetch outside text segment", pc=address)
        return self.instructions[index]

    def __len__(self) -> int:
        return len(self.instructions)
