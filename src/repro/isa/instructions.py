"""Instruction set definition.

Fixed 32-bit instructions in four formats:

* **R** — register-register ALU ops: ``op rd, rs1, rs2``
* **I** — register-immediate ALU ops and memory ops: ``op rd, rs1, imm16``
* **B** — conditional branches: ``op rs1, rs2, offset16`` (signed word offset
  relative to the *next* pc)
* **J** — unconditional control flow: ``br``/``bsr`` with a signed 26-bit word
  offset; ``jmp``/``jsr``/``rts`` with a register.

Branch classification follows the paper's section 4: ``beq``-family are
conditional; ``rts`` is a subroutine return; ``br``/``bsr`` are immediate
unconditional; ``jmp``/``jsr`` are unconditional on a register.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, NamedTuple, Tuple

from repro.trace.record import BranchClass


class Opcode(enum.IntEnum):
    """All machine opcodes (pseudo-instructions never reach this level)."""

    NOP = 0
    HALT = 1
    # R-format ALU
    ADD = 2
    SUB = 3
    MUL = 4
    DIVS = 5
    REMS = 6
    AND = 7
    OR = 8
    XOR = 9
    SHL = 10
    SHR = 11
    SRA = 12
    # I-format ALU
    ADDI = 13
    MULI = 14
    ANDI = 15
    ORI = 16
    XORI = 17
    SHLI = 18
    SHRI = 19
    SRAI = 20
    LUI = 21
    # Memory (I-format: rd, imm16(rs1))
    LD = 22
    ST = 23
    LDB = 24
    STB = 25
    # Conditional branches (B-format)
    BEQ = 26
    BNE = 27
    BLT = 28
    BGE = 29
    BLE = 30
    BGT = 31
    # Unconditional control flow (J-format)
    BR = 32
    BSR = 33
    JMP = 34
    JSR = 35
    RTS = 36


R_FORMAT = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIVS,
        Opcode.REMS,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SRA,
    }
)

I_FORMAT = frozenset(
    {
        Opcode.ADDI,
        Opcode.MULI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
        Opcode.SRAI,
        Opcode.LUI,
        Opcode.LD,
        Opcode.ST,
        Opcode.LDB,
        Opcode.STB,
    }
)

B_FORMAT = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT}
)

J_FORMAT = frozenset({Opcode.BR, Opcode.BSR, Opcode.JMP, Opcode.JSR, Opcode.RTS})

CONDITIONAL_BRANCHES = B_FORMAT

_BRANCH_CLASSES = {
    Opcode.BEQ: BranchClass.CONDITIONAL,
    Opcode.BNE: BranchClass.CONDITIONAL,
    Opcode.BLT: BranchClass.CONDITIONAL,
    Opcode.BGE: BranchClass.CONDITIONAL,
    Opcode.BLE: BranchClass.CONDITIONAL,
    Opcode.BGT: BranchClass.CONDITIONAL,
    Opcode.BR: BranchClass.IMM_UNCONDITIONAL,
    Opcode.BSR: BranchClass.IMM_UNCONDITIONAL,
    Opcode.JMP: BranchClass.REG_UNCONDITIONAL,
    Opcode.JSR: BranchClass.REG_UNCONDITIONAL,
    Opcode.RTS: BranchClass.RETURN,
}


def branch_class_of(opcode: Opcode) -> BranchClass:
    """Map an opcode to the paper's five-way instruction classification."""
    return _BRANCH_CLASSES.get(opcode, BranchClass.NON_BRANCH)


class Instruction(NamedTuple):
    """One decoded instruction.

    ``imm`` holds the I-format immediate, or the branch word offset for
    B/J-format control flow (relative to the next pc).  Unused fields are
    zero.  ``Instruction`` is a NamedTuple rather than a dataclass because the
    interpreter touches millions of them and tuple field access is the
    fastest attribute access available in CPython.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def branch_class(self) -> BranchClass:
        return branch_class_of(self.opcode)

    @property
    def is_branch(self) -> bool:
        return self.opcode in _BRANCH_CLASSES


# Range limits for validation (signed immediates are two's-complement).
IMM16_MIN, IMM16_MAX = -(1 << 15), (1 << 15) - 1
OFFSET16_MIN, OFFSET16_MAX = -(1 << 15), (1 << 15) - 1
OFFSET26_MIN, OFFSET26_MAX = -(1 << 25), (1 << 25) - 1


# ----------------------------------------------------------------------
# Operand use/def metadata.
#
# The static analyses (repro.analysis) need to know which registers an
# instruction reads and writes without re-deriving the interpreter's
# semantics.  The tables mirror cpu.CPU.run exactly: stores read their
# "destination" field as the value source, calls define the link register,
# and rts reads it.
# ----------------------------------------------------------------------
_LINK = 1  # r1, the bsr/jsr link register (see isa.registers)

#: I-format opcodes whose ``rd`` is a *source* (the stored value).
STORE_OPCODES = frozenset({Opcode.ST, Opcode.STB})

#: opcodes that write no register at all.
_NO_WRITE = frozenset(
    {Opcode.NOP, Opcode.HALT, Opcode.BR, Opcode.JMP, Opcode.RTS}
) | B_FORMAT | STORE_OPCODES


def registers_read(instruction: Instruction) -> Tuple[int, ...]:
    """Register numbers this instruction reads, in operand order.

    ``r0`` is included when an operand field names it (callers that treat the
    hardwired zero as always-initialized should filter it out themselves).
    """
    opcode = instruction.opcode
    if opcode in R_FORMAT:
        return (instruction.rs1, instruction.rs2)
    if opcode in STORE_OPCODES:
        return (instruction.rd, instruction.rs1)  # value, base address
    if opcode is Opcode.LUI:
        return ()
    if opcode in I_FORMAT:
        return (instruction.rs1,)
    if opcode in B_FORMAT:
        return (instruction.rs1, instruction.rs2)
    if opcode in (Opcode.JMP, Opcode.JSR):
        return (instruction.rs1,)
    if opcode is Opcode.RTS:
        return (_LINK,)
    return ()  # nop, halt, br, bsr


def registers_written(instruction: Instruction) -> Tuple[int, ...]:
    """Register numbers this instruction writes.

    Writes to ``r0`` are architecturally discarded, so ``r0`` never appears
    in the result even when an instruction names it as destination.
    """
    opcode = instruction.opcode
    if opcode in (Opcode.BSR, Opcode.JSR):
        return (_LINK,)
    if opcode in _NO_WRITE:
        return ()
    return (instruction.rd,) if instruction.rd else ()


# ----------------------------------------------------------------------
# Value semantics metadata.
#
# Pure functions over 32-bit unsigned register values, one per ALU opcode
# and one predicate per conditional branch, mirroring cpu.CPU.run exactly
# (same masking, same signedness, same truncation-toward-zero division).
# The abstract interpreter in repro.analysis.absint and the closed-form
# replay machinery in repro.analysis.predictability evaluate instructions
# through these tables so the interpreter's semantics are stated once.
# ----------------------------------------------------------------------
_WORD = 0xFFFFFFFF
_SIGN = 0x80000000


def signed_value(value: int) -> int:
    """Interpret a 32-bit unsigned register value as signed two's-complement."""
    return value - 0x100000000 if value & _SIGN else value


def _divs(a: int, b: int) -> int:
    # Truncation toward zero; raises ZeroDivisionError exactly where the
    # CPU raises ExecutionError, so callers can treat both as "no value".
    sb = signed_value(b)
    if sb == 0:
        raise ZeroDivisionError("divs by zero")
    return int(signed_value(a) / sb) & _WORD


def _rems(a: int, b: int) -> int:
    sb = signed_value(b)
    if sb == 0:
        raise ZeroDivisionError("rems by zero")
    sa = signed_value(a)
    return (sa - int(sa / sb) * sb) & _WORD


#: R-format ALU semantics: ``f(rs1_value, rs2_value) -> rd_value``.
ALU_SEMANTICS: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: lambda a, b: (a + b) & _WORD,
    Opcode.SUB: lambda a, b: (a - b) & _WORD,
    Opcode.MUL: lambda a, b: (signed_value(a) * signed_value(b)) & _WORD,
    Opcode.DIVS: _divs,
    Opcode.REMS: _rems,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: (a << (b & 31)) & _WORD,
    Opcode.SHR: lambda a, b: a >> (b & 31),
    Opcode.SRA: lambda a, b: (signed_value(a) >> (b & 31)) & _WORD,
}

#: I-format ALU semantics: ``f(rs1_value, imm) -> rd_value`` (``imm`` is the
#: decoded signed immediate; masking matches the CPU per opcode).
IMM_SEMANTICS: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADDI: lambda a, imm: (a + imm) & _WORD,
    Opcode.MULI: lambda a, imm: (signed_value(a) * imm) & _WORD,
    Opcode.ANDI: lambda a, imm: a & (imm & 0xFFFF),
    Opcode.ORI: lambda a, imm: a | (imm & 0xFFFF),
    Opcode.XORI: lambda a, imm: a ^ (imm & 0xFFFF),
    Opcode.SHLI: lambda a, imm: (a << (imm & 31)) & _WORD,
    Opcode.SHRI: lambda a, imm: a >> (imm & 31),
    Opcode.SRAI: lambda a, imm: (signed_value(a) >> (imm & 31)) & _WORD,
    Opcode.LUI: lambda a, imm: (imm & 0xFFFF) << 16,
}

#: Conditional-branch predicates: ``f(rs1_value, rs2_value) -> taken``.
BRANCH_SEMANTICS: Dict[Opcode, Callable[[int, int], bool]] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: signed_value(a) < signed_value(b),
    Opcode.BGE: lambda a, b: signed_value(a) >= signed_value(b),
    Opcode.BLE: lambda a, b: signed_value(a) <= signed_value(b),
    Opcode.BGT: lambda a, b: signed_value(a) > signed_value(b),
}


def encoded_target(pc: int, instruction: Instruction) -> int:
    """Taken-direction target of a B-format / ``br`` / ``bsr`` instruction
    at byte address ``pc`` (word offset relative to the next pc)."""
    return pc + 4 + 4 * instruction.imm
