"""Branch target prediction.

Lee & Smith's design is a Branch *Target* Buffer: alongside the direction
automaton, each entry caches the branch's target address so the fetch engine
can redirect without decoding.  The paper's methodology also covers the two
non-conditional cases: immediate unconditional branches (target computable
at decode), and returns (the return address stack).

:class:`BranchTargetBuffer` models the target side: a set-associative,
tagged cache of ``pc -> last taken target``.  For direct branches the cached
target is always right after the first fill; for register-indirect branches
(``jmp``/``jsr``/``rts``) the target can change between executions, which is
exactly why the return address stack exists.

:func:`measure_target_prediction` scores a full trace: every *taken* branch
needs a target at fetch time; the BTB supplies it, the RAS overrides it for
returns.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigError
from repro.predictors.ras import ReturnAddressStack
from repro.trace.record import BranchClass, BranchRecord


class BranchTargetBuffer:
    """Set-associative cache of branch targets with LRU replacement."""

    def __init__(self, entries: int = 512, associativity: int = 4):
        if entries < 1 or associativity < 1:
            raise ConfigError("BTB entries and associativity must be >= 1")
        if entries % associativity:
            raise ConfigError(
                f"BTB entries ({entries}) must be a multiple of associativity ({associativity})"
            )
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._sets: "list[OrderedDict[int, int]]" = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_for(self, pc: int) -> "OrderedDict[int, int]":
        return self._sets[(pc >> 2) % self.num_sets]

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for the branch at ``pc`` (None on a miss)."""
        ways = self._set_for(pc)
        target = ways.get(pc)
        if target is None:
            self.misses += 1
            return None
        self.hits += 1
        ways.move_to_end(pc)
        return target

    def record(self, pc: int, target: int) -> None:
        """Install/refresh the taken target observed for ``pc``."""
        ways = self._set_for(pc)
        if pc in ways:
            ways[pc] = target
            ways.move_to_end(pc)
            return
        if len(ways) >= self.associativity:
            ways.popitem(last=False)
        ways[pc] = target

    @property
    def hit_ratio(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()
        self.hits = self.misses = 0


@dataclass
class TargetPredictionStats:
    """Target-prediction scoring over one trace."""

    taken_total: int = 0
    taken_correct: int = 0
    returns_total: int = 0
    returns_correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.taken_correct / self.taken_total if self.taken_total else 0.0

    @property
    def return_accuracy(self) -> float:
        return self.returns_correct / self.returns_total if self.returns_total else 0.0


def measure_target_prediction(
    records: Iterable[BranchRecord],
    btb: Optional[BranchTargetBuffer] = None,
    ras: Optional[ReturnAddressStack] = None,
) -> TargetPredictionStats:
    """Score target prediction over a trace.

    Every taken branch is scored: the predicted target is the RAS top for
    returns (when a RAS is supplied), otherwise the BTB entry.  After
    resolution the BTB is refreshed with the actual target — returns
    included, which is what makes a BTB-only configuration mispredict
    call-site-varying returns (the phenomenon Kaeli & Emma's stack fixes,
    cited in the paper's methodology).
    """
    buffer = btb if btb is not None else BranchTargetBuffer()
    stats = TargetPredictionStats()
    RETURN = BranchClass.RETURN

    for record in records:
        if record.is_call and ras is not None:
            ras.push(record.pc + 4)
        if not record.taken:
            continue
        stats.taken_total += 1

        predicted: Optional[int]
        if record.cls is RETURN and ras is not None:
            predicted = ras.pop()
        else:
            predicted = buffer.lookup(record.pc)
        if record.cls is RETURN:
            stats.returns_total += 1
            if predicted == record.target:
                stats.returns_correct += 1
        if predicted == record.target:
            stats.taken_correct += 1
        buffer.record(record.pc, record.target)
    return stats
