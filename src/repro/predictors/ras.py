"""Return address stack (section 4 methodology).

Subroutine return branches are predicted with a small hardware stack: a call
pushes its return address; a return pops the top as the predicted target.
Predictions can miss when the stack overflows (deep recursion wraps around
and overwrites older entries) — the paper notes exactly this failure mode.

The stack is circular: pushing onto a full stack overwrites the oldest
entry; popping an empty stack returns ``None`` (no prediction).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError


class ReturnAddressStack:
    """Fixed-depth circular return address stack."""

    def __init__(self, depth: int = 16):
        if depth < 1:
            raise ConfigError(f"RAS depth must be >= 1, got {depth}")
        self.depth = depth
        self._slots: List[int] = [0] * depth
        self._top = 0  # index one past the most recent entry (mod depth)
        self._size = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        """Record a call's return address."""
        self._slots[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        if self._size == self.depth:
            self.overflows += 1  # overwrote the oldest entry
        else:
            self._size += 1

    def pop(self) -> Optional[int]:
        """Predict a return's target; ``None`` when the stack is empty."""
        if self._size == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.depth
        self._size -= 1
        return self._slots[self._top]

    def peek(self) -> Optional[int]:
        """Top of stack without popping (for tests)."""
        if self._size == 0:
            return None
        return self._slots[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._size

    def reset(self) -> None:
        self._top = 0
        self._size = 0
        self.overflows = 0
        self.underflows = 0
