"""Pattern-history state machines (Figure 2 of the paper).

Each pattern-table entry holds the state of one small Moore machine; the
prediction is a function of the state (``lambda`` in the paper's equation 1)
and the state advances with each outcome (``delta`` in equation 2).  An
:class:`Automaton` is a *description* of such a machine — transition table
plus prediction table — so the pattern table can store plain integer states.

The five machines:

* **Last-Time (LT)** — one bit: predict whatever happened last time this
  pattern appeared.
* **A1** — records the outcomes of the last two occurrences of the pattern;
  predicts not-taken only when *neither* recorded outcome was taken.
* **A2** — the classic two-bit saturating up/down counter: increment on
  taken, decrement on not-taken, predict taken when the count is >= 2.
* **A3**, **A4** — described in the paper only as "similar to A2" with
  near-identical measured accuracy.  The printed figure is not available in
  the source text, so they are reconstructed here as the two standard
  saturating-counter variants from the contemporary literature: A3 breaks a
  strong state directly to the opposite weak state on a mispredicting
  outcome (3 -not-taken-> 1, 0 -taken-> 2), and A4 saturates *towards* a
  direction in a single step from the weak state (1 -taken-> 3,
  2 -not-taken-> 0) while leaving strong-state exits gradual.  Both satisfy
  the paper's stated property (four states, counter-like, accuracy within
  noise of A2), which is what the Figure 5 reproduction asserts.

All automata are initialised to their most-taken state (state 3 for the
four-state machines, state 1 for Last-Time) per section 4.2, because about
60 percent of conditional branches are taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Automaton:
    """An immutable finite-state machine description.

    Attributes:
        name: short name used in predictor spec strings (``A2``, ``LT`` ...).
        transitions: ``transitions[state]`` is a pair
            ``(next_if_not_taken, next_if_taken)``.
        predictions: ``predictions[state]`` is the Boolean prediction the
            machine makes while in ``state``.
        init_state: state every pattern-table entry starts in (section 4.2).
    """

    name: str
    transitions: Tuple[Tuple[int, int], ...]
    predictions: Tuple[bool, ...]
    init_state: int

    def __post_init__(self) -> None:
        n = len(self.transitions)
        if len(self.predictions) != n:
            raise ConfigError(f"{self.name}: predictions/transitions length mismatch")
        if not 0 <= self.init_state < n:
            raise ConfigError(f"{self.name}: init_state {self.init_state} out of range")
        for state, (off, on) in enumerate(self.transitions):
            if not (0 <= off < n and 0 <= on < n):
                raise ConfigError(f"{self.name}: transition out of range in state {state}")

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def predict(self, state: int) -> bool:
        """The Moore output ``z = lambda(S)`` (equation 1)."""
        return self.predictions[state]

    def next_state(self, state: int, taken: bool) -> int:
        """The transition ``S' = delta(S, R)`` (equation 2)."""
        return self.transitions[state][1 if taken else 0]


LAST_TIME = Automaton(
    name="LT",
    transitions=((0, 1), (0, 1)),
    predictions=(False, True),
    init_state=1,
)

# State encodes the last two occurrences' outcomes as bits (older << 1 | newer).
# Predict not-taken only when no recorded outcome was taken (state 0).
A1 = Automaton(
    name="A1",
    transitions=tuple(((state << 1) & 3, ((state << 1) | 1) & 3) for state in range(4)),
    predictions=(False, True, True, True),
    init_state=3,
)

# Saturating up/down counter; predict taken when counter >= 2.
A2 = Automaton(
    name="A2",
    transitions=((0, 1), (0, 2), (1, 3), (2, 3)),
    predictions=(False, False, True, True),
    init_state=3,
)

# A2 variant: the weak-taken state saturates upward in one step, and a
# mispredicting not-taken from weak-taken falls straight to strong-not-taken.
# Retains A2's essential hysteresis (one noise outcome in a strong state
# does not flip the prediction), unlike Last-Time.
A3 = Automaton(
    name="A3",
    transitions=((0, 1), (0, 3), (0, 3), (2, 3)),
    predictions=(False, False, True, True),
    init_state=3,
)

# A2 variant: the weak states saturate in one step; strong exits stay gradual.
A4 = Automaton(
    name="A4",
    transitions=((0, 3), (0, 3), (0, 3), (2, 3)),
    predictions=(False, False, True, True),
    init_state=3,
)

AUTOMATA: Dict[str, Automaton] = {
    automaton.name: automaton for automaton in (LAST_TIME, A1, A2, A3, A4)
}


def automaton_by_name(name: str) -> Automaton:
    """Look up an automaton by its spec-string name (case-insensitive).

    Accepts ``LT`` and the ``Last-Time`` long form.
    """
    key = name.strip().upper()
    if key in ("LAST-TIME", "LASTTIME", "LAST_TIME"):
        key = "LT"
    try:
        return AUTOMATA[key]
    except KeyError as exc:
        raise ConfigError(
            f"unknown automaton {name!r}; expected one of {sorted(AUTOMATA)}"
        ) from exc
