"""Post-paper variants (future-work ablations).

The paper keeps history *per address* feeding one *global* pattern table —
the organisation later taxonomised as **PAg**.  Yeh & Patt's 1992/1993
follow-ups and McFarling's work explored the other corners:

* :class:`GAgPredictor` — one global history register (GAg);
* :class:`GSharePredictor` — global history XOR address (gshare);
* :class:`PApPredictor` — per-address history *and* per-address pattern
  tables (PAp), eliminating pattern-table interference at enormous cost;
* :class:`TournamentPredictor` — McFarling's selector combining two
  component predictors per branch.

These are clearly-labelled extensions so the ablation benches can show
where per-address history wins (independent per-branch periodic patterns)
and where global correlation helps, without claiming they appear in the
1991 paper.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.predictors.automata import A2, Automaton
from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.pattern_table import PatternTable


class GAgPredictor(ConditionalBranchPredictor):
    """GAg: one global k-bit history register indexing a global pattern
    table.  The cheapest two-level organisation — no per-address table at
    all — at the cost of aliasing every branch into one history stream."""

    def __init__(self, history_length: int, automaton: Automaton = A2):
        self.pattern_table = PatternTable(history_length, automaton)
        self.history_length = history_length
        self._mask = (1 << history_length) - 1
        self._history = self._mask  # all-ones init, like the per-address HRs

    def predict(self, pc: int, target: int) -> bool:
        return self.pattern_table.predict(self._history)

    def update(self, pc: int, target: int, taken: bool) -> None:
        self.pattern_table.update(self._history, taken)
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask

    def reset(self) -> None:
        self.pattern_table.reset()
        self._history = self._mask

    @property
    def name(self) -> str:
        return f"GAg({self.history_length},{self.pattern_table.automaton.name})"


class GSharePredictor(ConditionalBranchPredictor):
    """gshare: global history XOR branch address indexes a counter table.

    The XOR spreads different branches with the same recent global history
    across the table, reducing (not eliminating) aliasing relative to GAg.
    """

    def __init__(self, history_length: int, automaton: Automaton = A2):
        if history_length < 1:
            raise ConfigError(f"history length must be >= 1, got {history_length}")
        self.pattern_table = PatternTable(history_length, automaton)
        self.history_length = history_length
        self._mask = (1 << history_length) - 1
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int, target: int) -> bool:
        return self.pattern_table.predict(self._index(pc))

    def update(self, pc: int, target: int, taken: bool) -> None:
        self.pattern_table.update(self._index(pc), taken)
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask

    def reset(self) -> None:
        self.pattern_table.reset()
        self._history = 0

    @property
    def name(self) -> str:
        return f"gshare({self.history_length},{self.pattern_table.automaton.name})"


class PApPredictor(ConditionalBranchPredictor):
    """PAp: per-address history registers AND per-address pattern tables.

    The paper's scheme (PAg) shares one pattern table among all branches,
    trading interference for cost.  PAp gives every static branch its own
    table — the interference-free upper bound of the per-address family.
    Modelled ideally (unbounded branch population), as the IHRT is.
    """

    def __init__(self, history_length: int, automaton: Automaton = A2):
        if history_length < 1:
            raise ConfigError(f"history length must be >= 1, got {history_length}")
        self.history_length = history_length
        self.automaton = automaton
        self._mask = (1 << history_length) - 1
        self._histories: Dict[int, int] = {}
        self._tables: Dict[int, PatternTable] = {}

    def _table_for(self, pc: int) -> PatternTable:
        table = self._tables.get(pc)
        if table is None:
            table = PatternTable(self.history_length, self.automaton)
            self._tables[pc] = table
        return table

    def predict(self, pc: int, target: int) -> bool:
        history = self._histories.get(pc, self._mask)
        return self._table_for(pc).predict(history)

    def update(self, pc: int, target: int, taken: bool) -> None:
        history = self._histories.get(pc, self._mask)
        self._table_for(pc).update(history, taken)
        self._histories[pc] = ((history << 1) | (1 if taken else 0)) & self._mask

    def reset(self) -> None:
        self._histories.clear()
        self._tables.clear()

    @property
    def name(self) -> str:
        return f"PAp({self.history_length},{self.automaton.name})"


class TournamentPredictor(ConditionalBranchPredictor):
    """McFarling-style tournament: a per-branch chooser between two
    component predictors.

    The chooser is a table of 2-bit counters indexed by branch address;
    it trains toward whichever component was right when they disagree.
    """

    def __init__(
        self,
        first: ConditionalBranchPredictor,
        second: ConditionalBranchPredictor,
        chooser_entries: int = 4096,
    ):
        if chooser_entries < 1:
            raise ConfigError(f"chooser_entries must be >= 1, got {chooser_entries}")
        self.first = first
        self.second = second
        self.chooser_entries = chooser_entries
        # counter >= 2 selects `first`; start neutral-ish toward `first`
        self._chooser = [2] * chooser_entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.chooser_entries

    def predict(self, pc: int, target: int) -> bool:
        if self._chooser[self._index(pc)] >= 2:
            return self.first.predict(pc, target)
        return self.second.predict(pc, target)

    def update(self, pc: int, target: int, taken: bool) -> None:
        first_prediction = self.first.predict(pc, target)
        second_prediction = self.second.predict(pc, target)
        index = self._index(pc)
        if first_prediction != second_prediction:
            counter = self._chooser[index]
            if first_prediction == taken:
                self._chooser[index] = min(3, counter + 1)
            else:
                self._chooser[index] = max(0, counter - 1)
        self.first.update(pc, target, taken)
        self.second.update(pc, target, taken)

    def reset(self) -> None:
        self._chooser = [2] * self.chooser_entries
        self.first.reset()
        self.second.reset()

    @property
    def name(self) -> str:
        return f"Tournament({self.first.name},{self.second.name})"


class PAsPredictor(ConditionalBranchPredictor):
    """PAs: per-address history registers, per-SET pattern tables.

    The middle ground Yeh & Patt's follow-up work recommends: branches are
    grouped into ``sets`` by address, each set sharing one pattern table —
    less interference than the paper's single global table (PAg), far less
    storage than private tables (PAp).
    """

    def __init__(self, history_length: int, sets: int = 16, automaton: Automaton = A2):
        if history_length < 1:
            raise ConfigError(f"history length must be >= 1, got {history_length}")
        if sets < 1:
            raise ConfigError(f"sets must be >= 1, got {sets}")
        self.history_length = history_length
        self.sets = sets
        self.automaton = automaton
        self._mask = (1 << history_length) - 1
        self._histories: Dict[int, int] = {}
        self._tables = [PatternTable(history_length, automaton) for _ in range(sets)]

    def _table_for(self, pc: int) -> PatternTable:
        return self._tables[(pc >> 2) % self.sets]

    def predict(self, pc: int, target: int) -> bool:
        history = self._histories.get(pc, self._mask)
        return self._table_for(pc).predict(history)

    def update(self, pc: int, target: int, taken: bool) -> None:
        history = self._histories.get(pc, self._mask)
        self._table_for(pc).update(history, taken)
        self._histories[pc] = ((history << 1) | (1 if taken else 0)) & self._mask

    def reset(self) -> None:
        self._histories.clear()
        for table in self._tables:
            table.reset()

    @property
    def name(self) -> str:
        return f"PAs({self.history_length},{self.sets},{self.automaton.name})"
