"""Lee & Smith's Static Training scheme (section 5.2 comparator).

Static Training uses the same two-level structure as the paper's scheme —
per-branch history registers indexing a pattern table — but the pattern
table holds *preset prediction bits* computed from a profiling run instead
of live automata.  At run time only the history registers change; a given
history pattern therefore always yields the same prediction.

The profiling pass here is genuine: :func:`profile_pattern_table` replays a
training trace through an IHRT front-end (profiling is software accounting,
so every static branch can be tracked), tallies taken/not-taken per pattern,
and freezes the majority direction into the table.  Patterns never seen in
training default to *taken*, matching the initialisation bias of section 4.2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigError
from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.hrt import HistoryRegisterTable, IHRT
from repro.trace.record import BranchClass, BranchRecord


def profile_pattern_table(
    history_length: int,
    training_records: Iterable[BranchRecord],
) -> List[bool]:
    """Profile a training trace into a preset pattern table.

    Returns a list of ``2 ** history_length`` booleans: the majority outcome
    observed for each history pattern (ties and unseen patterns predict
    taken).
    """
    if history_length < 1:
        raise ConfigError(f"history length must be >= 1, got {history_length}")
    mask = (1 << history_length) - 1
    # net[pattern] = (#taken - #not_taken) seen when the pattern was current.
    net = [0] * (mask + 1)
    histories: Dict[int, int] = {}

    for record in training_records:
        if record.cls is not BranchClass.CONDITIONAL:
            continue
        history = histories.get(record.pc, mask)  # registers init to all 1s
        net[history] += 1 if record.taken else -1
        histories[record.pc] = ((history << 1) | (1 if record.taken else 0)) & mask

    return [balance >= 0 for balance in net]


class StaticTrainingPredictor(ConditionalBranchPredictor):
    """ST(HRT, PT(preset), data) — profiled two-level prediction.

    Args:
        hrt: history-register front-end for the *test* run (IHRT / AHRT /
            HHRT); reset with all-ones initial histories like the adaptive
            scheme.
        history_length: k, the history register width.
        preset: ``2 ** k`` preset prediction bits, normally from
            :func:`profile_pattern_table`.
        data_mode: ``"Same"`` or ``"Diff"`` — purely a label recording
            whether training and testing used the same data set (Table 2).
    """

    def __init__(
        self,
        hrt: HistoryRegisterTable,
        history_length: int,
        preset: Sequence[bool],
        data_mode: str = "Same",
    ):
        if len(preset) != 1 << history_length:
            raise ConfigError(
                f"preset table has {len(preset)} entries; expected {1 << history_length}"
            )
        if data_mode not in ("Same", "Diff"):
            raise ConfigError(f"data_mode must be 'Same' or 'Diff', got {data_mode!r}")
        self.hrt = hrt
        self.history_length = history_length
        self._mask = (1 << history_length) - 1
        self.preset = list(preset)
        self.data_mode = data_mode
        hrt.init_payload = self._mask
        hrt.reset()

    @classmethod
    def trained(
        cls,
        hrt: HistoryRegisterTable,
        history_length: int,
        training_records: Iterable[BranchRecord],
        data_mode: str = "Same",
    ) -> "StaticTrainingPredictor":
        """Build the predictor by profiling ``training_records`` directly."""
        preset = profile_pattern_table(history_length, training_records)
        return cls(hrt, history_length, preset, data_mode)

    def predict(self, pc: int, target: int) -> bool:
        return self.preset[self.hrt.get(pc)]

    def update(self, pc: int, target: int, taken: bool) -> None:
        history = self.hrt.get(pc)
        self.hrt.put(pc, ((history << 1) | (1 if taken else 0)) & self._mask)

    def reset(self) -> None:
        """Reset run-time state; the preset (profiled) table is retained."""
        self.hrt.reset()

    @property
    def name(self) -> str:
        k = self.history_length
        return f"ST({self.hrt.spec_name}{k}SR),PT(2^{k},PB),{self.data_mode})"
