"""Hardware storage cost model for predictor configurations.

The paper chooses Figure 10's configurations "on the basis of similar
costs"; this module makes that comparison explicit by counting the storage
bits each Table 2 configuration requires:

* history register table: ``entries x (history bits + tag bits)``
  (IHRT has no physical cost — it is an idealisation; AHRT pays a tag per
  entry, HHRT does not);
* pattern table: ``2^k x state bits`` (2 bits for the four-state automata,
  1 for Last-Time, or 1 preset bit for Static Training);
* LS designs: automaton state (plus tag) per entry, no pattern table.

Tag width is parameterised by the address space being distinguished; the
default models 30 usable PC bits as the paper's M88100 would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.predictors.spec import PredictorSpec, parse_spec

#: storage bits per pattern-table entry, by content
_STATE_BITS = {"LT": 1, "A1": 2, "A2": 2, "A3": 2, "A4": 2}

PC_BITS = 30  # word-aligned 32-bit addresses


@dataclass(frozen=True)
class StorageCost:
    """Bit-level storage breakdown of one configuration."""

    hrt_bits: int
    tag_bits: int
    pattern_bits: int

    @property
    def total_bits(self) -> int:
        return self.hrt_bits + self.tag_bits + self.pattern_bits

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


def _tag_width(entries: int, associativity: int) -> int:
    """Tag bits per entry: PC bits minus the set-index bits."""
    num_sets = max(1, entries // associativity)
    index_bits = max(0, num_sets.bit_length() - 1)
    return max(0, PC_BITS - index_bits)


def storage_cost(spec: "PredictorSpec | str") -> StorageCost:
    """Storage cost of a parsed or textual Table 2 configuration.

    Idealised structures (IHRT) and profile-time-only structures are
    costed at zero: they are analytical devices, not hardware.  The static
    schemes (Always Taken, BTFN, Profile) cost nothing at run time.
    """
    parsed = parse_spec(spec) if isinstance(spec, str) else spec

    if parsed.scheme in ("AlwaysTaken", "AlwaysNotTaken", "BTFN", "Profile"):
        return StorageCost(0, 0, 0)
    if parsed.scheme in ("GAg",):
        assert parsed.history_length is not None
        k = parsed.history_length
        return StorageCost(hrt_bits=k, tag_bits=0, pattern_bits=2 * (1 << k))
    if parsed.scheme in ("gshare",):
        assert parsed.history_length is not None
        k = parsed.history_length
        return StorageCost(hrt_bits=k, tag_bits=0, pattern_bits=2 * (1 << k))
    if parsed.scheme == "Perceptron":
        # rows x (h+1) 8-bit weights; the history register is the only
        # other state (the "pattern" store is the weight memory)
        assert parsed.history_length is not None and parsed.rows is not None
        h = parsed.history_length
        return StorageCost(
            hrt_bits=h,
            tag_bits=0,
            pattern_bits=parsed.rows * (h + 1) * 8,
        )
    if parsed.scheme == "TAGE":
        # base bimodal (2-bit counters) plus t tagged tables of
        # (3-bit ctr + 2-bit u + valid) entries with TAG_BITS-wide tags
        from repro.predictors.modern import (
            BASE_EXTRA_BITS,
            DEFAULT_ENTRY_BITS,
            TAG_BITS,
        )

        assert parsed.tage_tables is not None and parsed.history_length is not None
        bits = parsed.tage_entry_bits or DEFAULT_ENTRY_BITS
        entries = parsed.tage_tables * (1 << bits)
        return StorageCost(
            hrt_bits=parsed.history_length,
            tag_bits=entries * TAG_BITS,
            pattern_bits=2 * (1 << (bits + BASE_EXTRA_BITS)) + entries * (3 + 2 + 1),
        )

    if parsed.hrt_kind is None:
        raise ConfigError(f"cannot cost scheme {parsed.scheme!r}")

    entries = parsed.hrt_entries or 0  # IHRT -> 0 (idealisation)
    if parsed.scheme == "LS":
        assert parsed.hrt_automaton is not None
        per_entry = _STATE_BITS[parsed.hrt_automaton.name]
        tag = _tag_width(entries, parsed.hrt_associativity) if parsed.hrt_kind == "AHRT" else 0
        return StorageCost(
            hrt_bits=entries * per_entry,
            tag_bits=entries * tag,
            pattern_bits=0,
        )

    # AT / ST: k-bit registers plus a 2^k pattern table
    assert parsed.history_length is not None
    k = parsed.history_length
    tag = _tag_width(entries, parsed.hrt_associativity) if parsed.hrt_kind == "AHRT" else 0
    if parsed.scheme == "ST":
        per_pattern = 1  # preset prediction bit
    else:
        assert parsed.pt_automaton is not None
        per_pattern = _STATE_BITS[parsed.pt_automaton.name]
    return StorageCost(
        hrt_bits=entries * k,
        tag_bits=entries * tag,
        pattern_bits=per_pattern * (1 << k),
    )
