"""Lee & Smith's Branch Target Buffer designs (section 5.3 comparator).

In these designs each branch's table entry holds a prediction automaton
directly — a 2-bit saturating counter (A2) or a last-time bit — with *no*
second-level pattern table.  The paper writes them as ``LS(HRT(size, Atm),,)``
with the pattern part empty.

The same HRT front-ends are reused, with the payload being the automaton
state rather than a history register.
"""

from __future__ import annotations

from repro.predictors.automata import Automaton
from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.hrt import HistoryRegisterTable


class LeeSmithPredictor(ConditionalBranchPredictor):
    """LS(HRT, automaton) — per-address automaton, no pattern level.

    Args:
        hrt: the per-branch table (IHRT / AHRT / HHRT); its ``init_payload``
            is set to the automaton's initial state (the taken-leaning state,
            per section 4.2) and the table is reset to apply it.
        automaton: the per-branch machine (the paper evaluates A1-A4 and
            Last-Time; Figure 9 shows A2 and Last-Time).
    """

    def __init__(self, hrt: HistoryRegisterTable, automaton: Automaton):
        self.hrt = hrt
        self.automaton = automaton
        hrt.init_payload = automaton.init_state
        hrt.reset()

    def predict(self, pc: int, target: int) -> bool:
        return self.automaton.predictions[self.hrt.get(pc)]

    def update(self, pc: int, target: int, taken: bool) -> None:
        state = self.hrt.get(pc)
        self.hrt.put(pc, self.automaton.transitions[state][1 if taken else 0])

    def observe(self, pc: int, target: int, taken: bool) -> bool:
        # One table lookup serves both halves; same residency argument as
        # TwoLevelAdaptivePredictor.observe.
        state = self.hrt.get(pc)
        automaton = self.automaton
        self.hrt.put(pc, automaton.transitions[state][1 if taken else 0])
        return automaton.predictions[state]

    def reset(self) -> None:
        self.hrt.reset()

    @property
    def name(self) -> str:
        return f"LS({self.hrt.spec_name}{self.automaton.name}),,)"
