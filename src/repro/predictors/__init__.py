"""Branch predictors: the paper's Two-Level Adaptive Training scheme and
every comparator it is evaluated against.

Public surface:

* :mod:`repro.predictors.automata` — the Figure 2 pattern-history state
  machines (Last-Time, A1, A2, A3, A4).
* :mod:`repro.predictors.hrt` — history-register-table front-ends
  (IHRT / AHRT / HHRT, section 3.1).
* :mod:`repro.predictors.two_level` — the Two-Level Adaptive Training
  predictor itself (AT), plus the section 3.2 latency-hiding variant.
* :mod:`repro.predictors.static_training` — Lee & Smith Static Training (ST).
* :mod:`repro.predictors.btb` — Lee & Smith Branch Target Buffer designs (LS).
* :mod:`repro.predictors.static_schemes` — Always Taken / Not Taken, BTFN,
  per-branch profiling.
* :mod:`repro.predictors.ras` — return address stack (section 4 methodology).
* :mod:`repro.predictors.spec` — the Table 2 naming-convention parser, which
  turns strings like ``"AT(AHRT(512,12SR),PT(2^12,A2))"`` into predictors.
* :mod:`repro.predictors.extensions` — post-paper global-history variants
  (GAg, gshare) for the future-work ablations.
* :mod:`repro.predictors.modern` — the modern subsystem (perceptron,
  TAGE), the comparators for the H2P pipeline (``repro h2p``).
"""

from repro.predictors.automata import (
    A1,
    A2,
    A3,
    A4,
    AUTOMATA,
    Automaton,
    LAST_TIME,
    automaton_by_name,
)
from repro.predictors.base import ConditionalBranchPredictor, measure_accuracy
from repro.predictors.btb import LeeSmithPredictor
from repro.predictors.cost import StorageCost, storage_cost
from repro.predictors.extensions import GAgPredictor, GSharePredictor
from repro.predictors.history import ShiftRegister
from repro.predictors.hrt import AHRT, HHRT, IHRT, HistoryRegisterTable
from repro.predictors.modern import PerceptronPredictor, TagePredictor, TageState
from repro.predictors.pattern_table import PatternTable
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.predictors.target import (
    BranchTargetBuffer,
    TargetPredictionStats,
    measure_target_prediction,
)
from repro.predictors.static_schemes import (
    AlwaysNotTaken,
    AlwaysTaken,
    BTFNPredictor,
    ProfilePredictor,
)
from repro.predictors.static_training import (
    StaticTrainingPredictor,
    profile_pattern_table,
)
from repro.predictors.two_level import (
    CachedPredictionTwoLevel,
    DelayedUpdatePredictor,
    TwoLevelAdaptivePredictor,
)

__all__ = [
    "A1",
    "A2",
    "A3",
    "A4",
    "AHRT",
    "AUTOMATA",
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BranchTargetBuffer",
    "Automaton",
    "BTFNPredictor",
    "CachedPredictionTwoLevel",
    "ConditionalBranchPredictor",
    "DelayedUpdatePredictor",
    "GAgPredictor",
    "GSharePredictor",
    "HHRT",
    "HistoryRegisterTable",
    "IHRT",
    "LAST_TIME",
    "LeeSmithPredictor",
    "PatternTable",
    "PerceptronPredictor",
    "PredictorSpec",
    "ProfilePredictor",
    "TagePredictor",
    "TageState",
    "ReturnAddressStack",
    "ShiftRegister",
    "StorageCost",
    "StaticTrainingPredictor",
    "TargetPredictionStats",
    "TwoLevelAdaptivePredictor",
    "automaton_by_name",
    "measure_accuracy",
    "measure_target_prediction",
    "parse_spec",
    "profile_pattern_table",
    "storage_cost",
]
