"""Branch history shift register (the HR of section 2.1).

A :class:`ShiftRegister` holds the last ``k`` outcomes of one branch as an
integer: bit 0 is the most recent outcome, bit ``k-1`` the oldest.  On update
the new outcome is shifted in at the least significant position, matching the
paper's description of ``R`` entering the register.

Hot predictor loops inline this arithmetic (``((value << 1) | taken) & mask``)
rather than going through the class; the class is the API-boundary form used
by tests, examples and anything that wants named operations.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError


class ShiftRegister:
    """A k-bit branch-outcome shift register.

    Per the paper's section 4.2, registers initialise to all ones (taken)
    because about 60 percent of conditional branches are taken.
    """

    __slots__ = ("length", "mask", "value")

    def __init__(self, length: int, value: "int | None" = None):
        if length < 1:
            raise ConfigError(f"history length must be >= 1, got {length}")
        self.length = length
        self.mask = (1 << length) - 1
        self.value = self.mask if value is None else (value & self.mask)

    def shift(self, taken: bool) -> int:
        """Shift in one outcome; return the new register value."""
        self.value = ((self.value << 1) | (1 if taken else 0)) & self.mask
        return self.value

    def peek_shift(self, taken: bool) -> int:
        """The value the register *would* take, without mutating it."""
        return ((self.value << 1) | (1 if taken else 0)) & self.mask

    def bits(self) -> List[bool]:
        """Outcomes oldest-first, as the paper writes patterns."""
        return [bool((self.value >> position) & 1) for position in range(self.length - 1, -1, -1)]

    def pattern_string(self) -> str:
        """Render like the paper, e.g. ``"1101"`` (oldest outcome first)."""
        return "".join("1" if bit else "0" for bit in self.bits())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShiftRegister):
            return NotImplemented
        return self.length == other.length and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.length, self.value))

    def __repr__(self) -> str:
        return f"ShiftRegister(length={self.length}, value={self.pattern_string()!r})"
