"""Predictor interface shared by every scheme.

A conditional-branch direction predictor sees, at fetch time, the branch's
address and its (statically encoded) taken-direction target, and answers
taken/not-taken.  After the branch resolves it is told the outcome.  The
simulation engine (:mod:`repro.sim.engine`) drives exactly this
predict-then-update protocol over a trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.trace.record import BranchClass, BranchRecord


class ConditionalBranchPredictor(ABC):
    """Base class for conditional-branch direction predictors."""

    @abstractmethod
    def predict(self, pc: int, target: int) -> bool:
        """Predict the branch at ``pc`` whose taken-direction target is
        ``target``.  Returns True for taken."""

    @abstractmethod
    def update(self, pc: int, target: int, taken: bool) -> None:
        """Inform the predictor of the resolved outcome."""

    def observe(self, pc: int, target: int, taken: bool) -> bool:
        """Score one resolved branch: predict it, apply the outcome, and
        return the prediction that was made.

        Must behave exactly like :meth:`predict` followed by :meth:`update`
        (the default does literally that).  Schemes whose two halves share a
        table lookup override this to do the lookup once; the columnar fast
        path in :func:`repro.sim.engine.simulate_packed` drives predictors
        through this hook."""
        prediction = self.predict(pc, target)
        self.update(pc, target, taken)
        return prediction

    def reset(self) -> None:
        """Restore start-of-execution state.  Stateless schemes need not
        override this."""

    @property
    def name(self) -> str:
        """Display name; defaults to the class name, overridden by schemes
        that carry a Table 2 spec string."""
        return type(self).__name__


def measure_accuracy(
    predictor: ConditionalBranchPredictor, records: Iterable[BranchRecord]
) -> float:
    """Convenience scorer: run ``predictor`` over the conditional branches of
    ``records`` and return the prediction accuracy in [0, 1].

    This is the small-scale sibling of the full engine in
    :mod:`repro.sim.engine` (which also tracks per-class statistics and
    return-address-stack behaviour); examples and tests use this one.
    """
    correct = 0
    total = 0
    conditional = BranchClass.CONDITIONAL
    for record in records:
        if record.cls is not conditional:
            continue
        prediction = predictor.predict(record.pc, record.target)
        predictor.update(record.pc, record.target, record.taken)
        total += 1
        if prediction == record.taken:
            correct += 1
    return correct / total if total else 0.0
