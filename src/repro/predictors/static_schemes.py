"""Static prediction schemes (section 5.3 comparators).

* :class:`AlwaysTaken` / :class:`AlwaysNotTaken` — the trivial baselines
  (~60 % / ~40 % on the paper's mix).
* :class:`BTFNPredictor` — Backward Taken, Forward Not taken: loop-friendly
  (misses once per loop exit) but poor on irregular forward branches.
* :class:`ProfilePredictor` — the simple profiling scheme: one pre-run
  counts taken/not-taken per static branch and freezes the majority
  direction into the (notional) opcode prediction bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.predictors.base import ConditionalBranchPredictor
from repro.trace.record import BranchClass, BranchRecord


class AlwaysTaken(ConditionalBranchPredictor):
    """Predict every conditional branch taken."""

    def predict(self, pc: int, target: int) -> bool:
        return True

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    @property
    def name(self) -> str:
        return "AlwaysTaken"


class AlwaysNotTaken(ConditionalBranchPredictor):
    """Predict every conditional branch not taken."""

    def predict(self, pc: int, target: int) -> bool:
        return False

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    @property
    def name(self) -> str:
        return "AlwaysNotTaken"


class BTFNPredictor(ConditionalBranchPredictor):
    """Backward Taken, Forward Not taken.

    The direction is static per branch site: taken if the encoded target
    precedes the branch (a loop-closing edge), not-taken otherwise.
    """

    def predict(self, pc: int, target: int) -> bool:
        return target < pc

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    @property
    def name(self) -> str:
        return "BTFN"


class ProfilePredictor(ConditionalBranchPredictor):
    """Per-branch majority direction from a profiling run.

    Args:
        bias: static branch pc -> profiled majority direction.
        default_taken: direction for branches never seen while profiling
            (taken, since ~60 % of conditional branches are taken).

    The paper profiles and executes on the same data set, making this the
    best static per-branch predictor achievable; running the profiled bits
    over the same trace reproduces exactly the paper's analytic accuracy
    (sum of per-branch majority counts over total branches).
    """

    def __init__(self, bias: Mapping[int, bool], default_taken: bool = True):
        self.bias: Dict[int, bool] = dict(bias)
        self.default_taken = default_taken

    @classmethod
    def from_trace(
        cls, records: Iterable[BranchRecord], default_taken: bool = True
    ) -> "ProfilePredictor":
        """Profile a trace: count taken vs not-taken per static branch and
        keep the majority (ties resolve to taken)."""
        balance: Dict[int, int] = {}
        for record in records:
            if record.cls is BranchClass.CONDITIONAL:
                balance[record.pc] = balance.get(record.pc, 0) + (1 if record.taken else -1)
        return cls(
            {pc: net >= 0 for pc, net in balance.items()},
            default_taken=default_taken,
        )

    def predict(self, pc: int, target: int) -> bool:
        return self.bias.get(pc, self.default_taken)

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    @property
    def name(self) -> str:
        return "Profile"
