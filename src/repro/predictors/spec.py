"""Parser for the paper's predictor naming convention (Table 2).

The paper names every simulated configuration as::

    Scheme(History(Size, Entry_Content), Pattern(Size, Entry_Content), Data)

for example ``AT(AHRT(512,12SR),PT(2^12,A2),)`` — Two-Level Adaptive
Training with a 512-entry 4-way associative HRT of 12-bit shift registers
and a 4096-entry pattern table of A2 automata — or ``LS(AHRT(512,A2),,)``
for a Lee & Smith design (no pattern level), or
``ST(IHRT(,12SR),PT(2^12,PB),Diff)`` for Static Training tested on a
different data set than it was trained on.

:func:`parse_spec` turns such a string into a :class:`PredictorSpec`;
:meth:`PredictorSpec.build` instantiates the predictor (Static Training
additionally needs the training trace).  The simple schemes are accepted by
bare name: ``AlwaysTaken``, ``AlwaysNotTaken``, ``BTFN``, ``Profile``,
``GAg(k)``, ``gshare(k)``.  The modern subsystem
(:mod:`repro.predictors.modern`) registers as ``perceptron(h[,rows])``
and ``tage(tables[,entry_bits])``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import ConfigError, SpecParseError
from repro.predictors.automata import Automaton, automaton_by_name
from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.btb import LeeSmithPredictor
from repro.predictors.extensions import GAgPredictor, GSharePredictor
from repro.predictors.hrt import AHRT, HHRT, IHRT, HistoryRegisterTable
from repro.predictors.modern import (
    DEFAULT_ENTRY_BITS,
    DEFAULT_ROWS,
    PerceptronPredictor,
    TagePredictor,
    tage_geometries,
)
from repro.predictors.pattern_table import PatternTable
from repro.predictors.static_schemes import (
    AlwaysNotTaken,
    AlwaysTaken,
    BTFNPredictor,
    ProfilePredictor,
)
from repro.predictors.static_training import StaticTrainingPredictor
from repro.predictors.two_level import TwoLevelAdaptivePredictor
from repro.trace.record import BranchRecord

_SR_CONTENT = re.compile(r"^(\d+)\s*SR$", re.IGNORECASE)
_SIMPLE_GLOBAL = re.compile(r"^(gag|gshare)\s*\(\s*(\d+)\s*(?:,\s*(\w[\w-]*)\s*)?\)$", re.IGNORECASE)
_MODERN = re.compile(
    r"^(perceptron|tage)\s*\(\s*(\d+)\s*(?:,\s*(\d+)\s*)?\)$", re.IGNORECASE
)


def _split_top_level(text: str) -> List[str]:
    """Split on commas that are not nested inside parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise SpecParseError(f"unbalanced ')' in {text!r}")
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise SpecParseError(f"unbalanced '(' in {text!r}")
    parts.append("".join(current).strip())
    return parts


def _parse_size(token: str, context: str) -> int:
    token = token.strip()
    match = re.match(r"^2\s*\^\s*(\d+)$", token)
    if match:
        return 1 << int(match.group(1))
    if token.isdigit():
        return int(token)
    raise SpecParseError(f"bad size {token!r} in {context}")


def _call_body(text: str, context: str) -> "tuple[str, str]":
    """Split ``Name( body )`` into (name, body)."""
    text = text.strip()
    open_paren = text.find("(")
    if open_paren < 0 or not text.endswith(")"):
        raise SpecParseError(f"expected Name(...) in {context}: {text!r}")
    return text[:open_paren].strip(), text[open_paren + 1 : -1]


@dataclass
class PredictorSpec:
    """A parsed Table 2 configuration.

    Exactly one of ``history_length`` / ``hrt_automaton`` is set, according
    to whether the HRT entries hold shift registers (AT/ST) or automata (LS).
    """

    scheme: str  # "AT" | "ST" | "LS" | simple-scheme name
    hrt_kind: Optional[str] = None  # "IHRT" | "AHRT" | "HHRT"
    hrt_entries: Optional[int] = None  # None for IHRT
    history_length: Optional[int] = None
    hrt_automaton: Optional[Automaton] = None
    pt_entries: Optional[int] = None
    pt_automaton: Optional[Automaton] = None  # None for ST's preset bits
    data_mode: Optional[str] = None  # "Same" | "Diff" for ST
    hrt_associativity: int = 4
    # modern subsystem (Perceptron / TAGE); ``history_length`` doubles as
    # the perceptron window h and as TAGE's longest geometric history
    rows: Optional[int] = None  # perceptron weight-vector rows
    tage_tables: Optional[int] = None
    tage_entry_bits: Optional[int] = None

    # ------------------------------------------------------------------
    def make_hrt(self, init_payload: int = 0) -> HistoryRegisterTable:
        """Instantiate this spec's HRT front-end."""
        if self.hrt_kind == "IHRT":
            return IHRT(init_payload)
        if self.hrt_kind == "AHRT":
            assert self.hrt_entries is not None
            return AHRT(self.hrt_entries, init_payload, self.hrt_associativity)
        if self.hrt_kind == "HHRT":
            assert self.hrt_entries is not None
            return HHRT(self.hrt_entries, init_payload)
        raise SpecParseError(f"scheme {self.scheme} has no HRT")

    def build(
        self, training_records: Optional[Iterable[BranchRecord]] = None
    ) -> ConditionalBranchPredictor:
        """Instantiate the configured predictor.

        Static Training requires ``training_records`` (its profiling pass);
        every other scheme ignores the argument.
        """
        if self.scheme == "AT":
            assert self.history_length is not None and self.pt_automaton is not None
            return TwoLevelAdaptivePredictor(
                self.make_hrt(), PatternTable(self.history_length, self.pt_automaton)
            )
        if self.scheme == "ST":
            assert self.history_length is not None
            if training_records is None:
                raise SpecParseError(
                    f"{self.canonical()}: Static Training needs training_records to build"
                )
            return StaticTrainingPredictor.trained(
                self.make_hrt(),
                self.history_length,
                training_records,
                data_mode=self.data_mode or "Same",
            )
        if self.scheme == "LS":
            assert self.hrt_automaton is not None
            return LeeSmithPredictor(self.make_hrt(), self.hrt_automaton)
        if self.scheme == "AlwaysTaken":
            return AlwaysTaken()
        if self.scheme == "AlwaysNotTaken":
            return AlwaysNotTaken()
        if self.scheme == "BTFN":
            return BTFNPredictor()
        if self.scheme == "Profile":
            if training_records is None:
                raise SpecParseError("Profile needs training_records to build")
            return ProfilePredictor.from_trace(training_records)
        if self.scheme == "GAg":
            assert self.history_length is not None
            return GAgPredictor(self.history_length, self.pt_automaton or automaton_by_name("A2"))
        if self.scheme == "gshare":
            assert self.history_length is not None
            return GSharePredictor(self.history_length, self.pt_automaton or automaton_by_name("A2"))
        if self.scheme == "Perceptron":
            assert self.history_length is not None
            return PerceptronPredictor(self.history_length, self.rows or DEFAULT_ROWS)
        if self.scheme == "TAGE":
            assert self.tage_tables is not None
            return TagePredictor(
                self.tage_tables, self.tage_entry_bits or DEFAULT_ENTRY_BITS
            )
        raise SpecParseError(f"unknown scheme {self.scheme!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """Render back to the paper's naming convention."""
        if self.scheme in ("AlwaysTaken", "AlwaysNotTaken", "BTFN", "Profile"):
            return self.scheme
        if self.scheme in ("GAg", "gshare"):
            automaton = self.pt_automaton or automaton_by_name("A2")
            return f"{self.scheme}({self.history_length},{automaton.name})"
        if self.scheme == "Perceptron":
            return f"perceptron({self.history_length},{self.rows or DEFAULT_ROWS})"
        if self.scheme == "TAGE":
            bits = self.tage_entry_bits or DEFAULT_ENTRY_BITS
            return f"tage({self.tage_tables},{bits})"
        size = "" if self.hrt_kind == "IHRT" else str(self.hrt_entries)
        if self.scheme == "LS":
            assert self.hrt_automaton is not None
            return f"LS({self.hrt_kind}({size},{self.hrt_automaton.name}),,)"
        content = f"{self.history_length}SR"
        k = self.history_length
        if self.scheme == "AT":
            assert self.pt_automaton is not None
            return f"AT({self.hrt_kind}({size},{content}),PT(2^{k},{self.pt_automaton.name}),)"
        return f"ST({self.hrt_kind}({size},{content}),PT(2^{k},PB),{self.data_mode or 'Same'})"


def parse_spec(text: str) -> PredictorSpec:
    """Parse one Table 2 configuration string into a :class:`PredictorSpec`.

    Raises :class:`~repro.errors.SpecParseError` with a description of the
    problem for malformed input.
    """
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered in ("alwaystaken", "taken"):
        return PredictorSpec(scheme="AlwaysTaken")
    if lowered in ("alwaysnottaken", "nottaken"):
        return PredictorSpec(scheme="AlwaysNotTaken")
    if lowered == "btfn":
        return PredictorSpec(scheme="BTFN")
    if lowered in ("profile", "profiling"):
        return PredictorSpec(scheme="Profile")
    match = _SIMPLE_GLOBAL.match(stripped)
    if match:
        scheme = "GAg" if match.group(1).lower() == "gag" else "gshare"
        automaton = automaton_by_name(match.group(3)) if match.group(3) else None
        return PredictorSpec(
            scheme=scheme,
            history_length=int(match.group(2)),
            pt_automaton=automaton,
        )
    match = _MODERN.match(stripped)
    if match:
        return _parse_modern(match, text)

    scheme_name, body = _call_body(stripped, "spec")
    scheme = scheme_name.upper()
    if scheme not in ("AT", "ST", "LS"):
        raise SpecParseError(f"unknown scheme {scheme_name!r}")

    parts = _split_top_level(body)
    if len(parts) == 2:
        parts.append("")  # tolerate omitted trailing Data field
    if len(parts) != 3:
        raise SpecParseError(
            f"{scheme} spec needs History, Pattern, Data parts; got {len(parts)} in {text!r}"
        )
    hrt_part, pt_part, data_part = (part.strip() for part in parts)

    spec = PredictorSpec(scheme=scheme)
    _parse_hrt_part(spec, hrt_part, text)
    _parse_pt_part(spec, pt_part, text)
    _parse_data_part(spec, data_part, text)
    _validate(spec, text)
    return spec


def _parse_modern(match: "re.Match[str]", full: str) -> PredictorSpec:
    """``perceptron(h[,rows])`` / ``tage(tables[,entry_bits])``."""
    family = match.group(1).lower()
    first = int(match.group(2))
    second = int(match.group(3)) if match.group(3) else None
    if family == "perceptron":
        from repro.predictors.modern import MAX_HISTORY

        if not 1 <= first <= MAX_HISTORY:
            raise SpecParseError(
                f"perceptron history length must be in 1..{MAX_HISTORY} in {full!r}"
            )
        rows = second if second is not None else DEFAULT_ROWS
        if rows < 1:
            raise SpecParseError(f"perceptron rows must be >= 1 in {full!r}")
        return PredictorSpec(scheme="Perceptron", history_length=first, rows=rows)
    from repro.predictors.modern import MAX_TABLES

    if not 1 <= first <= MAX_TABLES:
        raise SpecParseError(
            f"tage tables must be in 1..{MAX_TABLES} in {full!r}"
        )
    bits = second if second is not None else DEFAULT_ENTRY_BITS
    if not 1 <= bits <= 16:
        raise SpecParseError(f"tage entry bits must be in 1..16 in {full!r}")
    return PredictorSpec(
        scheme="TAGE",
        history_length=tage_geometries(first)[-1],
        tage_tables=first,
        tage_entry_bits=bits,
    )


def _parse_hrt_part(spec: PredictorSpec, hrt_part: str, full: str) -> None:
    kind_name, body = _call_body(hrt_part, f"History part of {full!r}")
    kind = kind_name.upper()
    if kind not in ("IHRT", "AHRT", "HHRT"):
        raise SpecParseError(f"unknown HRT kind {kind_name!r} in {full!r}")
    spec.hrt_kind = kind
    fields = _split_top_level(body)
    if len(fields) != 2:
        raise SpecParseError(f"HRT part needs (Size, Content) in {full!r}")
    size_text, content = fields[0].strip(), fields[1].strip()
    if kind == "IHRT":
        if size_text:
            raise SpecParseError(f"IHRT takes no size (got {size_text!r}) in {full!r}")
    else:
        spec.hrt_entries = _parse_size(size_text, full)
    sr_match = _SR_CONTENT.match(content)
    if sr_match:
        spec.history_length = int(sr_match.group(1))
    else:
        try:
            spec.hrt_automaton = automaton_by_name(content)
        except ConfigError as exc:
            raise SpecParseError(f"{exc} in {full!r}") from exc


def _parse_pt_part(spec: PredictorSpec, pt_part: str, full: str) -> None:
    if not pt_part:
        return
    name, body = _call_body(pt_part, f"Pattern part of {full!r}")
    if name.upper() != "PT":
        raise SpecParseError(f"expected PT(...), got {name!r} in {full!r}")
    fields = _split_top_level(body)
    if len(fields) != 2:
        raise SpecParseError(f"PT part needs (Size, Content) in {full!r}")
    spec.pt_entries = _parse_size(fields[0], full)
    content = fields[1].strip()
    if content.upper() != "PB":
        try:
            spec.pt_automaton = automaton_by_name(content)
        except ConfigError as exc:
            raise SpecParseError(f"{exc} in {full!r}") from exc


def _parse_data_part(spec: PredictorSpec, data_part: str, full: str) -> None:
    if not data_part:
        return
    mode = data_part.capitalize()
    if mode not in ("Same", "Diff"):
        raise SpecParseError(f"Data must be Same or Diff, got {data_part!r} in {full!r}")
    spec.data_mode = mode


def _validate(spec: PredictorSpec, full: str) -> None:
    if spec.scheme in ("AT", "ST"):
        if spec.history_length is None:
            raise SpecParseError(f"{spec.scheme} needs a kSR history content in {full!r}")
        if spec.pt_entries is None:
            raise SpecParseError(f"{spec.scheme} needs a PT part in {full!r}")
        expected = 1 << spec.history_length
        if spec.pt_entries != expected:
            raise SpecParseError(
                f"PT size {spec.pt_entries} does not match 2^{spec.history_length}"
                f" = {expected} in {full!r}"
            )
        if spec.scheme == "AT" and spec.pt_automaton is None:
            raise SpecParseError(f"AT pattern table needs an automaton in {full!r}")
        if spec.scheme == "ST" and spec.pt_automaton is not None:
            raise SpecParseError(f"ST pattern table holds preset bits (PB) in {full!r}")
    elif spec.scheme == "LS":
        if spec.hrt_automaton is None:
            raise SpecParseError(f"LS HRT entries must hold an automaton in {full!r}")
        if spec.pt_entries is not None:
            raise SpecParseError(f"LS has no pattern table in {full!r}")
        if spec.data_mode is not None:
            raise SpecParseError(f"LS takes no Data field in {full!r}")
