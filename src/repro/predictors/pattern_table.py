"""The global pattern table (PT of section 2.1).

One entry per possible history pattern — ``2^k`` entries for k-bit history
registers — each holding the integer state of one pattern-history automaton.
All history registers index the same table, which is why the paper calls it a
*global* pattern table.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.predictors.automata import Automaton


class PatternTable:
    """A ``2^k``-entry table of automaton states.

    Args:
        history_length: k; the table has ``2 ** k`` entries.
        automaton: the Figure 2 machine stored in each entry.

    Entries initialise to the automaton's init state (state 3 for the
    counter-like machines, taken for Last-Time), per section 4.2.
    """

    __slots__ = ("history_length", "num_entries", "automaton", "_states")

    def __init__(self, history_length: int, automaton: Automaton):
        if history_length < 1:
            raise ConfigError(f"history length must be >= 1, got {history_length}")
        if history_length > 24:
            raise ConfigError(
                f"history length {history_length} would allocate 2^{history_length} entries"
            )
        self.history_length = history_length
        self.num_entries = 1 << history_length
        self.automaton = automaton
        self._states: List[int] = [automaton.init_state] * self.num_entries

    def state(self, pattern: int) -> int:
        """Raw automaton state for a pattern (mainly for tests/inspection)."""
        return self._states[pattern & (self.num_entries - 1)]

    def predict(self, pattern: int) -> bool:
        """Predict the branch whose history register holds ``pattern``."""
        return self.automaton.predictions[self._states[pattern & (self.num_entries - 1)]]

    def update(self, pattern: int, taken: bool) -> None:
        """Advance the pattern's automaton with the resolved outcome."""
        index = pattern & (self.num_entries - 1)
        states = self._states
        states[index] = self.automaton.transitions[states[index]][1 if taken else 0]

    def observe(self, pattern: int, taken: bool) -> bool:
        """Fused :meth:`predict` + :meth:`update`: one entry lookup serves
        both the prediction read and the state transition."""
        index = pattern & (self.num_entries - 1)
        states = self._states
        state = states[index]
        automaton = self.automaton
        states[index] = automaton.transitions[state][1 if taken else 0]
        return automaton.predictions[state]

    def reset(self) -> None:
        """Reinitialise every entry (section 4.2 start-of-execution state)."""
        self._states = [self.automaton.init_state] * self.num_entries

    def counts_by_state(self) -> "dict[int, int]":
        """Histogram of entry states — useful for diagnosing warm-up."""
        histogram: "dict[int, int]" = {}
        for state in self._states:
            histogram[state] = histogram.get(state, 0) + 1
        return histogram
