"""History register table front-ends (section 3.1).

The per-address history register table maps a branch address to that branch's
payload — a k-bit history register for the two-level schemes, or an automaton
state for the Lee & Smith BTB designs.  Three implementations:

* :class:`IHRT` — ideal: every static branch gets its own register (an
  unbounded map).  Upper bound used throughout the paper's figures.
* :class:`AHRT` — a 4-way set-associative cache with LRU replacement and a
  tag store.  Matches the paper's crucial allocation detail: a physical
  register re-allocated to a different static branch is *not* re-initialised
  (section 4.2) — the new branch inherits the evicted branch's bits.
* :class:`HHRT` — a tagless hash table; different branches that collide
  simply share a register, trading tag-store cost for history interference.

The common interface is ``get(pc) -> payload`` (allocating on a miss) and
``put(pc, payload)``; payloads are plain ints so the same tables serve every
scheme.  Hit/miss/interference statistics are tracked for the Figure 6
analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.errors import ConfigError

#: Knuth multiplicative hash constant (2^32 / golden ratio).
_HASH_MULTIPLIER = 2654435761


def _index_hash(pc: int, buckets: int) -> int:
    """Map a branch address to a table bucket.

    Real programs spread their static branches across a large, sparse text
    segment, where indexing by the address's low bits behaves like a random
    hash.  The analog programs are small and dense — plain modulo would give
    them an unrealistically perfect, collision-free placement — so both
    finite HRT implementations use a multiplicative hash to recover the
    collision statistics a sparse address distribution produces.
    """
    return ((pc >> 2) * _HASH_MULTIPLIER & 0xFFFFFFFF) % buckets


class HistoryRegisterTable(ABC):
    """Abstract pc -> payload store with allocation-on-miss semantics."""

    def __init__(self, init_payload: int):
        self.init_payload = init_payload
        self.hits = 0
        self.misses = 0

    @abstractmethod
    def get(self, pc: int) -> int:
        """Return the payload for ``pc``, allocating an entry on a miss."""

    @abstractmethod
    def put(self, pc: int, payload: int) -> None:
        """Store ``payload`` for ``pc`` (entry must exist, i.e. follow a get)."""

    @abstractmethod
    def reset(self) -> None:
        """Drop all entries and statistics (start-of-execution state)."""

    @property
    def hit_ratio(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    @property
    @abstractmethod
    def spec_name(self) -> str:
        """The Table 2 naming-convention fragment, e.g. ``AHRT(512,...)``."""


class IHRT(HistoryRegisterTable):
    """Ideal HRT: one register per static branch, never evicts."""

    def __init__(self, init_payload: int = 0):
        super().__init__(init_payload)
        self._entries: Dict[int, int] = {}

    def get(self, pc: int) -> int:
        entries = self._entries
        payload = entries.get(pc)
        if payload is None:
            self.misses += 1
            payload = self.init_payload
            entries[pc] = payload
        else:
            self.hits += 1
        return payload

    def put(self, pc: int, payload: int) -> None:
        self._entries[pc] = payload

    def reset(self) -> None:
        self._entries.clear()
        self.hits = self.misses = 0

    @property
    def num_static_branches(self) -> int:
        """How many distinct branches have been seen (Table 1 cross-check)."""
        return len(self._entries)

    @property
    def spec_name(self) -> str:
        return "IHRT(,"


class AHRT(HistoryRegisterTable):
    """Set-associative HRT with LRU replacement (the paper's AHRT).

    Args:
        entries: total register count (e.g. 512 or 256).
        init_payload: value physical registers hold at program start.
        associativity: ways per set (the paper always uses 4).

    Eviction inherits: the incoming branch takes over the victim's payload
    bits, exactly as a physical register file would behave when only the tag
    is rewritten.
    """

    def __init__(self, entries: int, init_payload: int = 0, associativity: int = 4):
        super().__init__(init_payload)
        if entries < 1 or associativity < 1:
            raise ConfigError("AHRT entries and associativity must be >= 1")
        if entries % associativity:
            raise ConfigError(
                f"AHRT entries ({entries}) must be a multiple of associativity ({associativity})"
            )
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        # Each set: insertion-ordered tag -> payload (oldest = LRU), plus a
        # pool of not-yet-tagged physical registers holding the init payload.
        self._sets: List["OrderedDict[int, int]"] = [OrderedDict() for _ in range(self.num_sets)]
        self._free: List[int] = [associativity] * self.num_sets
        self.evictions = 0

    def _set_index(self, pc: int) -> int:
        return _index_hash(pc, self.num_sets)

    def get(self, pc: int) -> int:
        ways = self._sets[self._set_index(pc)]
        payload = ways.get(pc)
        if payload is not None:
            self.hits += 1
            ways.move_to_end(pc)
            return payload

        self.misses += 1
        index = self._set_index(pc)
        if self._free[index] > 0:
            self._free[index] -= 1
            payload = self.init_payload
        else:
            _victim_tag, payload = ways.popitem(last=False)  # LRU; payload inherited
            self.evictions += 1
        ways[pc] = payload
        return payload

    def put(self, pc: int, payload: int) -> None:
        ways = self._sets[self._set_index(pc)]
        if pc in ways:
            ways[pc] = payload
            ways.move_to_end(pc)

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()
        self._free = [self.associativity] * self.num_sets
        self.hits = self.misses = self.evictions = 0

    @property
    def spec_name(self) -> str:
        return f"AHRT({self.entries},"


class HHRT(HistoryRegisterTable):
    """Tagless hashed HRT (the paper's HHRT).

    Collisions are silent: two branches that hash to the same slot share one
    register, producing history interference.  A shadow tag array tracks
    interference *statistics only* — it has no effect on behaviour.
    """

    def __init__(self, entries: int, init_payload: int = 0):
        super().__init__(init_payload)
        if entries < 1:
            raise ConfigError("HHRT entries must be >= 1")
        self.entries = entries
        self._payloads: List[int] = [init_payload] * entries
        self._shadow_tags: List[Optional[int]] = [None] * entries
        self.collisions = 0

    def _index(self, pc: int) -> int:
        return _index_hash(pc, self.entries)

    def get(self, pc: int) -> int:
        index = self._index(pc)
        shadow = self._shadow_tags[index]
        if shadow == pc:
            self.hits += 1
        else:
            self.misses += 1
            if shadow is not None:
                self.collisions += 1
            self._shadow_tags[index] = pc
        return self._payloads[index]

    def put(self, pc: int, payload: int) -> None:
        self._payloads[self._index(pc)] = payload

    def reset(self) -> None:
        self._payloads = [self.init_payload] * self.entries
        self._shadow_tags = [None] * self.entries
        self.hits = self.misses = self.collisions = 0

    @property
    def spec_name(self) -> str:
        return f"HHRT({self.entries},"
