"""The Two-Level Adaptive Training predictor (the paper's contribution).

:class:`TwoLevelAdaptivePredictor` is the section 2 scheme: a per-address
history register table (level one) indexing a global pattern table of
automata (level two).  Both levels update on every resolved branch, which is
what makes the scheme *adaptive* — unlike Static Training, the
pattern-history information tracks the current execution.

:class:`CachedPredictionTwoLevel` adds the section 3.2 latency optimisation:
the pattern-table lookup happens at *update* time with the just-shifted
history, and the resulting prediction bit is stored alongside the history
register, so a prediction needs only one table access.

:class:`DelayedUpdatePredictor` models the other section 3.2 concern: in a
deep pipeline the previous outcome of a branch may not have resolved when the
next prediction is needed.  It delays updates by a configurable number of
branch slots and (optionally, per the paper) predicts *taken* for a branch
with an in-flight unresolved instance.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.errors import ConfigError
from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.hrt import HistoryRegisterTable
from repro.predictors.pattern_table import PatternTable


class TwoLevelAdaptivePredictor(ConditionalBranchPredictor):
    """AT(HRT, PT) — Two-Level Adaptive Training.

    Args:
        hrt: history-register-table front-end (IHRT / AHRT / HHRT).  Its
            ``init_payload`` is set to the all-ones history (section 4.2:
            registers initialise to 1s because most branches are taken) and
            the table is reset to apply it.
        pattern_table: the shared second level.  Its ``history_length`` fixes
            the history register width k.
    """

    def __init__(self, hrt: HistoryRegisterTable, pattern_table: PatternTable):
        self.hrt = hrt
        self.pattern_table = pattern_table
        self.history_length = pattern_table.history_length
        self._mask = (1 << self.history_length) - 1
        hrt.init_payload = self._mask
        hrt.reset()

    def predict(self, pc: int, target: int) -> bool:
        history = self.hrt.get(pc)
        return self.pattern_table.predict(history)

    def update(self, pc: int, target: int, taken: bool) -> None:
        history = self.hrt.get(pc)
        self.pattern_table.update(history, taken)
        new_history = ((history << 1) | (1 if taken else 0)) & self._mask
        self.hrt.put(pc, new_history)

    def observe(self, pc: int, target: int, taken: bool) -> bool:
        # Fused predict+update: predict's hrt.get leaves the entry resident
        # and most-recently-used, so update's repeat lookup always hits the
        # same register — one get plus the fused pattern-table access gives
        # the identical prediction, transition, and final table state.
        history = self.hrt.get(pc)
        prediction = self.pattern_table.observe(history, taken)
        self.hrt.put(pc, ((history << 1) | (1 if taken else 0)) & self._mask)
        return prediction

    def reset(self) -> None:
        self.hrt.reset()
        self.pattern_table.reset()

    @property
    def name(self) -> str:
        k = self.history_length
        return (
            f"AT({self.hrt.spec_name}{k}SR),"
            f"PT(2^{k},{self.pattern_table.automaton.name}),)"
        )


class CachedPredictionTwoLevel(ConditionalBranchPredictor):
    """AT with the section 3.2 cached-prediction-bit mechanism.

    The HRT payload packs ``prediction_bit << k | history``.  ``predict``
    reads only the cached bit (one table access); ``update`` performs the
    pattern-table work and refreshes the cache with the prediction for the
    *new* history.

    Behaviour differs from the plain scheme only when another branch updates
    the shared pattern entry between this branch's update and its next
    prediction — exactly the staleness the hardware optimisation admits.
    """

    def __init__(self, hrt: HistoryRegisterTable, pattern_table: PatternTable):
        self.hrt = hrt
        self.pattern_table = pattern_table
        self.history_length = pattern_table.history_length
        self._mask = (1 << self.history_length) - 1
        self._pred_bit = 1 << self.history_length
        # All-ones history; initial cached prediction matches the PT's
        # initial (taken-leaning) state for that pattern.
        initial_prediction = pattern_table.predict(self._mask)
        hrt.init_payload = self._mask | (self._pred_bit if initial_prediction else 0)
        hrt.reset()

    def predict(self, pc: int, target: int) -> bool:
        return bool(self.hrt.get(pc) & self._pred_bit)

    def update(self, pc: int, target: int, taken: bool) -> None:
        payload = self.hrt.get(pc)
        history = payload & self._mask
        self.pattern_table.update(history, taken)
        new_history = ((history << 1) | (1 if taken else 0)) & self._mask
        cached = self.pattern_table.predict(new_history)
        self.hrt.put(pc, new_history | (self._pred_bit if cached else 0))

    def reset(self) -> None:
        self.hrt.reset()
        self.pattern_table.reset()

    @property
    def name(self) -> str:
        k = self.history_length
        return (
            f"AT-cached({self.hrt.spec_name}{k}SR),"
            f"PT(2^{k},{self.pattern_table.automaton.name}),)"
        )


class DelayedUpdatePredictor(ConditionalBranchPredictor):
    """Wrap any predictor so outcomes arrive ``delay`` branch slots late.

    Models unresolved branches in a deep pipeline: an update enters a FIFO
    and is applied to the wrapped predictor only after ``delay`` further
    updates have been issued.  With ``predict_taken_when_pending`` (the
    paper's tight-loop rule), a branch that has an unresolved instance in
    flight is simply predicted taken instead of stalling.
    """

    def __init__(
        self,
        inner: ConditionalBranchPredictor,
        delay: int,
        predict_taken_when_pending: bool = True,
    ):
        if delay < 0:
            raise ConfigError(f"delay must be >= 0, got {delay}")
        self.inner = inner
        self.delay = delay
        self.predict_taken_when_pending = predict_taken_when_pending
        self._pending: Deque[Tuple[int, int, bool]] = deque()

    def predict(self, pc: int, target: int) -> bool:
        if self.predict_taken_when_pending and any(
            entry[0] == pc for entry in self._pending
        ):
            return True
        return self.inner.predict(pc, target)

    def update(self, pc: int, target: int, taken: bool) -> None:
        self._pending.append((pc, target, taken))
        while len(self._pending) > self.delay:
            old_pc, old_target, old_taken = self._pending.popleft()
            self.inner.update(old_pc, old_target, old_taken)

    def flush(self) -> None:
        """Apply all in-flight updates (e.g. at end of trace)."""
        while self._pending:
            pc, target, taken = self._pending.popleft()
            self.inner.update(pc, target, taken)

    def reset(self) -> None:
        self._pending.clear()
        self.inner.reset()

    @property
    def name(self) -> str:
        return f"{self.inner.name}+delay{self.delay}"
