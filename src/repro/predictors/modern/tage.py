"""A small deterministic TAGE-style predictor (Seznec & Michaud, JILP 2006).

A base bimodal table backs up to four *tagged* tables indexed by
geometrically-growing global-history lengths (4, 8, 16, 32).  Prediction
comes from the matching table with the longest history (the *provider*);
the next-longest match (or the base table) is the *altpred*.  On a
misprediction a fresh entry is allocated in a longer-history table whose
``useful`` counter has decayed to zero.

The design is stripped to its deterministic core so that scalar engine,
vector kernel and streaming scorer can be proved bit-exact against each
other: no ``USE_ALT_ON_NA`` heuristic, no randomised allocation (the first
``u == 0`` table above the provider wins; if none, every candidate's ``u``
is decremented), no periodic ``u`` reset.  The hash functions are plain
XOR folds — :func:`fold_history` — shared verbatim between the per-record
scalar path and the columnar kernels.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.predictors.base import ConditionalBranchPredictor

#: tag width of the tagged tables.
TAG_BITS = 8
#: signed 3-bit prediction counter range (predict taken when ``>= 0``).
CTR_MIN = -4
CTR_MAX = 3
#: 2-bit useful-counter ceiling.
U_MAX = 3
#: the base bimodal table has ``2 ** (entry_bits + BASE_EXTRA_BITS)``
#: 2-bit counters (it is cheap, so it gets 4x the tagged-table entries).
BASE_EXTRA_BITS = 2

#: default per-tagged-table size exponent (512-entry tables).
DEFAULT_ENTRY_BITS = 9
#: the longest geometric history must fit the int64 history columns.
MAX_TABLES = 4


def tage_geometries(tables: int) -> List[int]:
    """Geometric history lengths ``4, 8, 16, 32`` for ``tables`` tables."""
    return [4 << i for i in range(tables)]


def fold_history(history: int, length: int, bits: int) -> int:
    """XOR-fold the low ``length`` bits of ``history`` into ``bits`` bits.

    Written with a fixed chunk count (not ``while value``) so the columnar
    kernels can run the identical loop over whole NumPy columns.
    """
    folded = 0
    value = history & ((1 << length) - 1)
    mask = (1 << bits) - 1
    for _ in range((length + bits - 1) // bits):
        folded ^= value & mask
        value >>= bits
    return folded


def tage_index(pc: int, history: int, length: int, entry_bits: int) -> int:
    """Tagged-table index: folded history XOR branch address."""
    return ((pc >> 2) ^ fold_history(history, length, entry_bits)) & (
        (1 << entry_bits) - 1
    )


def tage_tag(pc: int, history: int, length: int) -> int:
    """Tagged-table tag: two differently-folded history hashes XOR pc."""
    return (
        (pc >> 2)
        ^ fold_history(history, length, TAG_BITS)
        ^ (fold_history(history, length, TAG_BITS - 1) << 1)
    ) & ((1 << TAG_BITS) - 1)


class TageState:
    """The mutable tables of one TAGE instance, hash-agnostic.

    Callers hand :meth:`peek` / :meth:`step` the *precomputed* base index
    and per-table (index, tag) pairs; the scalar predictor computes them
    per record, the vector kernel computes them columnar.  Keeping the
    selection/update logic here — and only here — is what makes the two
    paths bit-exact by construction.
    """

    def __init__(self, tables: int, entry_bits: int):
        if not 1 <= tables <= MAX_TABLES:
            raise ConfigError(
                f"tage tables must be in 1..{MAX_TABLES}, got {tables}"
            )
        if not 1 <= entry_bits <= 16:
            raise ConfigError(
                f"tage entry bits must be in 1..16, got {entry_bits}"
            )
        self.tables = tables
        self.entry_bits = entry_bits
        self.lengths = tage_geometries(tables)
        size = 1 << entry_bits
        self.base = [2] * (1 << (entry_bits + BASE_EXTRA_BITS))
        self.valid = [[False] * size for _ in range(tables)]
        self.tag = [[0] * size for _ in range(tables)]
        self.ctr = [[0] * size for _ in range(tables)]
        self.useful = [[0] * size for _ in range(tables)]

    # ------------------------------------------------------------------
    def _select(
        self, base_index: int, indices: Sequence[int], tags: Sequence[int]
    ) -> Tuple[int, bool, bool]:
        """(provider table or -1, prediction, altpred)."""
        provider = -1
        alternate = -1
        for i in range(self.tables - 1, -1, -1):
            if self.valid[i][indices[i]] and self.tag[i][indices[i]] == tags[i]:
                if provider < 0:
                    provider = i
                else:
                    alternate = i
                    break
        base_prediction = self.base[base_index] >= 2
        if provider < 0:
            return provider, base_prediction, base_prediction
        prediction = self.ctr[provider][indices[provider]] >= 0
        if alternate >= 0:
            alt_prediction = self.ctr[alternate][indices[alternate]] >= 0
        else:
            alt_prediction = base_prediction
        return provider, prediction, alt_prediction

    def peek(
        self, base_index: int, indices: Sequence[int], tags: Sequence[int]
    ) -> bool:
        """Prediction only — no state change."""
        return self._select(base_index, indices, tags)[1]

    def step(
        self,
        base_index: int,
        indices: Sequence[int],
        tags: Sequence[int],
        taken: bool,
    ) -> bool:
        """Predict-and-update one branch; returns the prediction."""
        provider, prediction, alt_prediction = self._select(
            base_index, indices, tags
        )
        if provider >= 0:
            index = indices[provider]
            if prediction != alt_prediction:
                u = self.useful[provider][index]
                self.useful[provider][index] = (
                    min(U_MAX, u + 1) if prediction == taken else max(0, u - 1)
                )
            counter = self.ctr[provider][index]
            self.ctr[provider][index] = (
                min(CTR_MAX, counter + 1) if taken else max(CTR_MIN, counter - 1)
            )
        else:
            counter = self.base[base_index]
            self.base[base_index] = (
                min(3, counter + 1) if taken else max(0, counter - 1)
            )
        if prediction != taken and provider < self.tables - 1:
            allocated = False
            for j in range(provider + 1, self.tables):
                if self.useful[j][indices[j]] == 0:
                    self.valid[j][indices[j]] = True
                    self.tag[j][indices[j]] = tags[j]
                    self.ctr[j][indices[j]] = 0 if taken else -1
                    allocated = True
                    break
            if not allocated:
                for j in range(provider + 1, self.tables):
                    if self.useful[j][indices[j]] > 0:
                        self.useful[j][indices[j]] -= 1
        return prediction


class TagePredictor(ConditionalBranchPredictor):
    """TAGE over a single global history register (init all-zeros)."""

    def __init__(self, tables: int, entry_bits: int = DEFAULT_ENTRY_BITS):
        self.state = TageState(tables, entry_bits)
        self.tables = tables
        self.entry_bits = entry_bits
        self.max_history = self.state.lengths[-1]
        self._mask = (1 << self.max_history) - 1
        self._history = 0

    def _hashes(self, pc: int) -> Tuple[int, List[int], List[int]]:
        base_index = (pc >> 2) & (
            (1 << (self.entry_bits + BASE_EXTRA_BITS)) - 1
        )
        history = self._history
        indices = [
            tage_index(pc, history, length, self.entry_bits)
            for length in self.state.lengths
        ]
        tags = [tage_tag(pc, history, length) for length in self.state.lengths]
        return base_index, indices, tags

    def predict(self, pc: int, target: int) -> bool:
        base_index, indices, tags = self._hashes(pc)
        return self.state.peek(base_index, indices, tags)

    def update(self, pc: int, target: int, taken: bool) -> None:
        base_index, indices, tags = self._hashes(pc)
        self.state.step(base_index, indices, tags, taken)
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask

    def reset(self) -> None:
        self.state = TageState(self.tables, self.entry_bits)
        self._history = 0

    @property
    def name(self) -> str:
        return f"tage({self.tables},{self.entry_bits})"
