"""Jiménez & Lin perceptron branch predictor.

Each table row holds a signed weight vector ``w[0..h]``; the prediction
for a branch is the sign of the dot product of that vector with the
bipolar global history (``+1`` for taken, ``-1`` for not taken, ``w[0]``
against a constant ``+1`` bias input)::

    y = w[0] + sum_i w[i] * x_i        predict taken iff y >= 0

Training runs on a misprediction *or* whenever ``|y|`` is at or below the
threshold ``theta = floor(1.93 * h + 14)`` (the paper's empirically-best
margin): every weight moves one step toward agreement with the outcome,
saturating at the 8-bit range ``[-128, 127]``.

The structure is deliberately the classic 2001 HPCA design — one global
history register, rows selected by branch address modulo table size — so
its per-site behaviour is comparable against the 1991 two-level schemes
the repo reproduces: it learns *linearly separable* functions of the last
``h`` outcomes, which covers the static analyzer's ``correlated(d)``
class whenever the correlated sources fall inside the history window.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.predictors.base import ConditionalBranchPredictor

#: 8-bit saturating weight range.
WEIGHT_MIN = -128
WEIGHT_MAX = 127

#: default number of weight-vector rows (4 KB-class table at h=12).
DEFAULT_ROWS = 512

#: widest supported history: history registers are replayed as int64
#: columns by the vector kernels, so the window must fit 62 bits.
MAX_HISTORY = 62


def perceptron_threshold(history_length: int) -> int:
    """Jiménez & Lin's training threshold ``floor(1.93 * h + 14)``."""
    return int(1.93 * history_length + 14)


class PerceptronPredictor(ConditionalBranchPredictor):
    """Global-history perceptron predictor (Jiménez & Lin, HPCA 2001).

    ``history_length`` is the global-history window ``h``; ``rows`` the
    number of weight vectors (selected by ``(pc >> 2) % rows``).  Bit
    ``j-1`` of the history register is the outcome ``j`` branches ago,
    matching the repo's other global-history predictors (gshare init-0).
    """

    def __init__(self, history_length: int, rows: int = DEFAULT_ROWS):
        if not 1 <= history_length <= MAX_HISTORY:
            raise ConfigError(
                f"perceptron history length must be in 1..{MAX_HISTORY},"
                f" got {history_length}"
            )
        if rows < 1:
            raise ConfigError(f"perceptron rows must be >= 1, got {rows}")
        self.history_length = history_length
        self.rows = rows
        self.theta = perceptron_threshold(history_length)
        self._mask = (1 << history_length) - 1
        self._weights: List[List[int]] = [
            [0] * (history_length + 1) for _ in range(rows)
        ]
        self._history = 0

    # ------------------------------------------------------------------
    def _output(self, pc: int) -> int:
        weights = self._weights[(pc >> 2) % self.rows]
        y = weights[0]
        history = self._history
        for i in range(self.history_length):
            if (history >> i) & 1:
                y += weights[i + 1]
            else:
                y -= weights[i + 1]
        return y

    def predict(self, pc: int, target: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, target: int, taken: bool) -> None:
        y = self._output(pc)
        if (y >= 0) != taken or abs(y) <= self.theta:
            weights = self._weights[(pc >> 2) % self.rows]
            step = 1 if taken else -1
            weights[0] = min(WEIGHT_MAX, max(WEIGHT_MIN, weights[0] + step))
            history = self._history
            for i in range(self.history_length):
                delta = step if (history >> i) & 1 else -step
                weights[i + 1] = min(
                    WEIGHT_MAX, max(WEIGHT_MIN, weights[i + 1] + delta)
                )
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask

    def reset(self) -> None:
        for row in self._weights:
            for i in range(len(row)):
                row[i] = 0
        self._history = 0

    @property
    def name(self) -> str:
        return f"perceptron({self.history_length},{self.rows})"
