"""Post-2000 predictor subsystem: perceptron and TAGE.

These are the repo's "modern" comparators — the schemes the H2P pipeline
(`repro h2p`, fig11) plays against the 1991 two-level designs on the
hard-to-predict sites the static analyzer ranks.  Both register through
:mod:`repro.predictors.spec` (``perceptron(h[,rows])``, ``tage(t[,bits])``)
and are therefore picked up by every engine layer: scalar reference,
vector kernels, carried-state streaming, fused sweeps and the result
cache.
"""

from repro.predictors.modern.perceptron import (
    DEFAULT_ROWS,
    MAX_HISTORY,
    WEIGHT_MAX,
    WEIGHT_MIN,
    PerceptronPredictor,
    perceptron_threshold,
)
from repro.predictors.modern.tage import (
    BASE_EXTRA_BITS,
    CTR_MAX,
    CTR_MIN,
    DEFAULT_ENTRY_BITS,
    MAX_TABLES,
    TAG_BITS,
    U_MAX,
    TagePredictor,
    TageState,
    fold_history,
    tage_geometries,
    tage_index,
    tage_tag,
)

__all__ = [
    "BASE_EXTRA_BITS",
    "CTR_MAX",
    "CTR_MIN",
    "DEFAULT_ENTRY_BITS",
    "DEFAULT_ROWS",
    "MAX_HISTORY",
    "MAX_TABLES",
    "TAG_BITS",
    "U_MAX",
    "WEIGHT_MAX",
    "WEIGHT_MIN",
    "PerceptronPredictor",
    "TagePredictor",
    "TageState",
    "fold_history",
    "perceptron_threshold",
    "tage_geometries",
    "tage_index",
    "tage_tag",
]
