"""A simple in-order front-end timing model.

The paper's motivation is that a misprediction flushes the speculative work
of a deep pipeline: "the performance improvement on a high-performance
processor can be considerable."  This module makes that quantitative with a
small, explicit timing model rather than a closed-form estimate:

* instructions issue at ``issue_width`` per cycle;
* a *correctly predicted* taken branch costs ``taken_redirect_penalty``
  fetch bubbles (the target still has to be fetched; zero for machines with
  a branch target buffer providing same-cycle targets);
* a *mispredicted* conditional branch costs ``mispredict_penalty`` cycles of
  flushed work (the pipeline depth in front of execute);
* an unconditional branch or return costs ``taken_redirect_penalty`` unless
  its target is supplied by the return address stack, which this model
  consults exactly like the paper's methodology (section 4).

The model consumes the same branch traces as the prediction simulator, so
"accuracy" and "cycles" come from one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigError
from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.trace.record import BranchClass, BranchRecord, InstructionMix


@dataclass(frozen=True)
class PipelineConfig:
    """Front-end timing parameters.

    The defaults model a moderate early-90s deep pipeline: single-issue
    decode of the paper's era machines would use ``issue_width=1``; modern
    illustrative values are perfectly legal — the *comparison between
    predictors* is the point, not absolute cycle counts.
    """

    issue_width: int = 2
    mispredict_penalty: int = 8
    taken_redirect_penalty: int = 1
    ras_depth: int = 16

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigError(f"issue_width must be >= 1, got {self.issue_width}")
        if self.mispredict_penalty < 0 or self.taken_redirect_penalty < 0:
            raise ConfigError("penalties must be non-negative")
        if self.ras_depth < 1:
            raise ConfigError(f"ras_depth must be >= 1, got {self.ras_depth}")


@dataclass
class PipelineResult:
    """Cycle accounting for one run."""

    config: PipelineConfig
    instructions: int = 0
    base_cycles: int = 0
    flush_cycles: int = 0
    redirect_cycles: int = 0
    conditional_branches: int = 0
    mispredictions: int = 0
    return_mispredictions: int = 0

    @property
    def cycles(self) -> int:
        return self.base_cycles + self.flush_cycles + self.redirect_cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def accuracy(self) -> float:
        if not self.conditional_branches:
            return 0.0
        return 1.0 - self.mispredictions / self.conditional_branches

    def speedup_over(self, other: "PipelineResult") -> float:
        """How much faster this run is than ``other`` (same instructions)."""
        if self.cycles == 0:
            return 0.0
        return other.cycles / self.cycles


def simulate_pipeline(
    predictor: ConditionalBranchPredictor,
    records: Iterable[BranchRecord],
    mix: InstructionMix,
    config: Optional[PipelineConfig] = None,
) -> PipelineResult:
    """Run the timing model over a branch trace.

    Args:
        predictor: conditional-branch direction predictor under test.
        records: the branch trace.
        mix: the trace's instruction mix (supplies the non-branch
            instruction count that the base issue time depends on).
        config: timing parameters.

    The base cycle count is ``ceil(instructions / issue_width)``; branch
    events add flush or redirect cycles on top.
    """
    cfg = config if config is not None else PipelineConfig()
    result = PipelineResult(config=cfg)
    ras = ReturnAddressStack(cfg.ras_depth)

    flush = 0
    redirect = 0
    conditional_total = 0
    mispredicted = 0
    return_missed = 0

    CONDITIONAL = BranchClass.CONDITIONAL
    RETURN = BranchClass.RETURN

    for record in records:
        cls = record.cls
        if cls is CONDITIONAL:
            conditional_total += 1
            prediction = predictor.predict(record.pc, record.target)
            predictor.update(record.pc, record.target, record.taken)
            if prediction != record.taken:
                mispredicted += 1
                flush += cfg.mispredict_penalty
            elif record.taken:
                redirect += cfg.taken_redirect_penalty
        elif cls is RETURN:
            if ras.pop() == record.target:
                redirect += cfg.taken_redirect_penalty
            else:
                return_missed += 1
                flush += cfg.mispredict_penalty
        else:
            if record.is_call:
                ras.push(record.pc + 4)
            redirect += cfg.taken_redirect_penalty

    instructions = mix.total_instructions
    result.instructions = instructions
    result.base_cycles = -(-instructions // cfg.issue_width)  # ceil division
    result.flush_cycles = flush
    result.redirect_cycles = redirect
    result.conditional_branches = conditional_total
    result.mispredictions = mispredicted
    result.return_mispredictions = return_missed
    return result
