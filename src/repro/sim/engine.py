"""The branch-prediction simulator core.

Mirrors the paper's methodology: the trace is decoded into branch classes;
conditional branches go through the direction predictor under test
(predict, verify, update); subroutine calls and returns exercise a return
address stack; unconditional branches need no direction prediction.

The loop is kept minimal because a full sweep pushes tens of millions of
records through it.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.sim.results import PredictionStats
from repro.trace.record import BranchClass, BranchRecord


def simulate(
    predictor: ConditionalBranchPredictor,
    records: Iterable[BranchRecord],
    ras: Optional[ReturnAddressStack] = None,
) -> PredictionStats:
    """Run ``predictor`` over ``records`` and score it.

    Args:
        predictor: the conditional-branch direction predictor under test.
        records: a branch trace (any iterable of
            :class:`~repro.trace.record.BranchRecord`).
        ras: optional return address stack; when provided, call records push
            return addresses and RETURN-class records are scored against the
            popped prediction.

    Returns the accumulated :class:`~repro.sim.results.PredictionStats`.
    """
    stats = PredictionStats()
    conditional_total = 0
    conditional_correct = 0
    predict = predictor.predict
    update = predictor.update
    CONDITIONAL = BranchClass.CONDITIONAL
    RETURN = BranchClass.RETURN

    if ras is None:
        for record in records:
            if record.cls is CONDITIONAL:
                pc = record.pc
                target = record.target
                taken = record.taken
                conditional_total += 1
                if predict(pc, target) == taken:
                    conditional_correct += 1
                update(pc, target, taken)
    else:
        push = ras.push
        pop = ras.pop
        for record in records:
            cls = record.cls
            if cls is CONDITIONAL:
                pc = record.pc
                target = record.target
                taken = record.taken
                conditional_total += 1
                if predict(pc, target) == taken:
                    conditional_correct += 1
                update(pc, target, taken)
            elif cls is RETURN:
                stats.returns_total += 1
                if pop() == record.target:
                    stats.returns_correct += 1
            elif record.is_call:
                push(record.pc + 4)

    stats.conditional_total = conditional_total
    stats.conditional_correct = conditional_correct
    return stats
