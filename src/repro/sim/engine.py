"""The branch-prediction simulator core.

Mirrors the paper's methodology: the trace is decoded into branch classes;
conditional branches go through the direction predictor under test
(predict, verify, update); subroutine calls and returns exercise a return
address stack; unconditional branches need no direction prediction.

The loop is kept minimal because a full sweep pushes tens of millions of
records through it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.sim.results import PredictionStats
from repro.trace.columnar import PackedTrace
from repro.trace.record import BranchClass, BranchRecord

_CLS_MASK = 0x0E
_RETURN_BITS = int(BranchClass.RETURN) << 1
_CALL_BIT = 0x10


def simulate(
    predictor: ConditionalBranchPredictor,
    records: Union[Iterable[BranchRecord], PackedTrace],
    ras: Optional[ReturnAddressStack] = None,
) -> PredictionStats:
    """Run ``predictor`` over ``records`` and score it.

    Args:
        predictor: the conditional-branch direction predictor under test.
        records: a branch trace — any iterable of
            :class:`~repro.trace.record.BranchRecord`, or a
            :class:`~repro.trace.columnar.PackedTrace`, which is dispatched
            to the columnar fast path :func:`simulate_packed` automatically.
        ras: optional return address stack; when provided, call records push
            return addresses and RETURN-class records are scored against the
            popped prediction.

    Returns the accumulated :class:`~repro.sim.results.PredictionStats`.
    """
    if isinstance(records, PackedTrace):
        return simulate_packed(predictor, records, ras)
    stats = PredictionStats()
    conditional_total = 0
    conditional_correct = 0
    predict = predictor.predict
    update = predictor.update
    CONDITIONAL = BranchClass.CONDITIONAL
    RETURN = BranchClass.RETURN

    if ras is None:
        for record in records:
            if record.cls is CONDITIONAL:
                pc = record.pc
                target = record.target
                taken = record.taken
                conditional_total += 1
                if predict(pc, target) == taken:
                    conditional_correct += 1
                update(pc, target, taken)
    else:
        push = ras.push
        pop = ras.pop
        for record in records:
            cls = record.cls
            if cls is CONDITIONAL:
                pc = record.pc
                target = record.target
                taken = record.taken
                conditional_total += 1
                if predict(pc, target) == taken:
                    conditional_correct += 1
                update(pc, target, taken)
            elif cls is RETURN:
                stats.returns_total += 1
                if pop() == record.target:
                    stats.returns_correct += 1
            elif record.is_call:
                push(record.pc + 4)

    stats.conditional_total = conditional_total
    stats.conditional_correct = conditional_correct
    return stats


def simulate_packed(
    predictor: ConditionalBranchPredictor,
    packed: PackedTrace,
    ras: Optional[ReturnAddressStack] = None,
) -> PredictionStats:
    """Columnar twin of :func:`simulate` over a :class:`PackedTrace`.

    Produces statistics identical to replaying ``packed.to_records()``
    through :func:`simulate`: predictors see the same ``(pc, target, taken)``
    sequence with the same types, delivered through the fused
    :meth:`~repro.predictors.base.ConditionalBranchPredictor.observe` hook.
    Without a RAS the loop touches only the precomputed conditional-branch
    columns (non-conditional records cannot influence a direction
    predictor).  Skipping the non-conditional records and the fused
    single-lookup observe are where the speedup over the record-list loop
    comes from.
    """
    stats = PredictionStats()
    conditional_total = 0
    conditional_correct = 0
    observe = predictor.observe

    if ras is None:
        conditional_total = packed.num_conditional
        for pc, target, taken in zip(
            packed.cond_pc, packed.cond_target, packed.cond_taken
        ):
            if observe(pc, target, taken) == taken:
                conditional_correct += 1
    else:
        push = ras.push
        pop = ras.pop
        for pc, target, flags in zip(packed.pc, packed.target, packed.flags):
            cls_bits = flags & _CLS_MASK
            if cls_bits == 0:  # conditional
                taken = bool(flags & 1)
                conditional_total += 1
                if observe(pc, target, taken) == taken:
                    conditional_correct += 1
            elif cls_bits == _RETURN_BITS:
                stats.returns_total += 1
                if pop() == target:
                    stats.returns_correct += 1
            elif flags & _CALL_BIT:
                push(pc + 4)

    stats.conditional_total = conditional_total
    stats.conditional_correct = conditional_correct
    return stats
