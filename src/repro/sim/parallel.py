"""Parallel sweep execution over a process pool.

The experiment grid behind every figure used to fan out as independent
(spec x benchmark) cells; with the fused engine (:mod:`repro.sim.sweep`)
the natural unit of work is a **benchmark's whole spec group** — one
worker makes one pass over the trace and scores every fused spec against
shared intermediates.  :func:`run_parallel_sweep` therefore partitions
the grid as (benchmark -> spec-group):

* The coordinating process first *warms* a shared on-disk
  :class:`~repro.workloads.base.TraceCache` — every benchmark's ISA trace is
  generated exactly once per machine and written as a content-addressed
  shard (:mod:`repro.trace.store`), so workers only ever pay a warm,
  memory-mapped load whose pages the OS shares between them.  A memory-only
  cache is transparently given a temporary disk directory for the duration
  of the sweep.
* Each task is a picklable ``(benchmark, spec strings, cap, backend,
  cache results?)`` tuple: one task carries a benchmark's entire fused
  group (scored by :meth:`~repro.sim.runner.SweepRunner.score_benchmark`
  in a single trace pass), plus one task per scalar-fallback spec so the
  slow scalar cells still spread across workers.  The backend is resolved
  (``auto`` -> ``scalar`` or ``vector``) once in the coordinating process
  so every worker scores with the same engine, and the coordinator's
  result-cache choice rides along so workers share the persisted rows.
* Results merge into the :class:`~repro.sim.results.SweepResult` in the
  deterministic (spec-order, then benchmark-order) sequence of the serial
  runner, regardless of task completion order, so serial and parallel sweeps
  are byte-identical.
* ``jobs <= 1``, pool start-up failure, or task pickling failure all fall
  back to the serial :meth:`~repro.sim.runner.SweepRunner.run` path with
  identical output.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.backend import resolve_backend
from repro.sim.results import PredictionStats, SweepResult
from repro.sim.sweep import SweepPlan
from repro.workloads.base import TraceCache, get_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.runner import SweepRunner

#: (benchmark, spec strings scored together, conditional-branch cap,
#:  resolved backend, consult/fill the shared result cache?)
Task = Tuple[str, Tuple[str, ...], int, str, bool]
#: picklable flat result per spec: the four PredictionStats counters, or
#: ``None`` for a cell skipped as unavailable (ST-Diff without training data)
StatsTuple = Tuple[int, int, int, int]
GroupResult = Tuple[Optional[StatsTuple], ...]

_WORKER_CACHE: Optional[TraceCache] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means one worker per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


def _init_worker(cache_dir: str) -> None:
    """Process-pool initializer: point this worker at the shared disk cache."""
    global _WORKER_CACHE
    _WORKER_CACHE = TraceCache(disk_dir=cache_dir)


def _run_task(task: Task) -> GroupResult:
    """Score one benchmark's spec group inside a worker process.

    The worker's :class:`TraceCache` opens the coordinator-warmed shards
    straight from the shared store directory (memory-mapped, zero-copy), and
    ``score_benchmark`` replays the trace once for the whole group.
    """
    from repro.sim.runner import AUTO_RESULT_CACHE, SweepRunner

    benchmark, spec_texts, cap, backend, cache_results = task
    assert _WORKER_CACHE is not None, "worker initializer did not run"
    runner = SweepRunner(
        benchmarks=[benchmark], max_conditional=cap, cache=_WORKER_CACHE,
        backend=backend,
        result_cache=AUTO_RESULT_CACHE if cache_results else None,
    )
    rows = runner.score_benchmark(list(spec_texts), benchmark, skip_unavailable=True)
    return tuple(
        None
        if stats is None
        else (
            stats.conditional_total,
            stats.conditional_correct,
            stats.returns_total,
            stats.returns_correct,
        )
        for stats in rows
    )


def _check_available(
    specs: Sequence[PredictorSpec],
    benchmarks: Sequence[str],
    skip_unavailable: bool,
) -> None:
    """Raise the serial sweep's ST-Diff :class:`WorkloadError` up front.

    Workers always score with ``skip_unavailable=True`` (a ``None`` row per
    missing cell), so when the caller asked for hard failures the coordinator
    must perform the check itself, before any worker starts, to fail
    identically to the serial path.
    """
    if skip_unavailable:
        return
    for spec in specs:
        if spec.scheme != "ST" or spec.data_mode != "Diff":
            continue
        for benchmark in benchmarks:
            if not get_workload(benchmark).has_training_set:
                raise WorkloadError(
                    f"benchmark {benchmark!r} has no alternative training data set"
                    " (Table 3 marks it NA)"
                )


def _plan_groups(
    specs: Sequence[PredictorSpec], backend: str
) -> List[Tuple[int, ...]]:
    """Spec-index groups in deterministic order: the fused group first
    (one trace pass per benchmark), then each scalar-fallback spec alone."""
    plan = SweepPlan(specs, backend)
    groups: List[Tuple[int, ...]] = []
    if plan.fused:
        groups.append(tuple(plan.fused))
    groups.extend((index,) for index in plan.scalar)
    return groups


def _warm_disk_cache(
    cache: TraceCache,
    specs: Sequence[PredictorSpec],
    benchmarks: Sequence[str],
    cap: int,
) -> None:
    """Generate every trace the sweep needs, once, into the disk layer."""
    needs_training = any(
        spec.scheme == "ST" and spec.data_mode == "Diff" for spec in specs
    )
    for benchmark in benchmarks:
        workload = get_workload(benchmark)
        cache.ensure_on_disk(workload, "test", cap)
        if needs_training and workload.has_training_set:
            cache.ensure_on_disk(workload, "train", cap)


def run_parallel_sweep(
    runner: "SweepRunner",
    specs: Sequence[object],
    jobs: Optional[int] = None,
    skip_unavailable: bool = True,
) -> SweepResult:
    """Run ``runner``'s sweep grid across ``jobs`` worker processes.

    Returns a :class:`SweepResult` identical to
    ``runner.run(specs, skip_unavailable)``.  Falls back to that serial path
    outright for ``jobs == 1`` and on any pool/pickling failure.
    """
    parsed = [
        spec if isinstance(spec, PredictorSpec) else parse_spec(str(spec))
        for spec in specs
    ]
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or not parsed:
        return runner.run(parsed, skip_unavailable)

    _check_available(parsed, runner.benchmarks, skip_unavailable)
    cap = runner.max_conditional
    backend = resolve_backend(runner.backend)
    groups = _plan_groups(parsed, backend)

    temp_dir: Optional[str] = None
    if runner.cache.disk_dir is not None:
        disk_cache = runner.cache
    else:
        temp_dir = tempfile.mkdtemp(prefix="repro-sweep-")
        disk_cache = runner.cache.with_disk(temp_dir)
    try:
        _warm_disk_cache(disk_cache, parsed, runner.benchmarks, cap)
        # a temp-dir spill has no durable store, so persisting rows keyed to
        # it would never be read back — skip the result cache in that case
        cache_results = runner.result_cache is not None and temp_dir is None
        cells: List[Tuple[str, Tuple[int, ...]]] = [
            (benchmark, group)
            for benchmark in runner.benchmarks
            for group in groups
        ]
        tasks: List[Task] = [
            (
                benchmark,
                tuple(parsed[index].canonical() for index in group),
                cap,
                backend,
                cache_results,
            )
            for benchmark, group in cells
        ]
        try:
            outcomes = _dispatch(tasks, jobs, str(disk_cache.disk_dir))
        except Exception:
            # pool start-up or pickling failure (restricted platforms, exotic
            # specs): the serial path always works and gives identical output
            return runner.run(parsed, skip_unavailable)
        return _merge(parsed, cells, outcomes, runner)
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)


def _dispatch(tasks: Sequence[Task], jobs: int, cache_dir: str) -> List[GroupResult]:
    """Run all tasks on the pool, preserving task order in the result list."""
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_init_worker,
        initargs=(cache_dir,),
    ) as pool:
        return list(pool.map(_run_task, tasks, chunksize=1))


def _merge(
    specs: Sequence[PredictorSpec],
    cells: Sequence[Tuple[str, Tuple[int, ...]]],
    outcomes: Sequence[GroupResult],
    runner: "SweepRunner",
) -> SweepResult:
    """Assemble the SweepResult in the serial runner's deterministic order."""
    scored: Dict[Tuple[int, str], PredictionStats] = {}
    for (benchmark, group), rows in zip(cells, outcomes):
        for index, flat in zip(group, rows):
            if flat is None:
                continue
            scored[(index, benchmark)] = PredictionStats(
                conditional_total=flat[0],
                conditional_correct=flat[1],
                returns_total=flat[2],
                returns_correct=flat[3],
            )
    return runner.assemble(specs, scored)
