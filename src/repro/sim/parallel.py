"""Parallel sweep execution over a process pool.

The experiment grid behind every figure is (predictor spec x benchmark):
dozens of independent simulations that a single CPython interpreter grinds
through serially.  :func:`run_parallel_sweep` fans that grid out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* The coordinating process first *warms* a shared on-disk
  :class:`~repro.workloads.base.TraceCache` — every benchmark's ISA trace is
  generated exactly once per machine and written as a content-addressed
  shard (:mod:`repro.trace.store`), so workers only ever pay a warm,
  memory-mapped load whose pages the OS shares between them.  A memory-only
  cache is transparently given a temporary disk directory for the duration
  of the sweep.
* Each task is a picklable ``(spec, benchmark, cap, backend)`` tuple; the
  worker initializer builds a per-process cache against the shared directory,
  so a worker that simulates several configurations of one benchmark loads
  its trace once.  The backend is resolved (``auto`` -> ``scalar`` or
  ``vector``) once in the coordinating process so every worker scores with
  the same engine.
* Results merge into the :class:`~repro.sim.results.SweepResult` in the
  deterministic (spec-order, then benchmark-order) sequence of the serial
  runner, regardless of task completion order, so serial and parallel sweeps
  are byte-identical.
* ``jobs <= 1``, pool start-up failure, or task pickling failure all fall
  back to the serial :meth:`~repro.sim.runner.SweepRunner.run` path with
  identical output.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.backend import resolve_backend
from repro.sim.results import BenchmarkResult, PredictionStats, SweepResult
from repro.workloads.base import TraceCache, get_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.runner import SweepRunner

#: (spec string, benchmark name, conditional-branch cap, resolved backend)
Task = Tuple[str, str, int, str]
#: picklable flat result: the four PredictionStats counters
StatsTuple = Tuple[int, int, int, int]

_WORKER_CACHE: Optional[TraceCache] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means one worker per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


def _init_worker(cache_dir: str) -> None:
    """Process-pool initializer: point this worker at the shared disk cache."""
    global _WORKER_CACHE
    _WORKER_CACHE = TraceCache(disk_dir=cache_dir)


def _run_task(task: Task) -> StatsTuple:
    """Simulate one (spec, benchmark) cell inside a worker process."""
    from repro.sim.runner import SweepRunner

    spec_text, benchmark, cap, backend = task
    assert _WORKER_CACHE is not None, "worker initializer did not run"
    runner = SweepRunner(
        benchmarks=[benchmark], max_conditional=cap, cache=_WORKER_CACHE,
        backend=backend,
    )
    stats = runner.run_one(spec_text, benchmark).stats
    return (
        stats.conditional_total,
        stats.conditional_correct,
        stats.returns_total,
        stats.returns_correct,
    )


def _plan_cells(
    specs: Sequence[PredictorSpec],
    benchmarks: Sequence[str],
    skip_unavailable: bool,
) -> List[Tuple[int, str]]:
    """The (spec index, benchmark) grid in deterministic serial order.

    Applies the serial runner's ST-Diff skipping rule up front so the task
    list (and any :class:`~repro.errors.WorkloadError`) is identical to what
    the serial sweep would produce.
    """
    cells: List[Tuple[int, str]] = []
    for index, spec in enumerate(specs):
        for benchmark in benchmarks:
            if spec.scheme == "ST" and spec.data_mode == "Diff":
                if not get_workload(benchmark).has_training_set:
                    if skip_unavailable:
                        continue
                    raise WorkloadError(
                        f"benchmark {benchmark!r} has no alternative training data set"
                        " (Table 3 marks it NA)"
                    )
            cells.append((index, benchmark))
    return cells


def _warm_disk_cache(
    cache: TraceCache,
    specs: Sequence[PredictorSpec],
    cells: Sequence[Tuple[int, str]],
    cap: int,
) -> None:
    """Generate every trace the sweep needs, once, into the disk layer."""
    needed: List[Tuple[str, str]] = []
    for index, benchmark in cells:
        spec = specs[index]
        if (benchmark, "test") not in needed:
            needed.append((benchmark, "test"))
        if spec.scheme == "ST" and spec.data_mode == "Diff":
            if (benchmark, "train") not in needed:
                needed.append((benchmark, "train"))
    for benchmark, role in needed:
        cache.ensure_on_disk(get_workload(benchmark), role, cap)


def run_parallel_sweep(
    runner: "SweepRunner",
    specs: Sequence[object],
    jobs: Optional[int] = None,
    skip_unavailable: bool = True,
) -> SweepResult:
    """Run ``runner``'s sweep grid across ``jobs`` worker processes.

    Returns a :class:`SweepResult` identical to
    ``runner.run(specs, skip_unavailable)``.  Falls back to that serial path
    outright for ``jobs == 1`` and on any pool/pickling failure.
    """
    parsed = [
        spec if isinstance(spec, PredictorSpec) else parse_spec(str(spec))
        for spec in specs
    ]
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or not parsed:
        return runner.run(parsed, skip_unavailable)

    cells = _plan_cells(parsed, runner.benchmarks, skip_unavailable)
    cap = runner.max_conditional
    backend = resolve_backend(runner.backend)

    temp_dir: Optional[str] = None
    if runner.cache.disk_dir is not None:
        disk_cache = runner.cache
    else:
        temp_dir = tempfile.mkdtemp(prefix="repro-sweep-")
        disk_cache = runner.cache.with_disk(temp_dir)
    try:
        _warm_disk_cache(disk_cache, parsed, cells, cap)
        tasks: List[Task] = [
            (parsed[index].canonical(), benchmark, cap, backend)
            for index, benchmark in cells
        ]
        try:
            outcomes = _dispatch(tasks, jobs, str(disk_cache.disk_dir))
        except Exception:
            # pool start-up or pickling failure (restricted platforms, exotic
            # specs): the serial path always works and gives identical output
            return runner.run(parsed, skip_unavailable)
        return _merge(parsed, cells, outcomes, runner)
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)


def _dispatch(tasks: Sequence[Task], jobs: int, cache_dir: str) -> List[StatsTuple]:
    """Run all tasks on the pool, preserving task order in the result list."""
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_init_worker,
        initargs=(cache_dir,),
    ) as pool:
        return list(pool.map(_run_task, tasks, chunksize=1))


def _merge(
    specs: Sequence[PredictorSpec],
    cells: Sequence[Tuple[int, str]],
    outcomes: Sequence[StatsTuple],
    runner: "SweepRunner",
) -> SweepResult:
    """Assemble the SweepResult in the serial runner's deterministic order."""
    by_cell: Dict[Tuple[int, str], StatsTuple] = dict(zip(cells, outcomes))
    sweep = SweepResult()
    for index, spec in enumerate(specs):
        for benchmark in runner.benchmarks:
            flat = by_cell.get((index, benchmark))
            if flat is None:
                continue
            stats = PredictionStats(
                conditional_total=flat[0],
                conditional_correct=flat[1],
                returns_total=flat[2],
                returns_correct=flat[3],
            )
            result = BenchmarkResult(
                scheme=spec.canonical(), benchmark=benchmark, stats=stats
            )
            sweep.add(result, category=get_workload(benchmark).category)
    return sweep
