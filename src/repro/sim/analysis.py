"""Interference and convergence analysis.

The paper attributes accuracy differences to two interference mechanisms —
history interference in finite HRTs (section 3.1 / Figure 6) and the shared
global pattern table — and to warm-up ("adaptive training").  This module
measures all three directly from a trace, turning the paper's qualitative
arguments into numbers:

* :func:`pattern_conflicts` — for each history pattern, how contested its
  pattern-table entry is: the fraction of updates disagreeing with the
  entry's majority outcome.  An entry shared by branches that continue the
  same pattern differently is the PT-interference the paper accepts as the
  cost of a *global* second level.
* :func:`windowed_accuracy` — accuracy over consecutive windows of the
  trace, exposing the warm-up transient that separates adaptive schemes
  from profiled ones at short trace scales.
* :func:`convergence_point` — the first window from which accuracy stays
  within a tolerance of its final level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.predictors.base import ConditionalBranchPredictor
from repro.trace.record import BranchClass, BranchRecord


@dataclass
class PatternConflictStats:
    """Contestedness of the shared pattern table for one trace."""

    history_length: int
    updates_total: int
    minority_updates: int
    contested_patterns: int
    patterns_used: int

    @property
    def conflict_rate(self) -> float:
        """Fraction of pattern-table updates that went against the entry's
        majority — an upper bound on the accuracy lost to PT sharing."""
        return self.minority_updates / self.updates_total if self.updates_total else 0.0

    @property
    def contested_fraction(self) -> float:
        """Fraction of used patterns whose continuations disagree at all."""
        return (
            self.contested_patterns / self.patterns_used if self.patterns_used else 0.0
        )


def pattern_conflicts(
    records: Iterable[BranchRecord], history_length: int = 12
) -> PatternConflictStats:
    """Measure how contested each global pattern-table entry would be.

    Replays per-address histories (ideal table, all-ones init, as the
    predictor does) and tallies, per pattern, the taken/not-taken
    continuations it receives from *all* branches combined.
    """
    if history_length < 1:
        raise ConfigError(f"history length must be >= 1, got {history_length}")
    mask = (1 << history_length) - 1
    histories: Dict[int, int] = {}
    taken_counts: Dict[int, int] = {}
    total_counts: Dict[int, int] = {}

    for record in records:
        if record.cls is not BranchClass.CONDITIONAL:
            continue
        history = histories.get(record.pc, mask)
        total_counts[history] = total_counts.get(history, 0) + 1
        if record.taken:
            taken_counts[history] = taken_counts.get(history, 0) + 1
        histories[record.pc] = ((history << 1) | (1 if record.taken else 0)) & mask

    updates = sum(total_counts.values())
    minority = 0
    contested = 0
    for pattern, total in total_counts.items():
        taken = taken_counts.get(pattern, 0)
        smaller_side = min(taken, total - taken)
        minority += smaller_side
        if smaller_side:
            contested += 1
    return PatternConflictStats(
        history_length=history_length,
        updates_total=updates,
        minority_updates=minority,
        contested_patterns=contested,
        patterns_used=len(total_counts),
    )


def windowed_accuracy(
    predictor: ConditionalBranchPredictor,
    records: Iterable[BranchRecord],
    window: int = 1_000,
) -> List[float]:
    """Prediction accuracy over consecutive windows of ``window``
    conditional branches (the final partial window is included)."""
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window}")
    accuracies: List[float] = []
    correct = 0
    seen = 0
    for record in records:
        if record.cls is not BranchClass.CONDITIONAL:
            continue
        prediction = predictor.predict(record.pc, record.target)
        predictor.update(record.pc, record.target, record.taken)
        correct += prediction == record.taken
        seen += 1
        if seen == window:
            accuracies.append(correct / window)
            correct = seen = 0
    if seen:
        accuracies.append(correct / seen)
    return accuracies


def per_site_accuracy(
    predictor: ConditionalBranchPredictor,
    records: Iterable[BranchRecord],
) -> Dict[int, "tuple[int, int]"]:
    """Per-static-site ``(correct, total)`` for a predictor over a trace.

    The static analyzer's cross-validation uses this to compare a scheme's
    behaviour site by site (e.g. static BTFN predictions against the dynamic
    :class:`~repro.predictors.static_schemes.BTFNPredictor`); it is also
    handy for finding which sites a scheme loses accuracy on.
    """
    correct: Dict[int, int] = {}
    total: Dict[int, int] = {}
    for record in records:
        if record.cls is not BranchClass.CONDITIONAL:
            continue
        prediction = predictor.predict(record.pc, record.target)
        predictor.update(record.pc, record.target, record.taken)
        total[record.pc] = total.get(record.pc, 0) + 1
        if prediction == record.taken:
            correct[record.pc] = correct.get(record.pc, 0) + 1
    return {pc: (correct.get(pc, 0), total[pc]) for pc in total}


def per_site_accuracy_many(
    predictors: "Dict[str, ConditionalBranchPredictor]",
    records: Iterable[BranchRecord],
) -> Dict[str, Dict[int, "tuple[int, int]"]]:
    """Per-site ``(correct, total)`` for several predictors in one pass.

    Equivalent to calling :func:`per_site_accuracy` once per predictor but
    reading the trace a single time — the static analyzer's cross-validation
    drives the whole scheme registry over each workload trace, and traces
    dominate the cost.
    """
    names = list(predictors)
    correct: Dict[str, Dict[int, int]] = {name: {} for name in names}
    total: Dict[int, int] = {}
    for record in records:
        if record.cls is not BranchClass.CONDITIONAL:
            continue
        total[record.pc] = total.get(record.pc, 0) + 1
        for name in names:
            predictor = predictors[name]
            prediction = predictor.predict(record.pc, record.target)
            predictor.update(record.pc, record.target, record.taken)
            if prediction == record.taken:
                scheme_correct = correct[name]
                scheme_correct[record.pc] = scheme_correct.get(record.pc, 0) + 1
    return {
        name: {pc: (correct[name].get(pc, 0), n) for pc, n in total.items()}
        for name in names
    }


def per_site_accuracy_specs(
    spec_texts: "Dict[str, str]",
    records: Sequence[BranchRecord],
) -> "Optional[Dict[str, Dict[int, tuple[int, int]]]]":
    """Fused per-site maps for registry-spec schemes, or ``None``.

    The fast twin of :func:`per_site_accuracy_many` for predictors that
    have a :mod:`repro.predictors.spec` string: the trace packs once and
    every scheme scores through the fused sweep kernel
    (:func:`repro.sim.sweep.fused_per_site`) — shared per-pc grouping,
    shared history windows, one two-level scan per group — with tallies
    identical to the replay loop.  Returns ``None`` when the vector
    backend is unavailable or any spec falls outside the fused kernel's
    coverage, in which case the caller should replay instead.
    """
    from repro.predictors.spec import parse_spec
    from repro.sim.backend import resolve_backend
    from repro.sim.kernels import vectorizable
    from repro.sim.sweep import fused_per_site, training_role
    from repro.trace.columnar import pack_records

    if resolve_backend("auto") != "vector":
        return None
    names = list(spec_texts)
    parsed = [parse_spec(spec_texts[name]) for name in names]
    if not all(vectorizable(spec) for spec in parsed):
        return None
    if any(training_role(spec) == "train" for spec in parsed):
        return None  # ST-Diff needs a separate training trace; not our job
    packed = pack_records(
        record for record in records if record.cls is BranchClass.CONDITIONAL
    )
    maps = fused_per_site(parsed, packed, trainings={"test": packed})
    return dict(zip(names, maps))


def misprediction_mass(
    per_site: "Dict[int, tuple[int, int]]",
) -> Dict[int, int]:
    """Per-site misprediction counts from a :func:`per_site_accuracy` map."""
    return {pc: n - correct for pc, (correct, n) in per_site.items()}


def top_mispredicted(
    per_site: "Dict[int, tuple[int, int]]", n: int = 5
) -> List[int]:
    """The ``n`` sites carrying the most mispredictions, heaviest first
    (pc breaks ties) — the dynamic side of the static H2P ranking.
    Sites with zero mispredictions never rank."""
    ranked = [
        (mass, pc)
        for pc, mass in misprediction_mass(per_site).items()
        if mass > 0
    ]
    ranked.sort(key=lambda item: (-item[0], item[1]))
    return [pc for _, pc in ranked[:n]]


def accuracy_within_bounds(
    per_site: "Dict[int, tuple[int, int]]",
    bounds: "Dict[int, tuple[int, int, int]]",
) -> List[str]:
    """Check dynamic per-site results against static intervals.

    ``bounds`` maps pc -> ``(lower, upper, occurrences)``: the statically
    proven correct-prediction interval and the expected execution count.
    Returns human-readable violation strings (empty = all within bounds).
    Sites absent from either map are reported — a bound for a site that
    never runs, or a dynamic site the analysis missed, is itself a bug.
    """
    violations: List[str] = []
    for pc in sorted(set(per_site) | set(bounds)):
        if pc not in bounds:
            violations.append(f"{pc:#010x}: dynamic site has no static bound")
            continue
        if pc not in per_site:
            violations.append(f"{pc:#010x}: bounded site never executed")
            continue
        correct, total = per_site[pc]
        lower, upper, occurrences = bounds[pc]
        if total != occurrences:
            violations.append(
                f"{pc:#010x}: occurrence mismatch "
                f"(static {occurrences}, dynamic {total})"
            )
        if not lower <= correct <= upper:
            violations.append(
                f"{pc:#010x}: correct={correct} outside static bound "
                f"[{lower}, {upper}]"
            )
    return violations


def convergence_point(
    accuracies: Sequence[float], tolerance: float = 0.01
) -> Optional[int]:
    """Index of the first window from which accuracy never drops more than
    ``tolerance`` below the final window's level (None if it never settles)."""
    if not accuracies:
        return None
    final = accuracies[-1]
    for index in range(len(accuracies)):
        if all(value >= final - tolerance for value in accuracies[index:]):
            return index
    return None  # pragma: no cover - index len-1 always qualifies
