"""Vectorized predictor kernels over packed traces (the ``vector`` backend).

The scalar engine dispatches one Python ``observe()`` call per conditional
record — the wall-clock floor of every full-figure sweep.  This module
scores whole predictor families with columnar batch operations instead:

* **Stateless schemes** (Always Taken / Not Taken, BTFN, per-branch
  profiling) reduce to pure column comparisons.
* **Small-FSM schemes** decompose into *independent buckets* whose state
  evolutions never interact in the scalar engine either:

  - Lee & Smith per-address automata (``LS(IHRT(,Atm),,)``) — one bucket
    per branch address;
  - the two-level AT pattern table under an ideal HRT
    (``AT(IHRT(,kSR),PT(2^k,Atm),)``) — one bucket per k-bit history
    pattern, with each record's pattern derived by a vectorized per-branch
    sliding window over the outcome column;
  - Static Training under an ideal HRT (profiled preset bits, so the test
    pass is a pure table lookup after the same history derivation);
  - the global-history extensions GAg and gshare (single global window).

* **Modern schemes** (:mod:`repro.predictors.modern`) use two further
  decompositions:

  - the perceptron's global histories are precomputed from the outcome
    column, which makes its per-row weight vectors independent streams:
    the trace is bucketed by weight row, and each row runs an *adaptive
    speculative block scan* — a block is scored against the row snapshot
    with one dot product, the first *training event* (mispredict or
    ``|y| <= theta``) is located, its update applied, and the scan
    resumes after it.  Predictions up to and including the first event
    are exact because perceptron state only changes on training events;
    block sizes adapt per row, so one densely-training hot branch cannot
    cap every other row's stride.
  - TAGE's tables couple through provider selection and allocation, so
    its per-record state walk is inherently sequential; the kernel
    instead lifts all the *hash* work — per-table folded indices and
    tags over the global-history column — into whole-column NumPy
    passes, then drives the same :class:`~repro.predictors.modern.TageState`
    update rule the scalar predictor uses, guaranteeing bit-exactness.

  Each bucket's outcome sequence is replayed through the automaton's
  precomputed (at most 4-state) transition table with a segmented
  function-composition doubling scan: ``O(n * states * log n)`` NumPy work
  in place of ``n`` interpreter dispatches.

* **Finite HRT front-ends** (AHRT / HHRT) reduce to the same bucket
  machinery through a *key remap*:

  - the hashed HHRT's collisions are just a different pc→bucket map —
    every branch hashing to a slot shares one register, so replaying the
    slot's merged outcome sequence reproduces the interference exactly;
  - the set-associative AHRT's payloads live in *physical registers*
    (eviction inherits the victim's bits — section 4.2), so each record is
    keyed by the register that services it.  The register assignment is a
    pure function of the pc touch sequence (LRU order never reads payloads
    or outcomes) and decomposes per way-set; sets whose touch alphabet
    fits in the ways — the common case — assign fully columnarly, and only
    *conflicted* sets walk their recency stack (see :class:`AhrtReplay`).

Every kernel is **bit-exact** against the scalar engine: the per-record
predictions are identical, so :class:`~repro.sim.results.PredictionStats`
and per-site accuracies match exactly.  Every spec family the registry can
parse now has a kernel — :func:`vectorizable` returns ``True`` across the
board and the scalar engine remains only as the independent reference.

NumPy is an optional dependency (see :mod:`repro.sim.backend`); everything
here raises :class:`~repro.errors.KernelError` when it is missing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigError, KernelError
from repro.predictors.automata import A2, Automaton
from repro.predictors.hrt import _HASH_MULTIPLIER
from repro.predictors.modern import (
    BASE_EXTRA_BITS,
    DEFAULT_ENTRY_BITS,
    TAG_BITS,
    WEIGHT_MAX,
    WEIGHT_MIN,
    TageState,
    perceptron_threshold,
)
from repro.predictors.spec import PredictorSpec
from repro.sim.backend import numpy_or_none
from repro.sim.results import PredictionStats
from repro.trace.columnar import PackedTrace

_CLS_MASK = 0x0E

#: spec schemes whose kernels need a training trace (profiling pass).
_NEEDS_TRAINING = ("ST", "Profile")


def _np() -> Any:
    numpy = numpy_or_none()
    if numpy is None:
        raise KernelError("vectorized kernels require NumPy, which is not installed")
    return numpy


def vectorizable(spec: PredictorSpec) -> bool:
    """Whether the vector backend can score ``spec`` bit-exactly.

    ``True`` for every spec family the registry can parse.  The finite HRTs
    (AHRT/HHRT), once excluded because their cross-branch state sharing is
    order-dependent, are handled by remapping each record to its *register*
    key before the bucket replay — see :func:`_hrt_keys` — so the function
    now only rejects genuinely unknown schemes.
    """
    if spec.scheme in ("AlwaysTaken", "AlwaysNotTaken", "BTFN", "Profile"):
        return True
    if spec.scheme in ("GAg", "gshare"):
        return spec.history_length is not None
    if spec.scheme in ("AT", "ST", "LS"):
        return spec.hrt_kind in ("IHRT", "AHRT", "HHRT")
    if spec.scheme == "Perceptron":
        return spec.history_length is not None
    if spec.scheme == "TAGE":
        return spec.tage_tables is not None
    return False


# ----------------------------------------------------------------------
# column extraction
# ----------------------------------------------------------------------
def _uint_view(np: Any, column: Any) -> Any:
    """Zero-copy NumPy view of an ``array('I')``/``array('L')`` column."""
    return np.frombuffer(column, dtype=np.dtype(f"=u{column.itemsize}"))


def _conditional_columns(packed: PackedTrace) -> Tuple[Any, Any, Any]:
    """The conditional-only ``(pc, target, taken)`` columns as int64/int64/
    int8 arrays, straight from the packed byte columns (the lazily-derived
    tuple columns are never materialised on this path)."""
    np = _np()
    flags = np.frombuffer(packed.flags, dtype=np.uint8)
    conditional = (flags & _CLS_MASK) == 0
    pc = _uint_view(np, packed.pc)[conditional].astype(np.int64)
    target = _uint_view(np, packed.target)[conditional].astype(np.int64)
    taken = (flags[conditional] & 1).astype(np.int8)
    return pc, target, taken


# ----------------------------------------------------------------------
# bucket machinery
# ----------------------------------------------------------------------
def _segment_positions(np: Any, keys: Any) -> Tuple[Any, Any]:
    """Stable sort by bucket key; returns ``(order, position-within-bucket)``.

    The stable sort preserves trace order inside every bucket, which is what
    makes per-bucket replay equivalent to the scalar engine's interleaved
    updates: entries of different buckets never read each other's state.
    """
    n = len(keys)
    order = np.argsort(keys, kind="stable")
    if n == 0:
        return order, np.zeros(0, dtype=np.int64)
    sorted_keys = keys[order]
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=seg_start[1:])
    indices = np.arange(n, dtype=np.int64)
    start_index = np.where(seg_start, indices, 0)
    np.maximum.accumulate(start_index, out=start_index)
    return order, indices - start_index


def _history_per_branch(
    np: Any, pc: Any, taken: Any, history_length: int, init_bit: int
) -> Any:
    """Per-record k-bit history register value *before* each record.

    Equivalent to replaying ``new = ((old << 1) | taken) & mask`` per bucket
    key (branch address, AHRT register, or HHRT slot — whatever ``pc``
    holds) with registers initialised to all ``init_bit`` bits: bit ``j-1``
    of a record's history is that branch's outcome ``j`` occurrences earlier
    (or ``init_bit`` before its first occurrence).  Computed as a sliding
    window over the outcome column in branch-sorted order — ``k`` vector
    passes, no per-record dispatch.
    """
    n = len(pc)
    order, pos = _segment_positions(np, pc)
    taken_sorted = taken[order].astype(np.int64)
    history = np.zeros(n, dtype=np.int64)
    max_pos = int(pos.max()) if n else 0
    for j in range(1, history_length + 1):
        if j > max_pos:
            # every remaining (older) bit is the init bit for all records
            if init_bit:
                remaining = history_length - j + 1
                history |= ((1 << remaining) - 1) << (j - 1)
            break
        previous = np.empty(n, dtype=np.int64)
        previous[:j] = init_bit
        previous[j:] = taken_sorted[:-j]
        bit = np.where(pos >= j, previous, init_bit)
        history |= bit << (j - 1)
    out = np.empty(n, dtype=np.int64)
    out[order] = history
    return out


def _history_global(np: Any, taken: Any, history_length: int, init_bit: int) -> Any:
    """Single global history register — the per-branch window degenerated to
    one bucket, so no sort is needed at all."""
    n = len(taken)
    taken64 = taken.astype(np.int64)
    history = np.zeros(n, dtype=np.int64)
    for j in range(1, history_length + 1):
        boundary = min(j, n)
        if init_bit:
            history[:boundary] |= 1 << (j - 1)
        if j < n:
            history[j:] |= taken64[:-j] << (j - 1)
    return history


# ----------------------------------------------------------------------
# finite-HRT key remaps (AHRT / HHRT)
# ----------------------------------------------------------------------
def _hash_buckets(np: Any, pc: Any, buckets: int) -> Any:
    """Columnar twin of :func:`repro.predictors.hrt._index_hash`.

    Safe in int64 arithmetic: the shifted pc is below ``2**30``, so the
    pre-mask product stays below ``2**62``.
    """
    return (((pc >> 2) * _HASH_MULTIPLIER) & 0xFFFFFFFF) % buckets


class AhrtReplay:
    """Incremental AHRT register assignment (the streaming scorers' carry).

    Maps each access to the *physical register* that services it.  The
    AHRT's one coupling between branches — LRU eviction, whose victim's
    payload is inherited rather than re-initialised (section 4.2) — never
    reads payloads or outcomes, so the register sequence is a pure function
    of the pc touch sequence and can be computed up front; after the remap,
    payload evolution is ordinary independent-bucket replay keyed by
    register.  This class walks every touched set's recency stack one touch
    at a time (consecutive repeats short-circuited), allocating register
    ids globally on first use so they are stable across ``assign`` calls:
    feeding a trace through one instance chunk by chunk yields exactly the
    ids a single whole-trace call would (chunking invariance).
    """

    def __init__(self, entries: int, associativity: int):
        if entries < 1 or associativity < 1:
            raise ConfigError("AHRT entries and associativity must be >= 1")
        if entries % associativity:
            raise ConfigError(
                f"AHRT entries ({entries}) must be a multiple of"
                f" associativity ({associativity})"
            )
        self.associativity = associativity
        self.num_sets = entries // associativity
        #: per touched set: ({tag: register}, [tags in LRU..MRU order])
        self._sets: Dict[int, Tuple[Dict[int, int], list]] = {}
        self._next_register = 0
        self.evictions = 0

    def assign(self, np: Any, pc: Any) -> Any:
        """Register id serving each access in ``pc``, advancing the LRU state."""
        sets = _hash_buckets(np, pc, self.num_sets)
        out = [0] * len(pc)
        assoc = self.associativity
        tables = self._sets
        last_set = last_tag = last_register = -1
        for i, (set_index, tag) in enumerate(zip(sets.tolist(), pc.tolist())):
            if set_index == last_set and tag == last_tag:
                out[i] = last_register
                continue
            ways = tables.get(set_index)
            if ways is None:
                ways = ({}, [])
                tables[set_index] = ways
            tagmap, recency = ways
            register = tagmap.get(tag)
            if register is None:
                if len(tagmap) < assoc:  # untagged physical registers remain
                    register = self._next_register
                    self._next_register += 1
                else:  # evict LRU; its register (and payload) is inherited
                    victim = recency.pop(0)
                    register = tagmap.pop(victim)
                    self.evictions += 1
                tagmap[tag] = register
                recency.append(tag)
            elif recency[-1] != tag:
                recency.remove(tag)
                recency.append(tag)
            out[i] = register
            last_set, last_tag, last_register = set_index, tag, register
        return np.asarray(out, dtype=np.int64)


def _ahrt_registers(np: Any, pc: Any, entries: int, associativity: int) -> Any:
    """One-shot AHRT register assignment for a whole pc column.

    LRU decomposes per way-set, and a set whose whole touch alphabet fits
    in its ways can never evict — every (set, tag) pair keeps the register
    it first allocated, so its assignment is just the dense pair id from
    ``np.unique``.  With the paper's geometries (e.g. 128 sets for
    AHRT(512)) that covers nearly every set; only *conflicted* sets (more
    distinct tags than ways) walk their touch sequence through
    :class:`AhrtReplay`, renumbered into per-set id ranges disjoint from
    the pair ids.
    """
    replay = AhrtReplay(entries, associativity)  # validates the geometry
    num_sets = replay.num_sets
    if num_sets > 0x7FFFFFFF:  # pair packing needs the set id in 31 bits
        return replay.assign(np, pc)
    sets = _hash_buckets(np, pc, num_sets)
    pairs = (sets << np.int64(32)) | pc
    unique_pairs, pair_ids = np.unique(pairs, return_inverse=True)
    distinct_per_set = np.bincount(unique_pairs >> 32, minlength=num_sets)
    conflicted = distinct_per_set > associativity
    registers = pair_ids.astype(np.int64)
    if not conflicted.any():
        return registers
    touched = np.nonzero(conflicted[sets])[0]
    order = touched[np.argsort(sets[touched], kind="stable")]
    boundaries = np.nonzero(np.diff(sets[order]))[0] + 1
    base = len(unique_pairs)
    for chunk in np.split(order, boundaries):
        # a conflicted set allocates all `associativity` of its registers
        set_replay = AhrtReplay(entries, associativity)
        registers[chunk] = set_replay.assign(np, pc[chunk]) + base
        base += associativity
    return registers


def _hrt_keys(np: Any, spec: PredictorSpec, pc: Any) -> Any:
    """The bucket-key column for the spec's HRT front-end.

    The branch address under IHRT; the hashed slot under HHRT (colliding
    branches merge into one bucket, reproducing the paper's history
    interference exactly); the servicing physical register under AHRT
    (payload inheritance rides along for free — an evicted register's
    bucket replay simply continues from wherever the previous branch left
    its bits).
    """
    if spec.hrt_kind == "AHRT":
        assert spec.hrt_entries is not None
        return _ahrt_registers(np, pc, spec.hrt_entries, spec.hrt_associativity)
    if spec.hrt_kind == "HHRT":
        assert spec.hrt_entries is not None
        if spec.hrt_entries < 1:
            raise ConfigError("HHRT entries must be >= 1")
        return _hash_buckets(np, pc, spec.hrt_entries)
    return pc


_COMPOSE_TABLE: Any = None
_DECODE_TABLE: Any = None


def _composition_tables(np: Any) -> Tuple[Any, Any]:
    """The (compose, decode) lookup tables for byte-coded state mappings.

    Any function ``{0..3} -> {0..3}`` packs into one byte (two bits per
    input state), so composing two mappings is a single gather in a
    precomputed 256x256 table — automaton-independent, built once.
    ``decode[code, s]`` evaluates the coded mapping at state ``s``;
    ``compose[a, b]`` codes ``a after b`` (``b`` applied first).
    """
    global _COMPOSE_TABLE, _DECODE_TABLE
    if _COMPOSE_TABLE is None:
        codes = np.arange(256, dtype=np.intp)
        decode = (codes[:, None] >> (2 * np.arange(4))) & 3  # (256, 4)
        chained = decode[codes[:, None, None], decode[None, :, :]]  # (256, 256, 4)
        _COMPOSE_TABLE = (
            (chained << (2 * np.arange(4))).sum(axis=-1).astype(np.uint8)
        )
        _DECODE_TABLE = decode
    return _COMPOSE_TABLE, _DECODE_TABLE


def _fsm_predictions(np: Any, buckets: Any, taken: Any, automaton: Automaton) -> Any:
    """Per-record predictions from replaying each bucket's outcome sequence
    through ``automaton`` (entries initialised to its init state).

    Uses a segmented Hillis–Steele scan over *function composition*: each
    record's outcome is a state→state mapping, packed into one byte (the
    automata have at most four states); after ``ceil(log2(longest bucket))``
    doubling rounds, record ``i`` holds the composed mapping of its whole
    bucket prefix, and the state seen by record ``i`` is its predecessor's
    composition evaluated at the init state.  Each round is one uint8 gather
    through the precomputed composition table — whole-column NumPy work, no
    per-record dispatch.
    """
    n = len(buckets)
    predictions_lut = np.array(automaton.predictions, dtype=bool)
    if n == 0:
        return np.zeros(0, dtype=bool)
    compose, decode = _composition_tables(np)
    order, pos = _segment_positions(np, buckets)
    taken_sorted = taken[order].astype(np.intp)
    # per-record mapping code: state s -> transitions[s][taken]
    transitions = np.asarray(automaton.transitions, dtype=np.int64)  # (S, 2)
    step_codes = np.zeros(2, dtype=np.intp)
    for state in range(automaton.num_states):
        step_codes |= transitions[state].astype(np.intp) << (2 * state)
    codes = step_codes[taken_sorted].astype(np.uint8)
    # the rounds' active sets are nested (pos >= distance), so one ascending
    # sort by position serves every round as a suffix view
    by_pos = np.argsort(pos, kind="stable")
    pos_sorted = pos[by_pos]
    distance = 1
    while True:
        active = by_pos[np.searchsorted(pos_sorted, distance):]
        if active.size == 0:
            break
        # window ending at i = (records through i) after (records through i-d)
        codes[active] = compose[codes[active], codes[active - distance]]
        distance <<= 1
    state_before = np.full(n, automaton.init_state, dtype=np.intp)
    inner = np.nonzero(pos > 0)[0]
    state_before[inner] = decode[codes[inner - 1], automaton.init_state]
    out = np.empty(n, dtype=bool)
    out[order] = predictions_lut[state_before]
    return out


# ----------------------------------------------------------------------
# scheme kernels
# ----------------------------------------------------------------------
def _profile_bias(np: Any, training: Tuple[Any, Any]) -> Tuple[Any, Any]:
    """Sorted unique training pcs and their majority direction (ties taken)."""
    train_pc, train_taken = training
    unique_pc, inverse = np.unique(train_pc, return_inverse=True)
    net = np.bincount(
        inverse, weights=(2 * train_taken.astype(np.int64) - 1), minlength=len(unique_pc)
    )
    return unique_pc, net >= 0


def _preset_bits(
    np: Any, training: Tuple[Any, Any], history_length: int
) -> Any:
    """Static Training's profiled pattern table: majority outcome per
    history pattern over the training trace (ties and unseen predict taken),
    exactly :func:`repro.predictors.static_training.profile_pattern_table`."""
    train_pc, train_taken = training
    histories = _history_per_branch(np, train_pc, train_taken, history_length, 1)
    net = np.bincount(
        histories,
        weights=(2 * train_taken.astype(np.int64) - 1),
        minlength=1 << history_length,
    )
    return net >= 0


# ----------------------------------------------------------------------
# modern-subsystem kernels (perceptron / TAGE)
# ----------------------------------------------------------------------
#: speculative block-scan geometry: start small (training-dense warmup),
#: double on event-free blocks up to the cap (saturated steady state).
_PERCEPTRON_BLOCK_MIN = 8
_PERCEPTRON_BLOCK_MAX = 4096


def _perceptron_predictions(
    np: Any,
    rows_index: Any,
    histories: Any,
    taken: Any,
    history_length: int,
    weights: Any,
) -> Any:
    """Row-bucketed speculative block scan over the perceptron table.

    ``weights`` is the live ``(rows, h+1)`` int array — it is **mutated**
    (this is what lets the streaming scorers carry it across batches).
    The global histories are precomputed from the known outcomes, so the
    per-row weight vectors are fully independent streams: the trace is
    bucketed by row (the same segmented-sort machinery as the AHRT/HHRT
    replays) and each row runs its own adaptive speculative scan.  Within
    a row a block scored against the weight snapshot is exact up to and
    including the first *training event* (mispredict or ``|y| <= theta``),
    because perceptron state only changes on training events; the event's
    update is applied and the scan resumes after it.  Bucketing matters
    because hot rows train densely — scanning them separately keeps one
    busy branch from capping every other row's block size.
    """
    n = len(taken)
    out = np.empty(n, dtype=bool)
    if n == 0:
        return out
    theta = perceptron_threshold(history_length)
    shifts = np.arange(history_length, dtype=np.int64)
    taken_b = taken.astype(bool)
    order = np.argsort(rows_index, kind="stable")
    sorted_rows = rows_index[order]
    boundaries = np.flatnonzero(np.diff(sorted_rows)) + 1
    for segment in np.split(order, boundaries):
        row = weights[int(rows_index[segment[0]])]  # (h+1,) view
        bipolar = (
            ((histories[segment, None] >> shifts) & 1) * 2 - 1
        )  # (m, h) in {-1, +1}
        outcome = taken_b[segment]
        outcome_list = outcome.tolist()
        # the event condition folds to one comparison: for a taken outcome
        # it is (y < 0) or (|y| <= theta) == (y <= theta); for not-taken,
        # (y >= 0) or (|y| <= theta) == (y >= -theta) == (-y <= theta)
        sign = np.where(outcome, 1, -1)
        m = len(segment)
        predictions = np.empty(m, dtype=bool)
        start = 0
        block = _PERCEPTRON_BLOCK_MIN
        while start < m:
            stop = min(m, start + block)
            y = row[0] + bipolar[start:stop] @ row[1:]
            event = y * sign[start:stop] <= theta
            first = int(np.argmax(event))
            if not event[first]:
                predictions[start:stop] = y >= 0
                start = stop
                block = min(block * 2, _PERCEPTRON_BLOCK_MAX)
                continue
            predictions[start : start + first + 1] = y[: first + 1] >= 0
            step = 1 if outcome_list[start + first] else -1
            row[0] += step
            row[1:] += step * bipolar[start + first]
            np.clip(row, WEIGHT_MIN, WEIGHT_MAX, out=row)
            start += first + 1
            block = max(_PERCEPTRON_BLOCK_MIN, min((first + 1) * 2, block))
        out[segment] = predictions
    return out


def _perceptron_table(np: Any, spec: PredictorSpec) -> Any:
    """A fresh zeroed weight table for ``spec`` (int64: the dot products
    and the clip run in one dtype, no overflow at any h <= 62)."""
    assert spec.history_length is not None and spec.rows is not None
    return np.zeros((spec.rows, spec.history_length + 1), dtype=np.int64)


def _tage_fold_columns(np: Any, histories: Any, length: int, bits: int) -> Any:
    """Columnar twin of :func:`repro.predictors.modern.fold_history`."""
    folded = np.zeros(len(histories), dtype=np.int64)
    value = histories & ((1 << length) - 1)
    mask = (1 << bits) - 1
    for _ in range((length + bits - 1) // bits):
        folded ^= value & mask
        value = value >> bits
    return folded


def _tage_predictions(
    np: Any, pc: Any, histories: Any, taken: Any, state: TageState
) -> Any:
    """TAGE predictions with columnar hashing and a sequential state walk.

    All per-table folded indices and tags — the per-record arithmetic that
    dominates the scalar predictor — are precomputed as whole columns;
    the remaining walk drives :meth:`TageState.step` (the *same* update
    rule the scalar predictor runs), mutating ``state`` in place so
    streaming sessions can carry it across batches.
    """
    entry_bits = state.entry_bits
    index_mask = (1 << entry_bits) - 1
    tag_mask = (1 << TAG_BITS) - 1
    pc_word = pc >> 2
    base_index = (pc_word & ((1 << (entry_bits + BASE_EXTRA_BITS)) - 1)).tolist()
    index_columns = []
    tag_columns = []
    for length in state.lengths:
        index_columns.append(
            (
                (pc_word ^ _tage_fold_columns(np, histories, length, entry_bits))
                & index_mask
            ).tolist()
        )
        tag_columns.append(
            (
                (
                    pc_word
                    ^ _tage_fold_columns(np, histories, length, TAG_BITS)
                    ^ (_tage_fold_columns(np, histories, length, TAG_BITS - 1) << 1)
                )
                & tag_mask
            ).tolist()
        )
    index_rows = list(zip(*index_columns))
    tag_rows = list(zip(*tag_columns))
    n = len(taken)
    out = np.empty(n, dtype=bool)
    step = state.step
    taken_list = taken.tolist()
    for record in range(n):
        out[record] = step(
            base_index[record],
            index_rows[record],
            tag_rows[record],
            taken_list[record] == 1,
        )
    return out


def correct_mask(
    spec: PredictorSpec,
    packed: PackedTrace,
    training: Optional[PackedTrace] = None,
) -> Any:
    """Boolean per-conditional-record correctness vector, in trace order.

    This is the kernels' primitive: summing it gives the
    :class:`PredictionStats` counters, bucketing it by pc gives per-site
    accuracy.  Raises :class:`~repro.errors.KernelError` for specs
    :func:`vectorizable` rejects or when a required training trace is
    missing.
    """
    np = _np()
    if not vectorizable(spec):
        raise KernelError(f"no vector kernel for spec {spec.canonical()!r}")
    pc, target, taken = _conditional_columns(packed)
    taken_bool = taken.astype(bool)

    training_columns: Optional[Tuple[Any, Any]] = None
    if spec.scheme in _NEEDS_TRAINING:
        if training is None:
            raise KernelError(
                f"{spec.canonical()}: kernel needs a training trace (profiling pass)"
            )
        t_pc, _t_target, t_taken = _conditional_columns(training)
        training_columns = (t_pc, t_taken)

    if spec.scheme == "AlwaysTaken":
        return taken_bool.copy()
    if spec.scheme == "AlwaysNotTaken":
        return ~taken_bool
    if spec.scheme == "BTFN":
        return (target < pc) == taken_bool
    if spec.scheme == "Profile":
        assert training_columns is not None
        unique_pc, bias = _profile_bias(np, training_columns)
        if len(unique_pc) == 0:
            prediction = np.ones(len(pc), dtype=bool)  # default_taken
        else:
            slot = np.searchsorted(unique_pc, pc)
            clamped = np.minimum(slot, len(unique_pc) - 1)
            known = (slot < len(unique_pc)) & (unique_pc[clamped] == pc)
            prediction = np.where(known, bias[clamped], True)
        return prediction == taken_bool
    if spec.scheme == "LS":
        assert spec.hrt_automaton is not None
        keys = _hrt_keys(np, spec, pc)
        prediction = _fsm_predictions(np, keys, taken, spec.hrt_automaton)
        return prediction == taken_bool
    if spec.scheme == "AT":
        assert spec.history_length is not None and spec.pt_automaton is not None
        keys = _hrt_keys(np, spec, pc)
        patterns = _history_per_branch(np, keys, taken, spec.history_length, 1)
        prediction = _fsm_predictions(np, patterns, taken, spec.pt_automaton)
        return prediction == taken_bool
    if spec.scheme == "ST":
        assert spec.history_length is not None and training_columns is not None
        # profiling always runs through an IHRT (software accounting), so the
        # preset bits ignore the test HRT; only the test pass is re-keyed
        preset = _preset_bits(np, training_columns, spec.history_length)
        keys = _hrt_keys(np, spec, pc)
        patterns = _history_per_branch(np, keys, taken, spec.history_length, 1)
        return preset[patterns] == taken_bool
    if spec.scheme == "GAg":
        assert spec.history_length is not None
        history = _history_global(np, taken, spec.history_length, 1)
        prediction = _fsm_predictions(np, history, taken, spec.pt_automaton or A2)
        return prediction == taken_bool
    if spec.scheme == "gshare":
        assert spec.history_length is not None
        mask = (1 << spec.history_length) - 1
        history = _history_global(np, taken, spec.history_length, 0)
        index = ((pc >> 2) ^ history) & mask
        prediction = _fsm_predictions(np, index, taken, spec.pt_automaton or A2)
        return prediction == taken_bool
    if spec.scheme == "Perceptron":
        assert spec.history_length is not None and spec.rows is not None
        histories = _history_global(np, taken, spec.history_length, 0)
        rows_index = (pc >> 2) % spec.rows
        weights = _perceptron_table(np, spec)
        prediction = _perceptron_predictions(
            np, rows_index, histories, taken, spec.history_length, weights
        )
        return prediction == taken_bool
    if spec.scheme == "TAGE":
        assert spec.tage_tables is not None and spec.history_length is not None
        state = TageState(spec.tage_tables, spec.tage_entry_bits or DEFAULT_ENTRY_BITS)
        histories = _history_global(np, taken, spec.history_length, 0)
        prediction = _tage_predictions(np, pc, histories, taken, state)
        return prediction == taken_bool
    raise KernelError(f"no vector kernel for spec {spec.canonical()!r}")  # pragma: no cover


def simulate_spec(
    spec: PredictorSpec,
    packed: PackedTrace,
    training: Optional[PackedTrace] = None,
) -> PredictionStats:
    """Score ``spec`` over ``packed`` with the vector kernels.

    Returns exactly the :class:`PredictionStats` that
    ``simulate(spec.build(...), packed)`` (no RAS) produces.  Raises
    :class:`~repro.errors.KernelError` for non-vectorizable specs; use
    :func:`score_spec` for the transparently-falling-back entry point.
    """
    mask = correct_mask(spec, packed, training)
    return PredictionStats(
        conditional_total=int(len(mask)),
        conditional_correct=int(mask.sum()),
    )


def per_site_accuracy(
    spec: PredictorSpec,
    packed: PackedTrace,
    training: Optional[PackedTrace] = None,
) -> Dict[int, Tuple[int, int]]:
    """Per-static-site ``(correct, total)`` — the kernels' twin of
    :func:`repro.sim.analysis.per_site_accuracy`, bit-exact for every
    vectorizable spec."""
    np = _np()
    mask = correct_mask(spec, packed, training)
    pc, _target, _taken = _conditional_columns(packed)
    unique_pc, inverse = np.unique(pc, return_inverse=True)
    totals = np.bincount(inverse, minlength=len(unique_pc))
    corrects = np.bincount(inverse, weights=mask, minlength=len(unique_pc))
    return {
        int(site): (int(correct), int(total))
        for site, correct, total in zip(unique_pc, corrects, totals)
    }


# ----------------------------------------------------------------------
# backend dispatch
# ----------------------------------------------------------------------
def choose_backend(spec: PredictorSpec, backend: Optional[str] = None) -> str:
    """The concrete backend that will score ``spec``: resolves the request
    (see :func:`repro.sim.backend.resolve_backend`) and applies the
    transparent scalar fallback for specs the kernels cannot express.
    Every registry family is now vectorizable, so the fallback only fires
    for schemes added without a kernel."""
    from repro.sim.backend import resolve_backend

    resolved = resolve_backend(backend)
    if resolved == "vector" and not vectorizable(spec):
        return "scalar"
    return resolved


def score_spec(
    spec: PredictorSpec,
    packed: PackedTrace,
    backend: Optional[str] = None,
    training: Optional[PackedTrace] = None,
    training_records: Optional[Iterable[Any]] = None,
) -> PredictionStats:
    """Score one predictor spec over a packed trace on the chosen backend.

    This is the engine entry point the sweep layers use: ``backend`` may be
    ``auto`` / ``scalar`` / ``vector`` (or ``None`` for the process
    default), and the result is identical whichever backend runs.  Profiled
    schemes take their training trace as ``training`` (packed, used by the
    kernels) and/or ``training_records`` (any record iterable, used by the
    scalar path; defaults to iterating ``training``).
    """
    if choose_backend(spec, backend) == "vector":
        return simulate_spec(spec, packed, training)
    from repro.sim.engine import simulate

    if training_records is None:
        training_records = training
    predictor = spec.build(training_records=training_records)
    return simulate(predictor, packed)
