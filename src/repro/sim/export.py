"""Result export: CSV and Markdown renderings of sweeps and reports.

Downstream users regenerating the paper's figures usually want the numbers
in a spreadsheet or a README table, not an ASCII box.  These helpers render
:class:`~repro.sim.results.SweepResult` and experiment rows losslessly into
both formats.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Sequence

from repro.sim.results import SweepResult


def _sweep_table(sweep: SweepResult) -> "tuple[List[str], List[List[object]]]":
    benchmarks = sweep.benchmarks()
    header = ["scheme", *benchmarks, "Tot G Mean", "Int G Mean", "FP G Mean"]
    rows: List[List[object]] = []
    for scheme in sweep.schemes():
        accuracies = sweep.accuracies(scheme)
        rows.append(
            [
                scheme,
                *[accuracies.get(name, "") for name in benchmarks],
                sweep.mean(scheme),
                sweep.mean(scheme, "integer"),
                sweep.mean(scheme, "fp"),
            ]
        )
    return header, rows


def sweep_to_csv(sweep: SweepResult) -> str:
    """Render a sweep as CSV text (one row per scheme)."""
    header, rows = _sweep_table(sweep)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    for row in rows:
        writer.writerow(
            [f"{cell:.6f}" if isinstance(cell, float) else cell for cell in row]
        )
    return buffer.getvalue()


def sweep_to_markdown(sweep: SweepResult, precision: int = 3) -> str:
    """Render a sweep as a GitHub-flavoured Markdown table."""
    header, rows = _sweep_table(sweep)
    return rows_to_markdown(
        [dict(zip(header, row)) for row in rows], precision=precision
    )


def rows_to_markdown(rows: Sequence[Dict[str, object]], precision: int = 3) -> str:
    """Render dict-rows (e.g. ``ExperimentReport.rows``) as Markdown."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value) if value is not None else ""

    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(row.get(column, "")) for column in columns) + " |")
    return "\n".join(lines)
