"""The branch-prediction simulator (section 4's methodology).

:mod:`repro.sim.engine` drives one predictor over one branch trace and
scores it; :mod:`repro.sim.runner` sweeps many configurations over many
benchmarks with trace caching; :mod:`repro.sim.results` holds the statistics
objects and the geometric-mean aggregation the paper's figures report.
"""

from repro.sim.analysis import (
    PatternConflictStats,
    convergence_point,
    pattern_conflicts,
    windowed_accuracy,
)
from repro.sim.backend import (
    BACKEND_CHOICES,
    default_backend,
    has_numpy,
    resolve_backend,
)
from repro.sim.engine import simulate, simulate_packed
from repro.sim.export import rows_to_markdown, sweep_to_csv, sweep_to_markdown
from repro.sim.kernels import choose_backend, score_spec, simulate_spec, vectorizable
from repro.sim.pipeline import PipelineConfig, PipelineResult, simulate_pipeline
from repro.sim.results import (
    BenchmarkResult,
    PredictionStats,
    SweepResult,
    geometric_mean,
)
from repro.sim.parallel import run_parallel_sweep
from repro.sim.runner import SweepRunner, run_sweep

__all__ = [
    "BACKEND_CHOICES",
    "BenchmarkResult",
    "choose_backend",
    "default_backend",
    "has_numpy",
    "resolve_backend",
    "score_spec",
    "simulate_spec",
    "vectorizable",
    "PatternConflictStats",
    "PipelineConfig",
    "PipelineResult",
    "PredictionStats",
    "SweepResult",
    "SweepRunner",
    "geometric_mean",
    "rows_to_markdown",
    "run_parallel_sweep",
    "run_sweep",
    "simulate",
    "simulate_packed",
    "sweep_to_csv",
    "sweep_to_markdown",
    "simulate_pipeline",
    "convergence_point",
    "pattern_conflicts",
    "windowed_accuracy",
]
