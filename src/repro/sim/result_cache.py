"""Content-addressed sweep-result cache.

Scoring a (spec, benchmark) cell is a pure function of the spec string,
the exact trace contents and the simulation backend — and the trace store
already names every trace by a content digest
(:func:`repro.trace.store.content_key`).  That makes finished stats rows
cacheable by construction: the key digests

* the spec's canonical string,
* the testing trace's store stem (which itself digests workload name,
  role, cap, generator version and dataset parameters),
* the training trace's stem for profiled schemes (empty otherwise), and
* the resolved backend (``scalar`` / ``vector``) — the backends are
  verified bit-identical, but backend-agreement tests *are the
  verification*, so a cache hit must never masquerade one backend's
  result as the other's.

Entries are one small JSON file each under ``<store root>/results/``,
alongside the trace store's shards and index, so ``repro cache`` can
list and evict them together with the traces and a wiped store wipes the
results derived from it.  Re-running an unchanged figure sweep then costs
one stat read per cell instead of a trace replay; any change to workload
generators, datasets, caps or specs changes the key and misses cleanly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator, NamedTuple, Optional

from repro.sim.results import PredictionStats

__all__ = ["ResultCache", "ResultEntry", "result_key"]

#: bump to invalidate every persisted row (schema or semantics change)
FORMAT_VERSION = 1

_SUFFIX = ".json"


def result_key(
    spec_text: str, test_stem: str, train_stem: Optional[str], backend: str
) -> str:
    """Digest naming one (spec, trace, options) stats row."""
    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "spec": spec_text,
            "test": test_stem,
            "train": train_stem or "",
            "backend": backend,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class ResultEntry(NamedTuple):
    """One cached row as listed by ``repro cache``."""

    digest: str
    spec: str
    test_stem: str
    train_stem: str
    backend: str
    size_bytes: int


class ResultCache:
    """Per-entry JSON files in a ``results/`` directory.

    Writes are atomic (temp file + rename) and every read validates the
    recorded key fields against the file name's digest, so a corrupt or
    hand-edited entry degrades to a cache miss, never a wrong stats row.
    """

    def __init__(self, root: "Path | str"):
        self.root = Path(root).expanduser()

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}{_SUFFIX}"

    # -- read ----------------------------------------------------------
    def get(
        self,
        spec_text: str,
        test_stem: str,
        train_stem: Optional[str],
        backend: str,
    ) -> Optional[PredictionStats]:
        digest = result_key(spec_text, test_stem, train_stem, backend)
        try:
            payload = json.loads(self._path(digest).read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if (
            payload.get("format") != FORMAT_VERSION
            or payload.get("spec") != spec_text
            or payload.get("test") != test_stem
            or payload.get("train") != (train_stem or "")
            or payload.get("backend") != backend
        ):
            return None
        stats = payload.get("stats")
        if not isinstance(stats, list) or len(stats) != 4:
            return None
        try:
            counters = [int(value) for value in stats]
        except (TypeError, ValueError):
            return None
        return PredictionStats(*counters)

    # -- write ---------------------------------------------------------
    def put(
        self,
        spec_text: str,
        test_stem: str,
        train_stem: Optional[str],
        backend: str,
        stats: PredictionStats,
    ) -> None:
        digest = result_key(spec_text, test_stem, train_stem, backend)
        payload = {
            "format": FORMAT_VERSION,
            "spec": spec_text,
            "test": test_stem,
            "train": train_stem or "",
            "backend": backend,
            "stats": [
                stats.conditional_total,
                stats.conditional_correct,
                stats.returns_total,
                stats.returns_correct,
            ],
        }
        path = self._path(digest)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            temp = path.with_suffix(".tmp")
            temp.write_text(
                json.dumps(payload, sort_keys=True, separators=(",", ":")), "utf-8"
            )
            os.replace(temp, path)
        except OSError:
            # a read-only or full disk must not break the sweep; the row
            # simply stays uncached
            return

    # -- maintenance (repro cache) -------------------------------------
    def entries(self) -> Iterator[ResultEntry]:
        """Every readable cached row, sorted by digest."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            try:
                payload = json.loads(path.read_text("utf-8"))
                size = path.stat().st_size
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            yield ResultEntry(
                digest=path.stem,
                spec=str(payload.get("spec", "?")),
                test_stem=str(payload.get("test", "?")),
                train_stem=str(payload.get("train", "")),
                backend=str(payload.get("backend", "?")),
                size_bytes=size,
            )

    def evict(self, digest: str) -> bool:
        """Remove one row by digest; True if it existed."""
        try:
            self._path(digest).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every cached row; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob(f"*{_SUFFIX}"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed
