"""Fused multi-spec sweep kernels: score a whole figure grid in one pass.

Every figure is a *sweep* — dozens of :class:`PredictorSpec`s against the
same trace — and the per-cell path (:func:`repro.sim.kernels.score_spec`)
recomputes the trace-wide intermediates for every cell: the conditional
columns, the HRT key remap, the k-bit history windows and the per-bucket
segment sorts are identical across most of a figure's specs.  This module
scores the whole spec list against one :class:`PackedTrace` while paying
for each shared intermediate exactly once:

* A :class:`TraceContext` memoises, per trace, the conditional columns,
  each HRT front-end's key column (one AHRT replay serves every spec with
  that geometry), and each key space's sliding history window.  Histories
  nest — a k-bit window is the K-bit window masked to its low k bits for
  any ``k <= K`` — so the context keeps only the *widest* window per key
  space and serves shorter ones as a mask (``fig7``'s whole ladder runs on
  one window).
* Per distinct *bucket column* (pattern values, LS keys, global-history
  indices) the fused scorer builds the segment sort once and replays every
  automaton that scores against it; ``fig5``'s four automata share one
  sort, one position column and one outcome gather.
* The automaton replay itself uses a two-level scan that is bit-exact
  against the kernels' doubling scan but does the bulk of its work in
  contiguous passes: an 8-outcome window LUT (automaton steps compose
  into one byte, so an eight-step composition is one 2048-entry table
  lookup over a sliding outcome window) yields every within-chunk prefix
  directly, and only the per-chunk totals — one eighth of the records —
  enter a segmented doubling scan.  The totals of *every* request in the
  batch are concatenated into a single scan (the PR-7 slot-namespacing
  idea: disjoint row ranges keep segments from different requests apart),
  so many specs replay through one segmented scan.
* Stats and per-site tallies are computed in bucket-sorted order
  (``bincount`` over the sorted site index), so no scatter back to trace
  order is ever needed on the fused path.

Everything here is **bit-exact** against the per-spec kernels — the
property tests replay random spec subsets over all workload variants and
require equality with :func:`~repro.sim.kernels.score_spec` — and the
per-spec path remains the independent reference implementation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import KernelError
from repro.predictors.automata import A2, Automaton
from repro.predictors.spec import PredictorSpec
from repro.predictors.modern import DEFAULT_ENTRY_BITS, TageState
from repro.sim.kernels import (
    _conditional_columns,
    _history_global,
    _hrt_keys,
    _np,
    _composition_tables,
    _perceptron_predictions,
    _perceptron_table,
    _profile_bias,
    _tage_predictions,
    vectorizable,
)
from repro.sim.results import PredictionStats
from repro.trace.columnar import PackedTrace

__all__ = [
    "TraceContext",
    "SweepPlan",
    "training_role",
    "fused_stats",
    "fused_per_site",
]

#: within-chunk window width of the two-level scan; eight outcomes pack
#: into the 2048-entry window LUT (8 widths x 256 bit patterns).
_CHUNK = 8

#: byte code of the identity state mapping (state s -> s, two bits each).
_IDENTITY_CODE = 0b11100100

def training_role(spec: PredictorSpec) -> Optional[str]:
    """Which trace a spec profiles: ``None`` (adaptive — no profiling pass),
    ``"test"`` (Profile and ST-Same profile the execution data set) or
    ``"train"`` (ST-Diff profiles the Table 3 training data set)."""
    if spec.scheme == "Profile":
        return "test"
    if spec.scheme == "ST":
        return "train" if (spec.data_mode or "Same") == "Diff" else "test"
    return None


# ----------------------------------------------------------------------
# shared per-trace intermediates
# ----------------------------------------------------------------------
def _hrt_token(spec: PredictorSpec) -> Tuple[Any, ...]:
    """Hashable identity of a spec's HRT front-end key space."""
    if spec.hrt_kind == "AHRT":
        return ("AHRT", spec.hrt_entries, spec.hrt_associativity)
    if spec.hrt_kind == "HHRT":
        return ("HHRT", spec.hrt_entries)
    return ("IHRT",)


def _compact_sort_keys(np: Any, keys: Any) -> Any:
    """The narrowest integer view of a non-negative key column.

    NumPy's stable sort is a radix sort for one- and two-byte integers and
    a comparison sort above that; history patterns and hashed slots almost
    always fit in sixteen bits, which makes the per-bucket segment sort a
    small fraction of its int64 cost.
    """
    if len(keys) == 0:
        return keys
    top = int(keys.max())
    if top < (1 << 16):
        return keys.astype(np.uint16)
    if top < (1 << 31):
        return keys.astype(np.int32)
    return keys


def _sorted_segments(np: Any, keys: Any) -> Tuple[Any, Any]:
    """``(order, position-within-bucket)`` for a bucket key column — the
    kernels' ``_segment_positions`` with the radix-width fast path."""
    n = len(keys)
    order = np.argsort(_compact_sort_keys(np, keys), kind="stable")
    if n == 0:
        return order, np.zeros(0, dtype=np.int64)
    sorted_keys = keys[order]
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=seg_start[1:])
    indices = np.arange(n, dtype=np.int64)
    start_index = np.where(seg_start, indices, 0)
    np.maximum.accumulate(start_index, out=start_index)
    return order, indices - start_index


def _branch_history(
    np: Any, keys: Any, taken: Any, history_length: int, init_bit: int
) -> Any:
    """Bit-exact twin of the kernels' ``_history_per_branch``, built as a
    sliding pack: ``k`` shift-or passes over the key-sorted outcome column
    build the raw window (with garbage bits across segment boundaries),
    then one per-record validity mask swaps the out-of-segment bits for
    init bits — no per-bit ``where`` pass."""
    n = len(keys)
    order, pos = _sorted_segments(np, keys)
    taken_sorted = taken[order].astype(np.int64)
    raw = np.zeros(n, dtype=np.int64)
    for j in range(1, history_length + 1):
        raw[j:] |= taken_sorted[:-j] << (j - 1)
    valid = (np.int64(1) << np.minimum(pos, history_length)) - 1
    history = raw & valid
    if init_bit:
        history |= ((1 << history_length) - 1) & ~valid
    out = np.empty(n, dtype=np.int64)
    out[order] = history
    return out


class TraceContext:
    """Memoised shared intermediates for scoring many specs on one trace.

    One context per :class:`PackedTrace`; the fused scorer asks it for the
    conditional columns, HRT key columns (by front-end geometry), history
    windows (by key space, widest-k wins) and profiling summaries, each
    computed at most once.  A context over a *training* trace additionally
    serves the profiled schemes' bias table and preset pattern bits; when
    a spec trains on the test trace itself (Profile, ST-Same) the very
    same context instance is used for both roles, so even the profiling
    pass shares the key sort with the test pass.
    """

    def __init__(self, packed: PackedTrace):
        self.np = _np()
        self.packed = packed
        self.pc, self.target, self.taken = _conditional_columns(packed)
        self.taken_bool = self.taken.astype(bool)
        self._keys: Dict[Tuple[Any, ...], Any] = {}
        #: (hrt token, init bit) -> (window length, window column)
        self._history: Dict[Tuple[Any, ...], Tuple[int, Any]] = {}
        self._global_history: Dict[int, Tuple[int, Any]] = {}
        self._history_reserve: Dict[Tuple[Any, ...], int] = {}
        self._global_reserve: Dict[int, int] = {}
        self._bias: Optional[Tuple[Any, Any]] = None
        self._preset: Dict[int, Any] = {}
        self._site: Optional[Tuple[Any, Any]] = None

    def __len__(self) -> int:
        return len(self.pc)

    # -- planning ------------------------------------------------------
    def reserve(self, specs: Sequence[PredictorSpec]) -> None:
        """Record every history width the spec list will ask for, so each
        key space computes its window once at the widest length instead of
        growing through re-computation."""
        for spec in specs:
            if spec.history_length is None:
                continue
            if spec.scheme in ("AT", "ST"):
                token = _hrt_token(spec)
                self._history_reserve[token] = max(
                    self._history_reserve.get(token, 0), spec.history_length
                )
                if spec.scheme == "ST":
                    # the profiling pass is always IHRT-keyed, whatever the
                    # test HRT — reserve that window on the training side too
                    self._history_reserve[("IHRT",)] = max(
                        self._history_reserve.get(("IHRT",), 0), spec.history_length
                    )
            elif spec.scheme == "GAg":
                self._global_reserve[1] = max(
                    self._global_reserve.get(1, 0), spec.history_length
                )
            elif spec.scheme in ("gshare", "Perceptron", "TAGE"):
                # all three share the init-0 global window (TAGE's
                # history_length is its longest geometric table)
                self._global_reserve[0] = max(
                    self._global_reserve.get(0, 0), spec.history_length
                )

    # -- shared columns ------------------------------------------------
    def hrt_keys(self, spec: PredictorSpec) -> Any:
        """The spec's HRT bucket-key column (one AHRT replay / hash pass
        per distinct geometry)."""
        token = _hrt_token(spec)
        keys = self._keys.get(token)
        if keys is None:
            keys = _hrt_keys(self.np, spec, self.pc)
            self._keys[token] = keys
        return keys

    def history(self, spec: PredictorSpec) -> Any:
        """The per-record k-bit history pattern column for an AT/ST spec.

        Served from the widest window computed for the spec's key space:
        ``window_k = window_K & ((1 << k) - 1)`` for any ``k <= K`` because
        both replay the same shift register from the same all-ones init.
        """
        assert spec.history_length is not None
        token = _hrt_token(spec)
        k = spec.history_length
        cached = self._history.get(token)
        if cached is None or cached[0] < k:
            width = max(k, self._history_reserve.get(token, 0))
            window = _branch_history(self.np, self.hrt_keys(spec), self.taken, width, 1)
            cached = (width, window)
            self._history[token] = cached
        width, window = cached
        if width == k:
            return window
        return window & ((1 << k) - 1)

    def global_history(self, k: int, init_bit: int) -> Any:
        """The single global history register column (GAg / gshare), with
        the same widest-window masking as :meth:`history`."""
        cached = self._global_history.get(init_bit)
        if cached is None or cached[0] < k:
            width = max(k, self._global_reserve.get(init_bit, 0))
            window = _history_global(self.np, self.taken, width, init_bit)
            cached = (width, window)
            self._global_history[init_bit] = cached
        width, window = cached
        if width == k:
            return window
        return window & ((1 << k) - 1)

    # -- profiling summaries (training-trace role) ---------------------
    def profile_bias(self) -> Tuple[Any, Any]:
        """Sorted unique pcs and their majority direction (ties taken)."""
        if self._bias is None:
            self._bias = _profile_bias(self.np, (self.pc, self.taken))
        return self._bias

    def preset_bits(self, history_length: int) -> Any:
        """Static Training's profiled pattern table over this trace.

        Profiling always runs through an ideal HRT (software accounting),
        so the window column is the IHRT one — shared with any AT/ST spec
        testing on this same trace through an IHRT.
        """
        bits = self._preset.get(history_length)
        if bits is None:
            ihrt = PredictorSpec(scheme="ST", hrt_kind="IHRT", history_length=history_length)
            histories = self.history(ihrt)
            net = self.np.bincount(
                histories,
                weights=(2 * self.taken.astype(self.np.int64) - 1),
                minlength=1 << history_length,
            )
            bits = net >= 0
            self._preset[history_length] = bits
        return bits

    # -- per-site tallies ----------------------------------------------
    def site_index(self) -> Tuple[Any, Any]:
        """``(unique_pc, inverse)`` for per-site bincounts, computed once."""
        if self._site is None:
            self._site = self.np.unique(self.pc, return_inverse=True)
        return self._site


# ----------------------------------------------------------------------
# the two-level automaton scan
# ----------------------------------------------------------------------
_AUTOMATON_TABLES: Dict[Tuple[Any, ...], Tuple[Any, Any, Any]] = {}


def _automaton_key(automaton: Automaton) -> Tuple[Any, ...]:
    return (
        automaton.name,
        tuple(automaton.predictions),
        tuple(tuple(row) for row in automaton.transitions),
        automaton.init_state,
    )


def _automaton_tables(np: Any, automaton: Automaton) -> Tuple[Any, Any, Any]:
    """``(step codes, window LUT, prediction-by-code LUT)`` for one automaton.

    ``wlut[w - 1, bits]`` is the byte-coded composition of ``w`` automaton
    steps whose outcomes are ``bits`` (bit ``j`` = the outcome ``j`` steps
    back, newest in bit 0); ``pred256[code]`` is the prediction of the
    state reached by applying ``code`` to the init state.  Cached per
    automaton for the life of the process — 2.3 KB each.
    """
    key = _automaton_key(automaton)
    cached = _AUTOMATON_TABLES.get(key)
    if cached is not None:
        return cached
    compose, decode = _composition_tables(np)
    transitions = np.asarray(automaton.transitions, dtype=np.intp)
    step_codes = np.zeros(2, dtype=np.intp)
    for state in range(automaton.num_states):
        step_codes |= transitions[state] << (2 * state)
    step_u8 = step_codes.astype(np.uint8)
    wlut = np.empty((_CHUNK, 1 << _CHUNK), dtype=np.uint8)
    bits = np.arange(1 << _CHUNK)
    acc = step_u8[bits & 1]
    wlut[0] = acc
    for width in range(2, _CHUNK + 1):
        # one more (older) step composes on the right
        acc = compose[acc, step_u8[(bits >> (width - 1)) & 1]]
        wlut[width - 1] = acc
    # pad to four states: codes reachable from real step sequences only ever
    # decode to states < num_states, but the LUT covers all 256 codes
    predictions = np.zeros(4, dtype=bool)
    predictions[: automaton.num_states] = automaton.predictions
    pred256 = predictions[decode[:, automaton.init_state]]
    tables = (step_u8, wlut, pred256)
    _AUTOMATON_TABLES[key] = tables
    return tables


class _Group:
    """Per-bucket-column scan state shared by every automaton replaying it.

    One stable segment sort (radix-width keys), one outcome gather, one
    sliding outcome window, one position column — ``fig5``'s four automata
    replay against a single instance.  Note the sort *must* be per bucket
    column: automaton replay depends on within-bucket trace order, so
    orderings cannot be shared across different history lengths even
    though their buckets nest.
    """

    def __init__(self, np: Any, column: Any, taken: Any):
        self.np = np
        n = len(column)
        self.order = np.argsort(_compact_sort_keys(np, column), kind="stable")
        values = column[self.order]
        self.taken_bool_sorted = taken[self.order].astype(bool)
        # the shared sliding outcome window feeding every automaton's wlut
        packed = self.taken_bool_sorted.astype(np.int16)
        window = packed.copy()
        for j in range(1, _CHUNK):
            window[j:] |= packed[:-j] << j
        self.window = window
        start_mask = np.empty(n, dtype=bool)
        if n:
            start_mask[0] = True
            np.not_equal(values[1:], values[:-1], out=start_mask[1:])
        indices = np.arange(n, dtype=np.int64)
        start = np.where(start_mask, indices, 0)
        np.maximum.accumulate(start, out=start)
        pos = indices - start
        self.start_mask = start_mask
        self.width = (pos & (_CHUNK - 1)).astype(np.intp)
        self.max_pos = int(pos.max()) if n else 0
        if self.max_pos >= _CHUNK:
            is_end = self.width == (_CHUNK - 1)
            self.rows = np.nonzero(is_end)[0]
            self.row_pos = pos[self.rows] >> 3
            ends_before = np.cumsum(is_end)
            ends_before -= is_end
            chunk = pos >> 3
            # index into the identity-prefixed scanned-totals array: chunk
            # c > 0 reads its segment's (c-1)-th scanned total (shifted up
            # one by the identity row), chunk 0 reads the identity
            self.row_index = np.where(chunk > 0, ends_before[start] + chunk, 0)
        else:
            self.rows = None


class _ScanBatch:
    """Deferred automaton-replay requests over shared bucket columns.

    ``add`` registers one (bucket column, automaton) request; ``run``
    replays them all: within-chunk prefixes come straight from each
    automaton's window LUT over the group's shared outcome window, and the
    per-chunk totals of *every* request are concatenated into one
    segmented doubling scan (the PR-7 slot-namespacing idea: disjoint row
    ranges keep segments from different requests apart).  Results are
    per-record correctness columns in each group's sorted order.
    """

    def __init__(self, np: Any, taken: Any):
        self.np = np
        self.taken = taken
        self.groups: Dict[Tuple[Any, ...], _Group] = {}
        self.columns: Dict[Tuple[Any, ...], Any] = {}
        #: handle -> (group token, automaton)
        self.requests: Dict[Tuple[Any, ...], Tuple[Tuple[Any, ...], Automaton]] = {}
        self.results: Dict[Tuple[Any, ...], Any] = {}

    def add(
        self, token: Tuple[Any, ...], column: Any, automaton: Automaton
    ) -> Tuple[Any, ...]:
        """Register a replay request; returns the handle ``run`` resolves."""
        handle = (token, _automaton_key(automaton))
        if handle not in self.requests:
            self.requests[handle] = (token, automaton)
            self.columns.setdefault(token, column)
        return handle

    def group(self, token: Tuple[Any, ...]) -> _Group:
        group = self.groups.get(token)
        if group is None:
            group = _Group(self.np, self.columns[token], self.taken)
            self.groups[token] = group
        return group

    def run(self) -> None:
        np = self.np
        compose, _decode = _composition_tables(np)
        partial: Dict[Tuple[Any, ...], Any] = {}
        totals_parts: List[Any] = []
        pos_parts: List[Any] = []
        spans: List[Tuple[Tuple[Any, ...], int, int]] = []
        offset = 0
        for handle, (token, automaton) in self.requests.items():
            group = self.group(token)
            _step, wlut, _pred = _automaton_tables(np, automaton)
            codes = wlut[group.width, group.window]
            partial[handle] = codes
            if group.rows is not None:
                totals_parts.append(codes[group.rows])
                pos_parts.append(group.row_pos)
                spans.append((handle, offset, offset + len(group.rows)))
                offset += len(group.rows)
        if totals_parts:
            totals = np.concatenate(totals_parts)
            row_pos = np.concatenate(pos_parts)
            distance = 1
            top = int(row_pos.max()) if len(row_pos) else 0
            while distance <= top:
                valid = row_pos[distance:] >= distance
                np.copyto(
                    totals[distance:],
                    compose[totals[distance:], totals[:-distance]],
                    where=valid,
                )
                distance <<= 1
            for handle, start, stop in spans:
                token, _automaton = self.requests[handle]
                group = self.group(token)
                codes = partial[handle]
                # identity-prefixed gather: every record composes with its
                # preceding chunks' scanned total (the identity for records
                # still inside their segment's first chunk) — a straight
                # full-column gather instead of a subset scatter
                scanned = np.empty(stop - start + 1, dtype=np.uint8)
                scanned[0] = _IDENTITY_CODE
                scanned[1:] = totals[start:stop]
                partial[handle] = compose[codes, scanned[group.row_index]]
        for handle, (token, automaton) in self.requests.items():
            group = self.group(token)
            _step, _wlut, pred256 = _automaton_tables(np, automaton)
            codes = partial[handle]
            n = len(codes)
            # a record's state is its predecessor's composed prefix applied
            # to the init state; segment heads see the identity composition
            previous = np.empty_like(codes)
            if n:
                previous[0] = _IDENTITY_CODE
                previous[1:] = codes[:-1]
                np.copyto(
                    previous, np.uint8(_IDENTITY_CODE), where=group.start_mask
                )
            self.results[handle] = pred256[previous] == group.taken_bool_sorted

    def correct_sorted(self, handle: Tuple[Any, ...]) -> Tuple[Any, _Group]:
        """A resolved request's per-record correctness (sorted order) and
        its group (whose ``order`` maps back to trace order)."""
        return self.results[handle], self.group(self.requests[handle][0])


# ----------------------------------------------------------------------
# spec recipes
# ----------------------------------------------------------------------
def _require_training(
    spec: PredictorSpec, trainings: Mapping[str, TraceContext]
) -> TraceContext:
    role = training_role(spec)
    assert role is not None
    ctx = trainings.get(role)
    if ctx is None:
        raise KernelError(
            f"{spec.canonical()}: fused sweep needs a {role!r} training context"
        )
    return ctx


def _direct_mask(
    spec: PredictorSpec,
    ctx: TraceContext,
    trainings: Mapping[str, TraceContext],
) -> Optional[Any]:
    """Trace-order correctness for the scan-free schemes (None otherwise)."""
    np = ctx.np
    if spec.scheme == "AlwaysTaken":
        return ctx.taken_bool.copy()
    if spec.scheme == "AlwaysNotTaken":
        return ~ctx.taken_bool
    if spec.scheme == "BTFN":
        return (ctx.target < ctx.pc) == ctx.taken_bool
    if spec.scheme == "Profile":
        unique_pc, bias = _require_training(spec, trainings).profile_bias()
        if len(unique_pc) == 0:
            prediction = np.ones(len(ctx.pc), dtype=bool)
        else:
            slot = np.searchsorted(unique_pc, ctx.pc)
            clamped = np.minimum(slot, len(unique_pc) - 1)
            known = (slot < len(unique_pc)) & (unique_pc[clamped] == ctx.pc)
            prediction = np.where(known, bias[clamped], True)
        return prediction == ctx.taken_bool
    if spec.scheme == "ST":
        assert spec.history_length is not None
        preset = _require_training(spec, trainings).preset_bits(spec.history_length)
        return preset[ctx.history(spec)] == ctx.taken_bool
    if spec.scheme == "Perceptron":
        assert spec.history_length is not None and spec.rows is not None
        histories = ctx.global_history(spec.history_length, 0)
        rows_index = (ctx.pc >> 2) % spec.rows
        weights = _perceptron_table(np, spec)
        prediction = _perceptron_predictions(
            np, rows_index, histories, ctx.taken, spec.history_length, weights
        )
        return prediction == ctx.taken_bool
    if spec.scheme == "TAGE":
        assert spec.tage_tables is not None and spec.history_length is not None
        state = TageState(spec.tage_tables, spec.tage_entry_bits or DEFAULT_ENTRY_BITS)
        histories = ctx.global_history(spec.history_length, 0)
        prediction = _tage_predictions(np, ctx.pc, histories, ctx.taken, state)
        return prediction == ctx.taken_bool
    return None


def _scan_request(
    spec: PredictorSpec, ctx: TraceContext
) -> Tuple[Tuple[Any, ...], Any, Automaton]:
    """The (token, bucket column, automaton) replay behind an FSM scheme.

    Tokens name bucket columns: requests sharing a token share the
    column's segment sort, and requests differing only in automaton share
    everything but the window-LUT gather.  Distinct history lengths are
    distinct columns — replay depends on within-bucket trace order, so
    orderings cannot be shared across lengths even though buckets nest
    (the *windows* behind the columns still come from one shared
    :meth:`TraceContext.history` computation).
    """
    if spec.scheme == "LS":
        assert spec.hrt_automaton is not None
        token = ("keys",) + _hrt_token(spec)
        return token, ctx.hrt_keys(spec), spec.hrt_automaton
    if spec.scheme == "AT":
        assert spec.history_length is not None and spec.pt_automaton is not None
        token = ("pattern",) + _hrt_token(spec) + (spec.history_length,)
        return token, ctx.history(spec), spec.pt_automaton
    if spec.scheme == "GAg":
        assert spec.history_length is not None
        token = ("ghist", spec.history_length)
        return token, ctx.global_history(spec.history_length, 1), spec.pt_automaton or A2
    if spec.scheme == "gshare":
        assert spec.history_length is not None
        mask = (1 << spec.history_length) - 1
        token = ("gidx", spec.history_length)
        index = ((ctx.pc >> 2) ^ ctx.global_history(spec.history_length, 0)) & mask
        return token, index, spec.pt_automaton or A2
    raise KernelError(f"no fused kernel for spec {spec.canonical()!r}")


class _FusedScores:
    """The fused scoring pipeline over one test context.

    Phase one compiles each spec to either a direct trace-order mask or a
    deferred scan request; phase two runs the whole scan batch; phase
    three reads stats (and per-site tallies) per spec.
    """

    def __init__(
        self,
        specs: Sequence[PredictorSpec],
        ctx: TraceContext,
        trainings: Mapping[str, TraceContext],
    ):
        for spec in specs:
            if not vectorizable(spec):
                raise KernelError(
                    f"no fused kernel for spec {spec.canonical()!r}"
                )
        self.ctx = ctx
        ctx.reserve(specs)
        for training in trainings.values():
            training.reserve(specs)
        self.batch = _ScanBatch(ctx.np, ctx.taken)
        self._masks: Dict[int, Any] = {}
        self._handles: Dict[int, Tuple[Any, ...]] = {}
        for index, spec in enumerate(specs):
            mask = _direct_mask(spec, ctx, trainings)
            if mask is not None:
                self._masks[index] = mask
                continue
            token, column, automaton = _scan_request(spec, ctx)
            self._handles[index] = self.batch.add(token, column, automaton)
        self.batch.run()

    def stats(self, index: int) -> PredictionStats:
        mask = self._masks.get(index)
        if mask is None:
            mask, _group = self.batch.correct_sorted(self._handles[index])
        return PredictionStats(
            conditional_total=int(len(mask)),
            conditional_correct=int(mask.sum()),
        )

    def per_site(self, index: int) -> Dict[int, Tuple[int, int]]:
        np = self.ctx.np
        unique_pc, inverse = self.ctx.site_index()
        mask = self._masks.get(index)
        if mask is None:
            mask, group = self.batch.correct_sorted(self._handles[index])
            site = inverse[group.order]
        else:
            site = inverse
        totals = np.bincount(inverse, minlength=len(unique_pc))
        corrects = np.bincount(site, weights=mask, minlength=len(unique_pc))
        return {
            int(pc): (int(correct), int(total))
            for pc, correct, total in zip(unique_pc, corrects, totals)
        }


def fused_stats(
    specs: Sequence[PredictorSpec],
    packed: PackedTrace,
    trainings: Optional[Mapping[str, PackedTrace]] = None,
    context: Optional[TraceContext] = None,
    training_contexts: Optional[Mapping[str, TraceContext]] = None,
) -> List[PredictionStats]:
    """Score every (vectorizable) spec over ``packed`` in one fused pass.

    ``trainings`` maps the roles :func:`training_role` reports (``"test"``
    / ``"train"``) to the traces the profiled schemes profile; passing the
    test trace itself under ``"test"`` shares one context for both roles.
    Bit-exact against per-spec :func:`~repro.sim.kernels.score_spec`.
    Callers scoring several spec groups can pass prebuilt contexts.
    """
    ctx, training_ctxs = _contexts(packed, trainings, context, training_contexts)
    scores = _FusedScores(specs, ctx, training_ctxs)
    return [scores.stats(index) for index in range(len(specs))]


def fused_per_site(
    specs: Sequence[PredictorSpec],
    packed: PackedTrace,
    trainings: Optional[Mapping[str, PackedTrace]] = None,
    context: Optional[TraceContext] = None,
    training_contexts: Optional[Mapping[str, TraceContext]] = None,
) -> List[Dict[int, Tuple[int, int]]]:
    """Per-static-site ``(correct, total)`` maps for every spec, fused.

    The multi-predictor twin of
    :func:`repro.sim.kernels.per_site_accuracy`: one trace pass, shared
    intermediates, identical tallies.
    """
    ctx, training_ctxs = _contexts(packed, trainings, context, training_contexts)
    scores = _FusedScores(specs, ctx, training_ctxs)
    return [scores.per_site(index) for index in range(len(specs))]


def _contexts(
    packed: PackedTrace,
    trainings: Optional[Mapping[str, PackedTrace]],
    context: Optional[TraceContext],
    training_contexts: Optional[Mapping[str, TraceContext]],
) -> Tuple[TraceContext, Mapping[str, TraceContext]]:
    ctx = context if context is not None else TraceContext(packed)
    if training_contexts is not None:
        return ctx, training_contexts
    built: Dict[str, TraceContext] = {}
    for role, trace in (trainings or {}).items():
        built[role] = ctx if trace is packed else TraceContext(trace)
    return ctx, built


# ----------------------------------------------------------------------
# sweep planning
# ----------------------------------------------------------------------
class SweepPlan:
    """How a spec list splits into fused groups and per-spec fallbacks.

    The fused kernel handles every vectorizable spec; the rest (schemes
    without a vector kernel) stay on the per-spec scalar path.  Specs are
    additionally partitioned by :func:`training_role`, which is what the
    parallel layer needs to know per benchmark: ``"train"``-role cells
    (ST-Diff) do not exist on benchmarks without a Table 3 training set.
    """

    def __init__(self, specs: Sequence[PredictorSpec], backend: str):
        self.specs = list(specs)
        self.backend = backend
        self.fused: List[int] = []
        self.scalar: List[int] = []
        for index, spec in enumerate(self.specs):
            if backend == "vector" and vectorizable(spec):
                self.fused.append(index)
            else:
                self.scalar.append(index)

    @property
    def roles(self) -> List[Optional[str]]:
        """Per-spec training role (aligned with ``specs``)."""
        return [training_role(spec) for spec in self.specs]

    def needs_training(self, role: str) -> bool:
        return any(r == role for r in self.roles)
