"""Sweep orchestration: many predictor configurations x many benchmarks.

This is the experiment driver behind every figure: it generates (and caches)
each benchmark's trace once, builds each predictor configuration fresh per
benchmark, handles Static Training's two-pass protocol (profile the training
trace, test on the testing trace — Same or Diff data sets per Table 3), and
collects everything into a :class:`~repro.sim.results.SweepResult`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import WorkloadError
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.backend import resolve_backend
from repro.sim.kernels import choose_backend, score_spec
from repro.sim.result_cache import ResultCache
from repro.sim.results import BenchmarkResult, PredictionStats, SweepResult
from repro.sim.sweep import SweepPlan, TraceContext, fused_stats, training_role
from repro.trace.record import BranchRecord
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    TraceCache,
    Workload,
    WorkloadTrace,
    default_cache,
    get_workload,
    workload_names,
)

SpecLike = Union[str, PredictorSpec]

#: sentinel for ``SweepRunner(result_cache=...)``: derive the sweep-result
#: cache from the trace cache's store directory (disabled when memory-only)
AUTO_RESULT_CACHE = "auto"


def _as_spec(spec: SpecLike) -> PredictorSpec:
    return spec if isinstance(spec, PredictorSpec) else parse_spec(spec)


class SweepRunner:
    """Runs predictor configurations over the benchmark suite.

    Args:
        benchmarks: workload names (defaults to all nine).
        max_conditional: per-benchmark conditional-branch cap (the paper's
            twenty-million equivalent; scaled for Python).
        cache: trace cache to use (defaults to the shared process cache).
        backend: simulation backend — ``auto`` (vector kernels when NumPy
            is available, scalar otherwise), ``scalar``, or ``vector``; see
            :mod:`repro.sim.backend`.  Results are identical either way.
        result_cache: where finished stats rows persist
            (:mod:`repro.sim.result_cache`).  The default
            :data:`AUTO_RESULT_CACHE` puts them in ``results/`` next to the
            trace cache's shard store (and disables caching for a
            memory-only trace cache); pass ``None`` to disable, or a
            :class:`~repro.sim.result_cache.ResultCache` to choose the
            location.
    """

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
        cache: Optional[TraceCache] = None,
        backend: str = "auto",
        result_cache: "Optional[ResultCache | str]" = AUTO_RESULT_CACHE,
    ):
        self.benchmarks = list(benchmarks) if benchmarks is not None else workload_names()
        self.max_conditional = max_conditional
        self.cache = cache if cache is not None else default_cache()
        self.backend = backend
        if result_cache == AUTO_RESULT_CACHE:
            store = self.cache.store
            self.result_cache: Optional[ResultCache] = (
                ResultCache(store.root / "results") if store is not None else None
            )
        else:
            assert result_cache is None or isinstance(result_cache, ResultCache)
            self.result_cache = result_cache

    # ------------------------------------------------------------------
    def _workload(self, name: str) -> Workload:
        return get_workload(name)

    def testing_trace(self, benchmark: str) -> List[BranchRecord]:
        """The benchmark's testing-trace records (cached)."""
        workload = self._workload(benchmark)
        return self.cache.get(workload, "test", self.max_conditional).records

    def training_trace(self, benchmark: str, data_mode: str) -> List[BranchRecord]:
        """The trace a profiled scheme trains on.

        ``Same`` trains on the testing trace itself (the paper's best-case
        Static Training); ``Diff`` trains on the Table 3 training data set
        and raises :class:`~repro.errors.WorkloadError` for the four
        benchmarks that have none.
        """
        return self._training_workload_trace(benchmark, data_mode).records

    def _training_workload_trace(self, benchmark: str, data_mode: str) -> WorkloadTrace:
        """:meth:`training_trace`'s cached :class:`WorkloadTrace` form, so
        both backends (records for scalar, columns for vector) share one
        cache entry."""
        if data_mode == "Same":
            workload = self._workload(benchmark)
            return self.cache.get(workload, "test", self.max_conditional)
        workload = self._workload(benchmark)
        if not workload.has_training_set:
            raise WorkloadError(
                f"benchmark {benchmark!r} has no alternative training data set"
                " (Table 3 marks it NA)"
            )
        return self.cache.get(workload, "train", self.max_conditional)

    # ------------------------------------------------------------------
    def run_one(self, spec: SpecLike, benchmark: str) -> BenchmarkResult:
        """Simulate one configuration on one benchmark."""
        parsed = _as_spec(spec)
        workload = self._workload(benchmark)
        trace = self.cache.get(workload, "test", self.max_conditional)
        training: Optional[WorkloadTrace] = None
        if parsed.scheme == "ST":
            training = self._training_workload_trace(benchmark, parsed.data_mode or "Same")
        elif parsed.scheme == "Profile":
            # the paper's profiling scheme profiles the execution data set
            training = trace
        # the vector kernels where they apply, else the scalar engine over
        # the packed columnar form (which replays measurably faster and
        # scores identically — see repro.sim.engine.simulate_packed and
        # repro.sim.kernels); either way the stats are bit-identical
        backend = choose_backend(parsed, self.backend)
        needs_packed_training = training is not None and backend == "vector"
        # the scalar path gets a one-pass record iterator rather than the
        # boxed list: at paper scale a warm-store trace is mmap-backed
        # columns, and materialising 20M BranchRecords just to profile would
        # dwarf the simulation itself
        stats = score_spec(
            parsed,
            trace.packed(),
            backend=backend,
            training=training.packed() if needs_packed_training else None,
            training_records=None
            if training is None or backend == "vector"
            else training.iter_records(),
        )
        return BenchmarkResult(
            scheme=parsed.canonical(), benchmark=benchmark, stats=stats
        )

    # ------------------------------------------------------------------
    def _cell_stems(
        self, spec: PredictorSpec, workload: Workload
    ) -> Tuple[str, Optional[str]]:
        """The (test stem, training stem) naming one cell's trace inputs in
        the result-cache key."""
        test_stem = self.cache.stem_for(workload, "test", self.max_conditional)
        role = training_role(spec)
        if role is None:
            return test_stem, None
        if role == "test":
            return test_stem, test_stem
        return test_stem, self.cache.stem_for(workload, "train", self.max_conditional)

    def score_benchmark(
        self,
        specs: Sequence[SpecLike],
        benchmark: str,
        skip_unavailable: bool = True,
    ) -> List[Optional[PredictionStats]]:
        """Score every spec against one benchmark, sharing the trace pass.

        This is the fused engine's entry point (also used by the parallel
        workers): vectorizable specs score through one
        :func:`repro.sim.sweep.fused_stats` call over shared trace
        intermediates, the rest fall back to the per-spec scalar path, and
        the result cache is consulted per cell either way.  Returns one
        stats row per spec, aligned with ``specs``; ``None`` marks an
        unavailable cell (ST-Diff on a benchmark without a Table 3
        training set) under ``skip_unavailable``.
        """
        parsed = [_as_spec(spec) for spec in specs]
        workload = self._workload(benchmark)
        results: List[Optional[PredictionStats]] = [None] * len(parsed)

        available: List[int] = []
        for index, spec in enumerate(parsed):
            if (
                spec.scheme == "ST"
                and spec.data_mode == "Diff"
                and not workload.has_training_set
            ):
                if skip_unavailable:
                    continue
                raise WorkloadError(
                    f"benchmark {benchmark!r} has no alternative training data set"
                    " (Table 3 marks it NA)"
                )
            available.append(index)

        plan = SweepPlan(
            [parsed[index] for index in available], resolve_backend(self.backend)
        )
        fused_pending: List[int] = []
        scalar_pending: List[int] = []
        for position, index in enumerate(available):
            spec = parsed[index]
            backend = choose_backend(spec, self.backend)
            if self.result_cache is not None:
                test_stem, train_stem = self._cell_stems(spec, workload)
                hit = self.result_cache.get(
                    spec.canonical(), test_stem, train_stem, backend
                )
                if hit is not None:
                    results[index] = hit
                    continue
            if position in plan.fused:
                fused_pending.append(index)
            else:
                scalar_pending.append(index)

        if fused_pending:
            pending = [parsed[index] for index in fused_pending]
            trace = self.cache.get(workload, "test", self.max_conditional)
            trainings: Dict[str, TraceContext] = {}
            context = TraceContext(trace.packed())
            roles = {training_role(spec) for spec in pending}
            if "test" in roles:
                trainings["test"] = context
            if "train" in roles:
                training = self._training_workload_trace(benchmark, "Diff")
                trainings["train"] = TraceContext(training.packed())
            fused_rows = fused_stats(
                pending, trace.packed(), context=context,
                training_contexts=trainings,
            )
            for index, stats in zip(fused_pending, fused_rows):
                results[index] = stats
        for index in scalar_pending:
            results[index] = self.run_one(parsed[index], benchmark).stats
        if self.result_cache is not None:
            for index in fused_pending + scalar_pending:
                stats = results[index]
                if stats is None:
                    continue
                spec = parsed[index]
                backend = choose_backend(spec, self.backend)
                test_stem, train_stem = self._cell_stems(spec, workload)
                self.result_cache.put(
                    spec.canonical(), test_stem, train_stem, backend, stats
                )
        return results

    def run(
        self,
        specs: Iterable[SpecLike],
        skip_unavailable: bool = True,
        jobs: int = 1,
    ) -> SweepResult:
        """Run every configuration over every benchmark.

        ``skip_unavailable`` silently skips (scheme, benchmark) cells that
        cannot exist — ST-Diff on the four benchmarks without a training set
        (the paper's Figure 8 leaves those columns blank too).

        The serial sweep walks the grid benchmark-major so each
        benchmark's trace intermediates are shared across the whole spec
        list by the fused engine (:meth:`score_benchmark`); the final
        :class:`SweepResult` is assembled in the historical (spec-order,
        then benchmark-order) sequence, so sweeps are byte-identical to
        the per-cell path.

        ``jobs`` > 1 fans (benchmark x spec-group) tasks out over that
        many worker processes (``0`` means one per CPU) via
        :func:`repro.sim.parallel.run_parallel_sweep`; the merged result
        is identical to the serial sweep.
        """
        parsed = [_as_spec(spec) for spec in specs]
        if jobs != 1:
            from repro.sim.parallel import run_parallel_sweep

            return run_parallel_sweep(self, parsed, jobs, skip_unavailable)
        cells: Dict[Tuple[int, str], PredictionStats] = {}
        for benchmark in self.benchmarks:
            for index, stats in enumerate(
                self.score_benchmark(parsed, benchmark, skip_unavailable)
            ):
                if stats is not None:
                    cells[(index, benchmark)] = stats
        return self.assemble(parsed, cells)

    def assemble(
        self,
        parsed: Sequence[PredictorSpec],
        cells: Mapping[Tuple[int, str], PredictionStats],
    ) -> SweepResult:
        """Collect scored cells into a :class:`SweepResult` in the
        deterministic (spec-order, then benchmark-order) sequence the
        per-cell sweep produced, regardless of scoring order."""
        sweep = SweepResult()
        for index, spec in enumerate(parsed):
            for benchmark in self.benchmarks:
                stats = cells.get((index, benchmark))
                if stats is None:
                    continue
                result = BenchmarkResult(
                    scheme=spec.canonical(), benchmark=benchmark, stats=stats
                )
                sweep.add(result, category=self._workload(benchmark).category)
        return sweep


def run_sweep(
    specs: Iterable[SpecLike],
    benchmarks: Optional[Sequence[str]] = None,
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`.

    ``jobs`` > 1 (or ``0`` for one worker per CPU) runs the sweep on a
    process pool; see :meth:`SweepRunner.run`.  ``backend`` selects the
    simulation backend (``auto`` / ``scalar`` / ``vector``).
    """
    runner = SweepRunner(benchmarks, max_conditional, cache, backend=backend)
    return runner.run(specs, jobs=jobs)
