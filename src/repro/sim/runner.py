"""Sweep orchestration: many predictor configurations x many benchmarks.

This is the experiment driver behind every figure: it generates (and caches)
each benchmark's trace once, builds each predictor configuration fresh per
benchmark, handles Static Training's two-pass protocol (profile the training
trace, test on the testing trace — Same or Diff data sets per Table 3), and
collects everything into a :class:`~repro.sim.results.SweepResult`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import WorkloadError
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.kernels import choose_backend, score_spec
from repro.sim.results import BenchmarkResult, SweepResult
from repro.trace.record import BranchRecord
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    TraceCache,
    Workload,
    WorkloadTrace,
    default_cache,
    get_workload,
    workload_names,
)

SpecLike = Union[str, PredictorSpec]


def _as_spec(spec: SpecLike) -> PredictorSpec:
    return spec if isinstance(spec, PredictorSpec) else parse_spec(spec)


class SweepRunner:
    """Runs predictor configurations over the benchmark suite.

    Args:
        benchmarks: workload names (defaults to all nine).
        max_conditional: per-benchmark conditional-branch cap (the paper's
            twenty-million equivalent; scaled for Python).
        cache: trace cache to use (defaults to the shared process cache).
        backend: simulation backend — ``auto`` (vector kernels when NumPy
            is available, scalar otherwise), ``scalar``, or ``vector``; see
            :mod:`repro.sim.backend`.  Results are identical either way.
    """

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
        cache: Optional[TraceCache] = None,
        backend: str = "auto",
    ):
        self.benchmarks = list(benchmarks) if benchmarks is not None else workload_names()
        self.max_conditional = max_conditional
        self.cache = cache if cache is not None else default_cache()
        self.backend = backend

    # ------------------------------------------------------------------
    def _workload(self, name: str) -> Workload:
        return get_workload(name)

    def testing_trace(self, benchmark: str) -> List[BranchRecord]:
        """The benchmark's testing-trace records (cached)."""
        workload = self._workload(benchmark)
        return self.cache.get(workload, "test", self.max_conditional).records

    def training_trace(self, benchmark: str, data_mode: str) -> List[BranchRecord]:
        """The trace a profiled scheme trains on.

        ``Same`` trains on the testing trace itself (the paper's best-case
        Static Training); ``Diff`` trains on the Table 3 training data set
        and raises :class:`~repro.errors.WorkloadError` for the four
        benchmarks that have none.
        """
        return self._training_workload_trace(benchmark, data_mode).records

    def _training_workload_trace(self, benchmark: str, data_mode: str) -> WorkloadTrace:
        """:meth:`training_trace`'s cached :class:`WorkloadTrace` form, so
        both backends (records for scalar, columns for vector) share one
        cache entry."""
        if data_mode == "Same":
            workload = self._workload(benchmark)
            return self.cache.get(workload, "test", self.max_conditional)
        workload = self._workload(benchmark)
        if not workload.has_training_set:
            raise WorkloadError(
                f"benchmark {benchmark!r} has no alternative training data set"
                " (Table 3 marks it NA)"
            )
        return self.cache.get(workload, "train", self.max_conditional)

    # ------------------------------------------------------------------
    def run_one(self, spec: SpecLike, benchmark: str) -> BenchmarkResult:
        """Simulate one configuration on one benchmark."""
        parsed = _as_spec(spec)
        workload = self._workload(benchmark)
        trace = self.cache.get(workload, "test", self.max_conditional)
        training: Optional[WorkloadTrace] = None
        if parsed.scheme == "ST":
            training = self._training_workload_trace(benchmark, parsed.data_mode or "Same")
        elif parsed.scheme == "Profile":
            # the paper's profiling scheme profiles the execution data set
            training = trace
        # the vector kernels where they apply, else the scalar engine over
        # the packed columnar form (which replays measurably faster and
        # scores identically — see repro.sim.engine.simulate_packed and
        # repro.sim.kernels); either way the stats are bit-identical
        backend = choose_backend(parsed, self.backend)
        needs_packed_training = training is not None and backend == "vector"
        # the scalar path gets a one-pass record iterator rather than the
        # boxed list: at paper scale a warm-store trace is mmap-backed
        # columns, and materialising 20M BranchRecords just to profile would
        # dwarf the simulation itself
        stats = score_spec(
            parsed,
            trace.packed(),
            backend=backend,
            training=training.packed() if needs_packed_training else None,
            training_records=None
            if training is None or backend == "vector"
            else training.iter_records(),
        )
        return BenchmarkResult(
            scheme=parsed.canonical(), benchmark=benchmark, stats=stats
        )

    def run(
        self,
        specs: Iterable[SpecLike],
        skip_unavailable: bool = True,
        jobs: int = 1,
    ) -> SweepResult:
        """Run every configuration over every benchmark.

        ``skip_unavailable`` silently skips (scheme, benchmark) cells that
        cannot exist — ST-Diff on the four benchmarks without a training set
        (the paper's Figure 8 leaves those columns blank too).

        ``jobs`` > 1 fans the (spec x benchmark) grid out over that many
        worker processes (``0`` means one per CPU) via
        :func:`repro.sim.parallel.run_parallel_sweep`; the merged result is
        identical to the serial sweep.
        """
        if jobs != 1:
            from repro.sim.parallel import run_parallel_sweep

            return run_parallel_sweep(self, list(specs), jobs, skip_unavailable)
        sweep = SweepResult()
        for spec in specs:
            parsed = _as_spec(spec)
            for benchmark in self.benchmarks:
                try:
                    result = self.run_one(parsed, benchmark)
                except WorkloadError:
                    if skip_unavailable and parsed.scheme == "ST":
                        continue
                    raise
                sweep.add(result, category=self._workload(benchmark).category)
        return sweep


def run_sweep(
    specs: Iterable[SpecLike],
    benchmarks: Optional[Sequence[str]] = None,
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`.

    ``jobs`` > 1 (or ``0`` for one worker per CPU) runs the sweep on a
    process pool; see :meth:`SweepRunner.run`.  ``backend`` selects the
    simulation backend (``auto`` / ``scalar`` / ``vector``).
    """
    runner = SweepRunner(benchmarks, max_conditional, cache, backend=backend)
    return runner.run(specs, jobs=jobs)
