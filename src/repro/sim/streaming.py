"""Incremental (streaming) predictor scoring sessions.

The offline engines score a *complete* trace in one call.  The prediction
service (:mod:`repro.serve`) instead receives records in arbitrary chunks
over a connection and must answer each chunk before the next arrives, while
the predictor's state persists across chunks.  A :class:`StreamingScorer`
is that session object: feed it record batches in trace order and it
returns the per-record predictions, accumulating the same
:class:`~repro.sim.results.PredictionStats` the offline engine would have
produced for the concatenated stream.

Two implementations exist, mirroring :mod:`repro.sim.backend`:

* the **scalar** scorer wraps the predictor object built by
  :meth:`~repro.predictors.spec.PredictorSpec.build` and dispatches its
  fused ``observe`` per record — always available, the reference;
* the **vector** scorer re-derives the batched kernels of
  :mod:`repro.sim.kernels` in *carried-state* form: history registers,
  automaton state tables and the global history register survive between
  ``feed`` calls, so scoring a stream chunk-by-chunk is bit-exact with
  scoring it whole.  The finite HRT front-ends carry their state too — an
  HHRT session just re-keys the tables by hashed slot, and an AHRT session
  keeps a persistent :class:`~repro.sim.kernels.AhrtReplay` whose LRU
  recency stacks advance with every batch, so register ids (and the
  payloads they carry across evictions) are chunking-invariant.

Bit-exactness holds for *any* chunking: ``feed(a); feed(b)`` produces the
same predictions and statistics as ``feed(a + b)``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.predictors.automata import A2
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.kernels import (
    AhrtReplay,
    _composition_tables,
    _hash_buckets,
    _history_global,
    _np,
    _profile_bias,
    _preset_bits,
    _segment_positions,
    choose_backend,
)
from repro.sim.results import PredictionStats
from repro.trace.record import BranchClass, BranchRecord

__all__ = [
    "StreamingScorer",
    "ScalarStreamingScorer",
    "VectorStreamingScorer",
    "make_scorer",
    "needs_training",
]

SpecLike = Union[str, PredictorSpec]

#: schemes whose session needs training records before scoring starts.
_TRAINING_SCHEMES = ("ST", "Profile")


def needs_training(spec: PredictorSpec) -> bool:
    """Whether a session for ``spec`` must be given training records."""
    return spec.scheme in _TRAINING_SCHEMES


def _as_spec(spec: SpecLike) -> PredictorSpec:
    return spec if isinstance(spec, PredictorSpec) else parse_spec(spec)


class StreamingScorer:
    """Base class: an incremental scoring session for one predictor spec.

    ``feed`` takes records in trace order and returns one entry per input
    record: the predicted direction (``bool``) for conditional records,
    ``None`` for records the direction predictor does not score (calls,
    returns, unconditional jumps).  ``stats`` accumulates across calls.
    """

    backend = "scalar"

    def __init__(self, spec: PredictorSpec):
        self.spec = spec
        self.stats = PredictionStats()

    def feed(self, records: Sequence[BranchRecord]) -> List[Optional[bool]]:
        raise NotImplementedError


class ScalarStreamingScorer(StreamingScorer):
    """Streaming session over the scalar engine's fused ``observe`` hook."""

    backend = "scalar"

    def __init__(
        self,
        spec: PredictorSpec,
        training_records: Optional[Iterable[BranchRecord]] = None,
    ):
        super().__init__(spec)
        if needs_training(spec) and training_records is None:
            raise ConfigError(
                f"{spec.canonical()}: session needs training records before scoring"
            )
        self._predictor = spec.build(training_records=training_records)

    def feed(self, records: Sequence[BranchRecord]) -> List[Optional[bool]]:
        observe = self._predictor.observe
        stats = self.stats
        out: List[Optional[bool]] = []
        append = out.append
        CONDITIONAL = BranchClass.CONDITIONAL
        for record in records:
            if record.cls is CONDITIONAL:
                prediction = observe(record.pc, record.target, record.taken)
                stats.conditional_total += 1
                if prediction == record.taken:
                    stats.conditional_correct += 1
                append(prediction)
            else:
                append(None)
        return out


# ----------------------------------------------------------------------
# carried-state vector kernels
# ----------------------------------------------------------------------
def _gather_states(np: Any, states: Any, keys: Any, default: int) -> Any:
    """Current automaton state per key from a dict- or array-backed table."""
    if isinstance(states, dict):
        return np.fromiter(
            (states.get(int(key), default) for key in keys),
            dtype=np.intp,
            count=len(keys),
        )
    return states[keys]


def _scatter_states(states: Any, keys: Any, values: Any) -> None:
    if isinstance(states, dict):
        for key, value in zip(keys, values):
            states[int(key)] = int(value)
    else:
        states[keys] = values


def _fsm_predictions_carried(
    np: Any, keys: Any, taken: Any, automaton: Any, states: Any
) -> Any:
    """Per-record predictions from replaying each key's outcome subsequence
    through ``automaton``, *starting from and updating* ``states``.

    The batched twin of :func:`repro.sim.kernels._fsm_predictions` with the
    per-bucket initial state read from ``states`` (dict keyed by bucket, or
    a dense array indexed by bucket) instead of ``automaton.init_state``;
    after the call ``states`` holds each touched bucket's post-batch state,
    so consecutive calls replay a stream chunk-by-chunk bit-exactly.
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=bool)
    predictions_lut = np.array(automaton.predictions, dtype=bool)
    compose, decode = _composition_tables(np)
    order, pos = _segment_positions(np, keys)
    sorted_keys = keys[order]
    taken_sorted = taken[order].astype(np.intp)
    transitions = np.asarray(automaton.transitions, dtype=np.int64)
    step_codes = np.zeros(2, dtype=np.intp)
    for state in range(automaton.num_states):
        step_codes |= transitions[state].astype(np.intp) << (2 * state)
    codes = step_codes[taken_sorted].astype(np.uint8)
    by_pos = np.argsort(pos, kind="stable")
    pos_sorted = pos[by_pos]
    distance = 1
    while True:
        active = by_pos[np.searchsorted(pos_sorted, distance):]
        if active.size == 0:
            break
        codes[active] = compose[codes[active], codes[active - distance]]
        distance <<= 1
    seg_start = pos == 0
    starts = np.nonzero(seg_start)[0]
    seg_keys = sorted_keys[starts]
    init_states = _gather_states(np, states, seg_keys, automaton.init_state)
    seg_init = init_states[np.cumsum(seg_start) - 1]
    state_before = seg_init.copy()
    inner = np.nonzero(pos > 0)[0]
    state_before[inner] = decode[codes[inner - 1], seg_init[inner]]
    ends = np.append(starts[1:], n) - 1
    _scatter_states(states, seg_keys, decode[codes[ends], init_states])
    out = np.empty(n, dtype=bool)
    out[order] = predictions_lut[state_before]
    return out


def _branch_histories_carried(
    np: Any, pc: Any, taken: Any, history_length: int, table: Dict[int, int], init_value: int
) -> Any:
    """Per-record k-bit history *before* each record, carried across batches.

    Bits below a record's in-batch occurrence index come from the batch's
    own outcome window (the :func:`_history_per_branch` sliding window with
    init bit 0); the higher bits are the branch's carried register shifted
    into place.  ``table`` is updated with each branch's post-batch register.
    """
    n = len(pc)
    mask = (1 << history_length) - 1
    order, pos = _segment_positions(np, pc)
    sorted_pc = pc[order]
    taken_sorted = taken[order].astype(np.int64)
    window = np.zeros(n, dtype=np.int64)
    max_pos = int(pos.max()) if n else 0
    for j in range(1, history_length + 1):
        if j > max_pos:
            break
        previous = np.empty(n, dtype=np.int64)
        previous[:j] = 0
        previous[j:] = taken_sorted[:-j]
        window |= np.where(pos >= j, previous, 0) << (j - 1)
    seg_start = pos == 0
    starts = np.nonzero(seg_start)[0]
    seg_keys = sorted_pc[starts]
    carried = np.fromiter(
        (table.get(int(key), init_value) for key in seg_keys),
        dtype=np.int64,
        count=len(starts),
    )
    # a register contributes nothing once shifted past k bits; clamping the
    # shift to k keeps the int64 shift in range for arbitrarily long batches
    shift = np.minimum(pos, history_length)
    histories = window | ((carried[np.cumsum(seg_start) - 1] << shift) & mask)
    ends = np.append(starts[1:], n) - 1
    new_values = ((histories[ends] << 1) | taken_sorted[ends]) & mask
    for key, value in zip(seg_keys, new_values):
        table[int(key)] = int(value)
    out = np.empty(n, dtype=np.int64)
    out[order] = histories
    return out


def _global_histories_carried(
    np: Any, taken: Any, history_length: int, carried: int
) -> "tuple[Any, int]":
    """Per-record global history before each record, plus the new register."""
    n = len(taken)
    mask = (1 << history_length) - 1
    window = _history_global(np, taken, history_length, 0)
    shift = np.minimum(np.arange(n, dtype=np.int64), history_length)
    histories = window | ((carried << shift) & mask)
    if n:
        carried = int(((int(histories[-1]) << 1) | int(taken[-1])) & mask)
    return histories, carried


class VectorStreamingScorer(StreamingScorer):
    """Streaming session scored with carried-state NumPy batch kernels.

    Supports exactly the specs :func:`repro.sim.kernels.vectorizable`
    accepts; construct through :func:`make_scorer`, which applies the
    scalar fallback for the rest.
    """

    backend = "vector"

    def __init__(
        self,
        spec: PredictorSpec,
        training_records: Optional[Iterable[BranchRecord]] = None,
    ):
        super().__init__(spec)
        np = _np()
        scheme = spec.scheme
        self._ahrt: Optional[AhrtReplay] = None
        if scheme in ("AT", "ST", "LS"):
            if spec.hrt_kind == "AHRT":
                assert spec.hrt_entries is not None
                self._ahrt = AhrtReplay(spec.hrt_entries, spec.hrt_associativity)
            elif spec.hrt_kind == "HHRT" and (spec.hrt_entries or 0) < 1:
                raise ConfigError("HHRT entries must be >= 1")
        if needs_training(spec):
            if training_records is None:
                raise ConfigError(
                    f"{spec.canonical()}: session needs training records before scoring"
                )
            t_pc, t_taken = self._training_columns(np, training_records)
        if scheme == "Profile":
            self._profile_pc, self._profile_bias = _profile_bias(np, (t_pc, t_taken))
        elif scheme == "ST":
            assert spec.history_length is not None
            self._preset = _preset_bits(np, (t_pc, t_taken), spec.history_length)
            self._histories: Dict[int, int] = {}
        elif scheme == "AT":
            assert spec.history_length is not None and spec.pt_automaton is not None
            self._histories = {}
            self._pt_states = np.full(
                1 << spec.history_length, spec.pt_automaton.init_state, dtype=np.intp
            )
        elif scheme == "LS":
            assert spec.hrt_automaton is not None
            self._site_states: Dict[int, int] = {}
        elif scheme in ("GAg", "gshare"):
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            self._global = mask if scheme == "GAg" else 0
            self._pt_states = np.full(
                1 << spec.history_length,
                (spec.pt_automaton or A2).init_state,
                dtype=np.intp,
            )
        elif scheme not in ("AlwaysTaken", "AlwaysNotTaken", "BTFN"):
            raise ConfigError(f"no streaming vector kernel for {spec.canonical()!r}")

    @staticmethod
    def _training_columns(np: Any, training_records: Iterable[BranchRecord]) -> "tuple[Any, Any]":
        pairs = [
            (record.pc, 1 if record.taken else 0)
            for record in training_records
            if record.cls is BranchClass.CONDITIONAL
        ]
        pc = np.array([pair[0] for pair in pairs], dtype=np.int64)
        taken = np.array([pair[1] for pair in pairs], dtype=np.int8)
        return pc, taken

    # ------------------------------------------------------------------
    def feed(self, records: Sequence[BranchRecord]) -> List[Optional[bool]]:
        np = _np()
        out: List[Optional[bool]] = [None] * len(records)
        CONDITIONAL = BranchClass.CONDITIONAL
        cond_indices = [
            index for index, record in enumerate(records) if record.cls is CONDITIONAL
        ]
        if not cond_indices:
            return out
        m = len(cond_indices)
        pc = np.fromiter((records[i].pc for i in cond_indices), dtype=np.int64, count=m)
        target = np.fromiter(
            (records[i].target for i in cond_indices), dtype=np.int64, count=m
        )
        taken = np.fromiter(
            (1 if records[i].taken else 0 for i in cond_indices), dtype=np.int8, count=m
        )
        predictions = self._predict_batch(np, pc, target, taken)
        self.stats.conditional_total += m
        self.stats.conditional_correct += int(
            (predictions == taken.astype(bool)).sum()
        )
        for offset, index in enumerate(cond_indices):
            out[index] = bool(predictions[offset])
        return out

    def _hrt_batch_keys(self, np: Any, pc: Any) -> Any:
        """Bucket keys for the batch under the spec's HRT front-end — the
        streaming twin of :func:`repro.sim.kernels._hrt_keys`.  The AHRT
        branch advances the session's carried LRU replay, so it must be
        called exactly once per fed batch, in stream order."""
        spec = self.spec
        if self._ahrt is not None:
            return self._ahrt.assign(np, pc)
        if spec.hrt_kind == "HHRT":
            assert spec.hrt_entries is not None
            return _hash_buckets(np, pc, spec.hrt_entries)
        return pc

    def _predict_batch(self, np: Any, pc: Any, target: Any, taken: Any) -> Any:
        spec = self.spec
        scheme = spec.scheme
        if scheme == "AlwaysTaken":
            return np.ones(len(pc), dtype=bool)
        if scheme == "AlwaysNotTaken":
            return np.zeros(len(pc), dtype=bool)
        if scheme == "BTFN":
            return target < pc
        if scheme == "Profile":
            unique_pc, bias = self._profile_pc, self._profile_bias
            if len(unique_pc) == 0:
                return np.ones(len(pc), dtype=bool)
            slot = np.searchsorted(unique_pc, pc)
            clamped = np.minimum(slot, len(unique_pc) - 1)
            known = (slot < len(unique_pc)) & (unique_pc[clamped] == pc)
            return np.where(known, bias[clamped], True)
        if scheme == "LS":
            keys = self._hrt_batch_keys(np, pc)
            return _fsm_predictions_carried(
                np, keys, taken, spec.hrt_automaton, self._site_states
            )
        if scheme == "AT":
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            keys = self._hrt_batch_keys(np, pc)
            patterns = _branch_histories_carried(
                np, keys, taken, spec.history_length, self._histories, mask
            )
            return _fsm_predictions_carried(
                np, patterns, taken, spec.pt_automaton, self._pt_states
            )
        if scheme == "ST":
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            keys = self._hrt_batch_keys(np, pc)
            patterns = _branch_histories_carried(
                np, keys, taken, spec.history_length, self._histories, mask
            )
            return self._preset[patterns]
        if scheme == "GAg":
            assert spec.history_length is not None
            histories, self._global = _global_histories_carried(
                np, taken, spec.history_length, self._global
            )
            return _fsm_predictions_carried(
                np, histories, taken, spec.pt_automaton or A2, self._pt_states
            )
        if scheme == "gshare":
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            histories, self._global = _global_histories_carried(
                np, taken, spec.history_length, self._global
            )
            index = ((pc >> 2) ^ histories) & mask
            return _fsm_predictions_carried(
                np, index, taken, spec.pt_automaton or A2, self._pt_states
            )
        raise ConfigError(f"no streaming vector kernel for {spec.canonical()!r}")


def make_scorer(
    spec: SpecLike,
    backend: Optional[str] = None,
    training_records: Optional[Iterable[BranchRecord]] = None,
) -> StreamingScorer:
    """Build the streaming scorer for ``spec`` on the chosen backend.

    ``backend`` accepts the usual ``auto`` / ``scalar`` / ``vector`` (or
    ``None`` for the process default); the resolution rules are those of
    the offline dispatch (:func:`repro.sim.kernels.choose_backend`).  Every
    registry spec family — finite HRTs included — now has a vector session,
    and the predictions are identical whichever backend runs.
    """
    parsed = _as_spec(spec)
    if training_records is not None and not isinstance(training_records, (list, tuple)):
        training_records = list(training_records)
    if choose_backend(parsed, backend) == "vector":
        return VectorStreamingScorer(parsed, training_records)
    return ScalarStreamingScorer(parsed, training_records)
