"""Incremental (streaming) predictor scoring sessions.

The offline engines score a *complete* trace in one call.  The prediction
service (:mod:`repro.serve`) instead receives records in arbitrary chunks
over a connection and must answer each chunk before the next arrives, while
the predictor's state persists across chunks.  A :class:`StreamingScorer`
is that session object: feed it record batches in trace order and it
returns the per-record predictions, accumulating the same
:class:`~repro.sim.results.PredictionStats` the offline engine would have
produced for the concatenated stream.

Two implementations exist, mirroring :mod:`repro.sim.backend`:

* the **scalar** scorer wraps the predictor object built by
  :meth:`~repro.predictors.spec.PredictorSpec.build` and dispatches its
  fused ``observe`` per record — always available, the reference;
* the **vector** scorer re-derives the batched kernels of
  :mod:`repro.sim.kernels` in *carried-state* form: history registers,
  automaton state tables and the global history register survive between
  ``feed`` calls, so scoring a stream chunk-by-chunk is bit-exact with
  scoring it whole.  The finite HRT front-ends carry their state too — an
  HHRT session just re-keys the tables by hashed slot, and an AHRT session
  keeps a persistent :class:`~repro.sim.kernels.AhrtReplay` whose LRU
  recency stacks advance with every batch, so register ids (and the
  payloads they carry across evictions) are chunking-invariant.

Bit-exactness holds for *any* chunking: ``feed(a); feed(b)`` produces the
same predictions and statistics as ``feed(a + b)``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.predictors.automata import A2
from repro.predictors.modern import DEFAULT_ENTRY_BITS, TageState
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.kernels import (
    AhrtReplay,
    _composition_tables,
    _hash_buckets,
    _history_global,
    _np,
    _perceptron_predictions,
    _perceptron_table,
    _profile_bias,
    _preset_bits,
    _segment_positions,
    _tage_predictions,
    choose_backend,
)
from repro.sim.results import PredictionStats
from repro.trace.columnar import _CLS_MASK, PackedTrace
from repro.trace.record import BranchClass, BranchRecord

__all__ = [
    "StreamingScorer",
    "ScalarStreamingScorer",
    "VectorStreamingScorer",
    "FusedPredictions",
    "MultiSessionScorer",
    "ScalarMultiSessionScorer",
    "VectorMultiSessionScorer",
    "make_scorer",
    "make_multi_scorer",
    "needs_training",
]

SpecLike = Union[str, PredictorSpec]

#: schemes whose session needs training records before scoring starts.
_TRAINING_SCHEMES = ("ST", "Profile")


def needs_training(spec: PredictorSpec) -> bool:
    """Whether a session for ``spec`` must be given training records."""
    return spec.scheme in _TRAINING_SCHEMES


def _as_spec(spec: SpecLike) -> PredictorSpec:
    return spec if isinstance(spec, PredictorSpec) else parse_spec(spec)


class StreamingScorer:
    """Base class: an incremental scoring session for one predictor spec.

    ``feed`` takes records in trace order and returns one entry per input
    record: the predicted direction (``bool``) for conditional records,
    ``None`` for records the direction predictor does not score (calls,
    returns, unconditional jumps).  ``stats`` accumulates across calls.
    """

    backend = "scalar"

    def __init__(self, spec: PredictorSpec):
        self.spec = spec
        self.stats = PredictionStats()

    def feed(self, records: Sequence[BranchRecord]) -> List[Optional[bool]]:
        raise NotImplementedError


class ScalarStreamingScorer(StreamingScorer):
    """Streaming session over the scalar engine's fused ``observe`` hook."""

    backend = "scalar"

    def __init__(
        self,
        spec: PredictorSpec,
        training_records: Optional[Iterable[BranchRecord]] = None,
    ):
        super().__init__(spec)
        if needs_training(spec) and training_records is None:
            raise ConfigError(
                f"{spec.canonical()}: session needs training records before scoring"
            )
        self._predictor = spec.build(training_records=training_records)

    def feed(self, records: Sequence[BranchRecord]) -> List[Optional[bool]]:
        observe = self._predictor.observe
        stats = self.stats
        out: List[Optional[bool]] = []
        append = out.append
        CONDITIONAL = BranchClass.CONDITIONAL
        for record in records:
            if record.cls is CONDITIONAL:
                prediction = observe(record.pc, record.target, record.taken)
                stats.conditional_total += 1
                if prediction == record.taken:
                    stats.conditional_correct += 1
                append(prediction)
            else:
                append(None)
        return out


# ----------------------------------------------------------------------
# carried-state vector kernels
# ----------------------------------------------------------------------
def _gather_states(np: Any, states: Any, keys: Any, default: int) -> Any:
    """Current automaton state per key from a dict- or array-backed table."""
    if isinstance(states, dict):
        return np.fromiter(
            (states.get(int(key), default) for key in keys),
            dtype=np.intp,
            count=len(keys),
        )
    return states[keys]


def _scatter_states(states: Any, keys: Any, values: Any) -> None:
    if isinstance(states, dict):
        for key, value in zip(keys, values):
            states[int(key)] = int(value)
    else:
        states[keys] = values


def _fsm_predictions_carried(
    np: Any, keys: Any, taken: Any, automaton: Any, states: Any
) -> Any:
    """Per-record predictions from replaying each key's outcome subsequence
    through ``automaton``, *starting from and updating* ``states``.

    The batched twin of :func:`repro.sim.kernels._fsm_predictions` with the
    per-bucket initial state read from ``states`` (dict keyed by bucket, or
    a dense array indexed by bucket) instead of ``automaton.init_state``;
    after the call ``states`` holds each touched bucket's post-batch state,
    so consecutive calls replay a stream chunk-by-chunk bit-exactly.
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=bool)
    predictions_lut = np.array(automaton.predictions, dtype=bool)
    compose, decode = _composition_tables(np)
    order, pos = _segment_positions(np, keys)
    sorted_keys = keys[order]
    taken_sorted = taken[order].astype(np.intp)
    transitions = np.asarray(automaton.transitions, dtype=np.int64)
    step_codes = np.zeros(2, dtype=np.intp)
    for state in range(automaton.num_states):
        step_codes |= transitions[state].astype(np.intp) << (2 * state)
    codes = step_codes[taken_sorted].astype(np.uint8)
    by_pos = np.argsort(pos, kind="stable")
    pos_sorted = pos[by_pos]
    distance = 1
    while True:
        active = by_pos[np.searchsorted(pos_sorted, distance):]
        if active.size == 0:
            break
        codes[active] = compose[codes[active], codes[active - distance]]
        distance <<= 1
    seg_start = pos == 0
    starts = np.nonzero(seg_start)[0]
    seg_keys = sorted_keys[starts]
    init_states = _gather_states(np, states, seg_keys, automaton.init_state)
    seg_init = init_states[np.cumsum(seg_start) - 1]
    state_before = seg_init.copy()
    inner = np.nonzero(pos > 0)[0]
    state_before[inner] = decode[codes[inner - 1], seg_init[inner]]
    ends = np.append(starts[1:], n) - 1
    _scatter_states(states, seg_keys, decode[codes[ends], init_states])
    out = np.empty(n, dtype=bool)
    out[order] = predictions_lut[state_before]
    return out


def _branch_histories_carried(
    np: Any, pc: Any, taken: Any, history_length: int, table: Dict[int, int], init_value: int
) -> Any:
    """Per-record k-bit history *before* each record, carried across batches.

    Bits below a record's in-batch occurrence index come from the batch's
    own outcome window (the :func:`_history_per_branch` sliding window with
    init bit 0); the higher bits are the branch's carried register shifted
    into place.  ``table`` is updated with each branch's post-batch register.
    """
    n = len(pc)
    mask = (1 << history_length) - 1
    order, pos = _segment_positions(np, pc)
    sorted_pc = pc[order]
    taken_sorted = taken[order].astype(np.int64)
    window = np.zeros(n, dtype=np.int64)
    max_pos = int(pos.max()) if n else 0
    for j in range(1, history_length + 1):
        if j > max_pos:
            break
        previous = np.empty(n, dtype=np.int64)
        previous[:j] = 0
        previous[j:] = taken_sorted[:-j]
        window |= np.where(pos >= j, previous, 0) << (j - 1)
    seg_start = pos == 0
    starts = np.nonzero(seg_start)[0]
    seg_keys = sorted_pc[starts]
    carried = np.fromiter(
        (table.get(int(key), init_value) for key in seg_keys),
        dtype=np.int64,
        count=len(starts),
    )
    # a register contributes nothing once shifted past k bits; clamping the
    # shift to k keeps the int64 shift in range for arbitrarily long batches
    shift = np.minimum(pos, history_length)
    histories = window | ((carried[np.cumsum(seg_start) - 1] << shift) & mask)
    ends = np.append(starts[1:], n) - 1
    new_values = ((histories[ends] << 1) | taken_sorted[ends]) & mask
    for key, value in zip(seg_keys, new_values):
        table[int(key)] = int(value)
    out = np.empty(n, dtype=np.int64)
    out[order] = histories
    return out


def _global_histories_carried(
    np: Any, taken: Any, history_length: int, carried: int
) -> "tuple[Any, int]":
    """Per-record global history before each record, plus the new register."""
    n = len(taken)
    mask = (1 << history_length) - 1
    window = _history_global(np, taken, history_length, 0)
    shift = np.minimum(np.arange(n, dtype=np.int64), history_length)
    histories = window | ((carried << shift) & mask)
    if n:
        carried = int(((int(histories[-1]) << 1) | int(taken[-1])) & mask)
    return histories, carried


class VectorStreamingScorer(StreamingScorer):
    """Streaming session scored with carried-state NumPy batch kernels.

    Supports exactly the specs :func:`repro.sim.kernels.vectorizable`
    accepts; construct through :func:`make_scorer`, which applies the
    scalar fallback for the rest.
    """

    backend = "vector"

    def __init__(
        self,
        spec: PredictorSpec,
        training_records: Optional[Iterable[BranchRecord]] = None,
    ):
        super().__init__(spec)
        np = _np()
        scheme = spec.scheme
        self._ahrt: Optional[AhrtReplay] = None
        if scheme in ("AT", "ST", "LS"):
            if spec.hrt_kind == "AHRT":
                assert spec.hrt_entries is not None
                self._ahrt = AhrtReplay(spec.hrt_entries, spec.hrt_associativity)
            elif spec.hrt_kind == "HHRT" and (spec.hrt_entries or 0) < 1:
                raise ConfigError("HHRT entries must be >= 1")
        if needs_training(spec):
            if training_records is None:
                raise ConfigError(
                    f"{spec.canonical()}: session needs training records before scoring"
                )
            t_pc, t_taken = self._training_columns(np, training_records)
        if scheme == "Profile":
            self._profile_pc, self._profile_bias = _profile_bias(np, (t_pc, t_taken))
        elif scheme == "ST":
            assert spec.history_length is not None
            self._preset = _preset_bits(np, (t_pc, t_taken), spec.history_length)
            self._histories: Dict[int, int] = {}
        elif scheme == "AT":
            assert spec.history_length is not None and spec.pt_automaton is not None
            self._histories = {}
            self._pt_states = np.full(
                1 << spec.history_length, spec.pt_automaton.init_state, dtype=np.intp
            )
        elif scheme == "LS":
            assert spec.hrt_automaton is not None
            self._site_states: Dict[int, int] = {}
        elif scheme in ("GAg", "gshare"):
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            self._global = mask if scheme == "GAg" else 0
            self._pt_states = np.full(
                1 << spec.history_length,
                (spec.pt_automaton or A2).init_state,
                dtype=np.intp,
            )
        elif scheme == "Perceptron":
            assert spec.history_length is not None and spec.rows is not None
            self._weights = _perceptron_table(np, spec)
            self._global = 0
        elif scheme == "TAGE":
            assert spec.tage_tables is not None
            self._tage = TageState(
                spec.tage_tables, spec.tage_entry_bits or DEFAULT_ENTRY_BITS
            )
            self._global = 0
        elif scheme not in ("AlwaysTaken", "AlwaysNotTaken", "BTFN"):
            raise ConfigError(f"no streaming vector kernel for {spec.canonical()!r}")

    @staticmethod
    def _training_columns(np: Any, training_records: Iterable[BranchRecord]) -> "tuple[Any, Any]":
        pairs = [
            (record.pc, 1 if record.taken else 0)
            for record in training_records
            if record.cls is BranchClass.CONDITIONAL
        ]
        pc = np.array([pair[0] for pair in pairs], dtype=np.int64)
        taken = np.array([pair[1] for pair in pairs], dtype=np.int8)
        return pc, taken

    # ------------------------------------------------------------------
    def feed(self, records: Sequence[BranchRecord]) -> List[Optional[bool]]:
        np = _np()
        out: List[Optional[bool]] = [None] * len(records)
        CONDITIONAL = BranchClass.CONDITIONAL
        cond_indices = [
            index for index, record in enumerate(records) if record.cls is CONDITIONAL
        ]
        if not cond_indices:
            return out
        m = len(cond_indices)
        pc = np.fromiter((records[i].pc for i in cond_indices), dtype=np.int64, count=m)
        target = np.fromiter(
            (records[i].target for i in cond_indices), dtype=np.int64, count=m
        )
        taken = np.fromiter(
            (1 if records[i].taken else 0 for i in cond_indices), dtype=np.int8, count=m
        )
        predictions = self._predict_batch(np, pc, target, taken)
        self.stats.conditional_total += m
        self.stats.conditional_correct += int(
            (predictions == taken.astype(bool)).sum()
        )
        for offset, index in enumerate(cond_indices):
            out[index] = bool(predictions[offset])
        return out

    def _hrt_batch_keys(self, np: Any, pc: Any) -> Any:
        """Bucket keys for the batch under the spec's HRT front-end — the
        streaming twin of :func:`repro.sim.kernels._hrt_keys`.  The AHRT
        branch advances the session's carried LRU replay, so it must be
        called exactly once per fed batch, in stream order."""
        spec = self.spec
        if self._ahrt is not None:
            return self._ahrt.assign(np, pc)
        if spec.hrt_kind == "HHRT":
            assert spec.hrt_entries is not None
            return _hash_buckets(np, pc, spec.hrt_entries)
        return pc

    def _predict_batch(self, np: Any, pc: Any, target: Any, taken: Any) -> Any:
        spec = self.spec
        scheme = spec.scheme
        if scheme == "AlwaysTaken":
            return np.ones(len(pc), dtype=bool)
        if scheme == "AlwaysNotTaken":
            return np.zeros(len(pc), dtype=bool)
        if scheme == "BTFN":
            return target < pc
        if scheme == "Profile":
            unique_pc, bias = self._profile_pc, self._profile_bias
            if len(unique_pc) == 0:
                return np.ones(len(pc), dtype=bool)
            slot = np.searchsorted(unique_pc, pc)
            clamped = np.minimum(slot, len(unique_pc) - 1)
            known = (slot < len(unique_pc)) & (unique_pc[clamped] == pc)
            return np.where(known, bias[clamped], True)
        if scheme == "LS":
            keys = self._hrt_batch_keys(np, pc)
            return _fsm_predictions_carried(
                np, keys, taken, spec.hrt_automaton, self._site_states
            )
        if scheme == "AT":
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            keys = self._hrt_batch_keys(np, pc)
            patterns = _branch_histories_carried(
                np, keys, taken, spec.history_length, self._histories, mask
            )
            return _fsm_predictions_carried(
                np, patterns, taken, spec.pt_automaton, self._pt_states
            )
        if scheme == "ST":
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            keys = self._hrt_batch_keys(np, pc)
            patterns = _branch_histories_carried(
                np, keys, taken, spec.history_length, self._histories, mask
            )
            return self._preset[patterns]
        if scheme == "GAg":
            assert spec.history_length is not None
            histories, self._global = _global_histories_carried(
                np, taken, spec.history_length, self._global
            )
            return _fsm_predictions_carried(
                np, histories, taken, spec.pt_automaton or A2, self._pt_states
            )
        if scheme == "gshare":
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            histories, self._global = _global_histories_carried(
                np, taken, spec.history_length, self._global
            )
            index = ((pc >> 2) ^ histories) & mask
            return _fsm_predictions_carried(
                np, index, taken, spec.pt_automaton or A2, self._pt_states
            )
        if scheme == "Perceptron":
            assert spec.history_length is not None and spec.rows is not None
            histories, self._global = _global_histories_carried(
                np, taken, spec.history_length, self._global
            )
            rows_index = (pc >> 2) % spec.rows
            return _perceptron_predictions(
                np, rows_index, histories, taken, spec.history_length, self._weights
            )
        if scheme == "TAGE":
            assert spec.history_length is not None
            histories, self._global = _global_histories_carried(
                np, taken, spec.history_length, self._global
            )
            return _tage_predictions(np, pc, histories, taken, self._tage)
        raise ConfigError(f"no streaming vector kernel for {spec.canonical()!r}")


# ----------------------------------------------------------------------
# cross-session batch fusion
# ----------------------------------------------------------------------
#: per-session namespace shift: wire records carry 32-bit pcs, so
#: ``(slot << 32) | key`` is collision-free for every per-branch key space
#: (addresses, HHRT slots, AHRT register ids, history patterns).
_NS_SHIFT = 32
_NS_LIMIT = 1 << _NS_SHIFT

#: schemes whose per-branch keys are derived from the pc and therefore
#: require pcs below the namespace limit to fuse (always true on the wire).
_PC_KEYED_SCHEMES = ("Profile", "LS", "AT", "ST")


class FusedPredictions(NamedTuple):
    """Columnar prediction result for one :class:`PackedTrace` batch.

    ``length`` records were submitted; the conditionals among them sit at
    positions ``index`` (ascending) and carry a predicted-direction column
    and the echoed actual-outcome column.  Equivalent to the list form —
    position ``index[j]`` holds ``bool(predicted[j])``, every other
    position ``None`` — without boxing a Python object per record.
    """

    length: int
    index: Any  # intp array: positions of the conditional records
    predicted: Any  # bool array, one entry per conditional
    taken: Any  # int8 array: actual outcomes, aligned with ``predicted``

    def to_list(self) -> "List[Optional[bool]]":
        out: "List[Optional[bool]]" = [None] * self.length
        for position, prediction in zip(self.index, self.predicted):
            out[position] = bool(prediction)
        return out


class MultiSessionScorer:
    """Many concurrent scoring sessions of *one* spec, fed as fused batches.

    The serve tier's cross-session fusion primitive: every open session
    shares this object with all other sessions of the same spec+backend,
    and a single :meth:`feed_many` call scores queued record batches from
    *all* of them at once.  Per-session state is namespaced so sessions
    never read each other's predictor state — the predictions (and the
    per-session :class:`~repro.sim.results.PredictionStats`) are bit-exact
    with running each session through its own
    :class:`StreamingScorer`, under any chunking and any interleaving of
    sessions within and across ``feed_many`` calls.
    """

    backend = "scalar"

    def __init__(self, spec: SpecLike):
        self.spec = _as_spec(spec)

    # -- session lifecycle ---------------------------------------------
    def open_session(
        self,
        key: int,
        training_records: Optional[Iterable[BranchRecord]] = None,
    ) -> None:
        """Start a new logical session under the caller-chosen ``key``."""
        raise NotImplementedError

    def close_session(self, key: int) -> PredictionStats:
        """End session ``key``, free its state, return its final stats."""
        raise NotImplementedError

    def session_stats(self, key: int) -> PredictionStats:
        raise NotImplementedError

    @property
    def active(self) -> int:
        raise NotImplementedError

    def feed_many(self, batches: "Sequence[tuple]") -> "List[Any]":
        """Score ``[(session key, records), ...]`` as one fused batch.

        Batches appear in arrival order; several batches may name the same
        session (pipelined frames) and are scored in list order.  Returns
        one result per input batch, aligned with its records: a prediction
        list for record-list batches, and (on the vector engine) a
        :class:`FusedPredictions` for :class:`PackedTrace` batches — the
        columnar path never boxes per-record Python objects end to end.
        """
        raise NotImplementedError


class ScalarMultiSessionScorer(MultiSessionScorer):
    """Fusion-shaped facade over independent scalar sessions.

    The scalar engine has no batch dispatch to amortise, so "fusion" here
    is simply feeding each batch to its session's
    :class:`ScalarStreamingScorer` — same interface, same per-session
    results, used when NumPy is absent or the backend resolves scalar.
    """

    backend = "scalar"

    def __init__(self, spec: SpecLike):
        super().__init__(spec)
        self._sessions: Dict[int, ScalarStreamingScorer] = {}

    def open_session(
        self,
        key: int,
        training_records: Optional[Iterable[BranchRecord]] = None,
    ) -> None:
        if key in self._sessions:
            raise ConfigError(f"session {key} is already open")
        self._sessions[key] = ScalarStreamingScorer(self.spec, training_records)

    def close_session(self, key: int) -> PredictionStats:
        return self._sessions.pop(key).stats

    def session_stats(self, key: int) -> PredictionStats:
        return self._sessions[key].stats

    @property
    def active(self) -> int:
        return len(self._sessions)

    def feed_many(
        self, batches: "Sequence[tuple]"
    ) -> "List[List[Optional[bool]]]":
        out = []
        for key, records in batches:
            scorer = self._sessions.get(key)
            if scorer is None:
                raise ConfigError(f"session {key} is not open")
            out.append(scorer.feed(records))
        return out


class VectorMultiSessionScorer(MultiSessionScorer):
    """Cross-session fusion on the carried-state NumPy kernels.

    Each open session owns a *slot* — a compact namespace index — and every
    per-branch key the kernels bucket by is prefixed with it:

    * per-address keys (branch pc, HHRT slot, AHRT register id) become
      ``(slot << 32) | key`` — disjoint int64 ranges, so the stable
      segmented sort that makes per-bucket replay exact (see
      :mod:`repro.sim.kernels`) simultaneously isolates sessions and
      preserves each session's own stream order;
    * pattern-table state lives in one dense array of ``2**k`` rows per
      slot, indexed by ``(slot << k) | pattern``;
    * the global history register of GAg/gshare is carried *per slot* by
      reusing the per-branch history machinery with the slot itself as the
      bucket key — a session's global history is just a "branch" whose
      address is the session;
    * an AHRT session keeps its own carried
      :class:`~repro.sim.kernels.AhrtReplay`, advanced over the session's
      records only (extracted from the fused batch in stream order), so
      LRU state never leaks between sessions.

    Slots are recycled: closing a session sweeps its dict entries and a
    reopened slot's dense rows are re-initialised, so long-running servers
    hold state proportional to *open* sessions only.
    """

    backend = "vector"

    def __init__(self, spec: SpecLike):
        super().__init__(spec)
        np = _np()
        spec = self.spec
        scheme = spec.scheme
        self._slots: Dict[int, int] = {}
        self._free: List[int] = []
        self._capacity = 0
        self._stats: Dict[int, PredictionStats] = {}
        self._guard_pc = scheme in _PC_KEYED_SCHEMES
        self._ahrt_template = None
        if scheme in ("AT", "ST", "LS"):
            if spec.hrt_kind == "AHRT":
                assert spec.hrt_entries is not None
                # validate the geometry once; sessions clone fresh replays
                AhrtReplay(spec.hrt_entries, spec.hrt_associativity)
                self._ahrt_template = (spec.hrt_entries, spec.hrt_associativity)
            elif spec.hrt_kind == "HHRT" and (spec.hrt_entries or 0) < 1:
                raise ConfigError("HHRT entries must be >= 1")
        self._ahrt: Dict[int, AhrtReplay] = {}
        if scheme in ("AT", "ST"):
            assert spec.history_length is not None
            self._histories: Dict[int, int] = {}
        if scheme == "AT":
            assert spec.pt_automaton is not None
            self._pt_bits = spec.history_length
            self._pt_init = spec.pt_automaton.init_state
            self._pt_states = np.zeros(0, dtype=np.intp)
        elif scheme == "ST":
            self._preset = np.zeros((0, 1 << spec.history_length), dtype=bool)
        elif scheme == "LS":
            assert spec.hrt_automaton is not None
            self._site_states: Dict[int, int] = {}
        elif scheme == "Profile":
            self._profiles: Dict[int, "tuple"] = {}
            self._profile_keys = None
            self._profile_bias = None
        elif scheme in ("GAg", "gshare"):
            assert spec.history_length is not None
            self._ghist: Dict[int, int] = {}
            self._ghist_init = (
                (1 << spec.history_length) - 1 if scheme == "GAg" else 0
            )
            self._pt_bits = spec.history_length
            self._pt_init = (spec.pt_automaton or A2).init_state
            self._pt_states = np.zeros(0, dtype=np.intp)
        elif scheme in ("Perceptron", "TAGE"):
            assert spec.history_length is not None
            # per-slot mutable state (weight table / TageState) plus each
            # session's carried global history register
            self._modern: Dict[int, Any] = {}
            self._modern_ghist: Dict[int, int] = {}
        elif scheme not in ("AlwaysTaken", "AlwaysNotTaken", "BTFN", "AT", "ST", "LS"):
            raise ConfigError(f"no streaming vector kernel for {spec.canonical()!r}")

    # -- session lifecycle ---------------------------------------------
    def open_session(
        self,
        key: int,
        training_records: Optional[Iterable[BranchRecord]] = None,
    ) -> None:
        np = _np()
        if key in self._slots:
            raise ConfigError(f"session {key} is already open")
        spec = self.spec
        if needs_training(spec) and training_records is None:
            raise ConfigError(
                f"{spec.canonical()}: session needs training records before scoring"
            )
        scheme = spec.scheme
        # derive training-dependent state *before* allocating the slot so a
        # bad open (unusable training records) leaks nothing
        preset_row = profile = None
        if scheme == "ST":
            assert training_records is not None
            t_pc, t_taken = VectorStreamingScorer._training_columns(
                np, training_records
            )
            preset_row = _preset_bits(np, (t_pc, t_taken), spec.history_length)
        elif scheme == "Profile":
            assert training_records is not None
            t_pc, t_taken = VectorStreamingScorer._training_columns(
                np, training_records
            )
            if len(t_pc) and (
                int(t_pc.min()) < 0 or int(t_pc.max()) >= _NS_LIMIT
            ):
                raise ConfigError("fused sessions require pcs below 2^32")
            profile = _profile_bias(np, (t_pc, t_taken))
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._capacity
            if slot >= _NS_LIMIT:
                raise ConfigError("too many concurrent sessions to namespace")
            self._capacity += 1
            self._grow(np)
        if scheme in ("AT", "GAg", "gshare"):
            bits = self._pt_bits
            self._pt_states[slot << bits:(slot + 1) << bits] = self._pt_init
        if scheme == "Perceptron":
            self._modern[slot] = _perceptron_table(np, spec)
            self._modern_ghist[slot] = 0
        elif scheme == "TAGE":
            self._modern[slot] = TageState(
                spec.tage_tables, spec.tage_entry_bits or DEFAULT_ENTRY_BITS
            )
            self._modern_ghist[slot] = 0
        if self._ahrt_template is not None:
            self._ahrt[slot] = AhrtReplay(*self._ahrt_template)
        if preset_row is not None:
            self._preset[slot] = preset_row
        if profile is not None:
            self._profiles[slot] = profile
            self._profile_keys = None  # combined table is stale
        self._slots[key] = slot
        self._stats[key] = PredictionStats()

    def close_session(self, key: int) -> PredictionStats:
        if key not in self._slots:
            raise ConfigError(f"session {key} is not open")
        slot = self._slots.pop(key)
        scheme = self.spec.scheme
        if scheme in ("AT", "ST"):
            self._sweep(self._histories, slot)
        if scheme == "LS":
            self._sweep(self._site_states, slot)
        if scheme in ("GAg", "gshare"):
            self._ghist.pop(slot, None)
        if scheme in ("Perceptron", "TAGE"):
            self._modern.pop(slot, None)
            self._modern_ghist.pop(slot, None)
        if scheme == "Profile":
            self._profiles.pop(slot, None)
            self._profile_keys = None
        self._ahrt.pop(slot, None)
        self._free.append(slot)
        return self._stats.pop(key)

    def session_stats(self, key: int) -> PredictionStats:
        return self._stats[key]

    @property
    def active(self) -> int:
        return len(self._slots)

    def _grow(self, np: Any) -> None:
        """Extend the dense per-slot tables for one more slot."""
        scheme = self.spec.scheme
        if scheme in ("AT", "GAg", "gshare"):
            block = np.full(1 << self._pt_bits, self._pt_init, dtype=np.intp)
            self._pt_states = np.concatenate([self._pt_states, block])
        elif scheme == "ST":
            row = np.zeros((1, self._preset.shape[1]), dtype=bool)
            self._preset = np.concatenate([self._preset, row])

    @staticmethod
    def _sweep(table: Dict[int, int], slot: int) -> None:
        """Drop a closed slot's namespaced keys from a carried-state dict."""
        prefix = slot << _NS_SHIFT
        stale = [key for key in table if key & ~(_NS_LIMIT - 1) == prefix]
        for key in stale:
            del table[key]

    # -- fused scoring --------------------------------------------------
    def feed_many(self, batches: "Sequence[tuple]") -> "List[Any]":
        np = _np()
        CONDITIONAL = BranchClass.CONDITIONAL
        # Normalise every batch to conditional-only columns.  PackedTrace
        # batches (the serve tier's wire fast path) stay columnar end to
        # end; record lists go through the boxed extraction loop.
        cols = []  # (length, index, pc, target, taken, packed)
        slot_of = []
        for key, records in batches:
            slot = self._slots.get(key)
            if slot is None:
                raise ConfigError(f"session {key} is not open")
            slot_of.append(slot)
            if isinstance(records, PackedTrace):
                flags = np.frombuffer(records.flags, dtype=np.uint8)
                index = np.nonzero((flags & _CLS_MASK) == 0)[0]
                pc = np.asarray(records.pc)[index].astype(np.int64)
                target = np.asarray(records.target)[index].astype(np.int64)
                taken = (flags[index] & 1).astype(np.int8)
                cols.append((len(records), index, pc, target, taken, True))
            else:
                idx, pcs, targets, takens = [], [], [], []
                for i, record in enumerate(records):
                    if record.cls is CONDITIONAL:
                        idx.append(i)
                        pcs.append(record.pc)
                        targets.append(record.target)
                        takens.append(1 if record.taken else 0)
                cols.append(
                    (
                        len(records),
                        np.asarray(idx, dtype=np.intp),
                        np.asarray(pcs, dtype=np.int64),
                        np.asarray(targets, dtype=np.int64),
                        np.asarray(takens, dtype=np.int8),
                        False,
                    )
                )
        counts = [len(entry[1]) for entry in cols]
        total = sum(counts)
        if total:
            pc = np.concatenate([entry[2] for entry in cols])
            target = np.concatenate([entry[3] for entry in cols])
            taken = np.concatenate([entry[4] for entry in cols])
            slots = np.repeat(np.asarray(slot_of, dtype=np.int64), counts)
            if self._guard_pc and (
                int(pc.min()) < 0 or int(pc.max()) >= _NS_LIMIT
            ):
                raise ConfigError("fused sessions require pcs below 2^32")
            predictions = self._predict_fused(np, slots, pc, target, taken)
            correct = predictions == taken.astype(bool)
        else:
            predictions = np.zeros(0, dtype=bool)
            correct = predictions
        outs: "List[Any]" = []
        start = 0
        for b, (key, _records) in enumerate(batches):
            length, index, _pc, _target, batch_taken, packed = cols[b]
            stop = start + counts[b]
            stats = self._stats[key]
            stats.conditional_total += counts[b]
            stats.conditional_correct += int(correct[start:stop].sum())
            if packed:
                outs.append(
                    FusedPredictions(
                        length, index, predictions[start:stop], batch_taken
                    )
                )
            else:
                out: "List[Optional[bool]]" = [None] * length
                for j in range(start, stop):
                    out[index[j - start]] = bool(predictions[j])
                outs.append(out)
            start = stop
        return outs

    def _hrt_fused_keys(self, np: Any, slots: Any, pc: Any) -> Any:
        """Namespaced bucket keys for the fused batch's HRT front-end."""
        spec = self.spec
        if self._ahrt_template is not None:
            keys = np.empty(len(pc), dtype=np.int64)
            for slot in np.unique(slots):
                mask = slots == slot
                keys[mask] = self._ahrt[int(slot)].assign(np, pc[mask])
        elif spec.hrt_kind == "HHRT":
            assert spec.hrt_entries is not None
            keys = _hash_buckets(np, pc, spec.hrt_entries)
        else:
            keys = pc
        return (slots << _NS_SHIFT) | keys

    def _predict_fused(
        self, np: Any, slots: Any, pc: Any, target: Any, taken: Any
    ) -> Any:
        spec = self.spec
        scheme = spec.scheme
        if scheme == "AlwaysTaken":
            return np.ones(len(pc), dtype=bool)
        if scheme == "AlwaysNotTaken":
            return np.zeros(len(pc), dtype=bool)
        if scheme == "BTFN":
            return target < pc
        if scheme == "Profile":
            if self._profile_keys is None:
                self._rebuild_profile(np)
            combined_keys, bias = self._profile_keys, self._profile_bias
            if len(combined_keys) == 0:
                return np.ones(len(pc), dtype=bool)
            queries = (slots << _NS_SHIFT) | pc
            found = np.searchsorted(combined_keys, queries)
            clamped = np.minimum(found, len(combined_keys) - 1)
            known = (found < len(combined_keys)) & (
                combined_keys[clamped] == queries
            )
            return np.where(known, bias[clamped], True)
        if scheme == "LS":
            keys = self._hrt_fused_keys(np, slots, pc)
            return _fsm_predictions_carried(
                np, keys, taken, spec.hrt_automaton, self._site_states
            )
        if scheme in ("AT", "ST"):
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            keys = self._hrt_fused_keys(np, slots, pc)
            patterns = _branch_histories_carried(
                np, keys, taken, spec.history_length, self._histories, mask
            )
            if scheme == "ST":
                return self._preset[slots, patterns]
            return _fsm_predictions_carried(
                np,
                (slots << self._pt_bits) | patterns,
                taken,
                spec.pt_automaton,
                self._pt_states,
            )
        if scheme in ("GAg", "gshare"):
            assert spec.history_length is not None
            mask = (1 << spec.history_length) - 1
            # per-session global history: the slot is the bucket key, so the
            # per-branch carried-history kernel gives each session its own
            # register with zero cross-talk
            histories = _branch_histories_carried(
                np, slots, taken, spec.history_length, self._ghist,
                self._ghist_init,
            )
            if scheme == "gshare":
                index = ((pc >> 2) ^ histories) & mask
            else:
                index = histories
            return _fsm_predictions_carried(
                np,
                (slots << self._pt_bits) | index,
                taken,
                spec.pt_automaton or A2,
                self._pt_states,
            )
        if scheme in ("Perceptron", "TAGE"):
            assert spec.history_length is not None
            # per-slot sub-batches, like the AHRT fused replay: boolean-mask
            # gathers preserve stream order inside every session, and the
            # carried history register round-trips through the slot dict
            out = np.empty(len(pc), dtype=bool)
            for slot in np.unique(slots):
                mask = slots == slot
                slot_index = int(slot)
                histories, carried = _global_histories_carried(
                    np, taken[mask], spec.history_length,
                    self._modern_ghist[slot_index],
                )
                self._modern_ghist[slot_index] = carried
                if scheme == "Perceptron":
                    assert spec.rows is not None
                    rows_index = (pc[mask] >> 2) % spec.rows
                    out[mask] = _perceptron_predictions(
                        np, rows_index, histories, taken[mask],
                        spec.history_length, self._modern[slot_index],
                    )
                else:
                    out[mask] = _tage_predictions(
                        np, pc[mask], histories, taken[mask],
                        self._modern[slot_index],
                    )
            return out
        raise ConfigError(f"no streaming vector kernel for {spec.canonical()!r}")

    def _rebuild_profile(self, np: Any) -> None:
        """Merge the per-slot profile tables into one sorted combined table."""
        keys, bias = [], []
        for slot, (unique_pc, slot_bias) in self._profiles.items():
            keys.append((slot << _NS_SHIFT) | unique_pc)
            bias.append(slot_bias)
        if keys:
            combined = np.concatenate(keys)
            combined_bias = np.concatenate(bias)
            order = np.argsort(combined)
            self._profile_keys = combined[order]
            self._profile_bias = combined_bias[order]
        else:
            self._profile_keys = np.zeros(0, dtype=np.int64)
            self._profile_bias = np.zeros(0, dtype=bool)


def make_multi_scorer(
    spec: SpecLike, backend: Optional[str] = None
) -> MultiSessionScorer:
    """Build the fused multi-session scorer for ``spec`` on ``backend``.

    Backend resolution matches :func:`make_scorer` exactly, so a fusion
    group and the equivalent independent sessions always score on the same
    engine — and therefore produce identical predictions.
    """
    parsed = _as_spec(spec)
    if choose_backend(parsed, backend) == "vector":
        return VectorMultiSessionScorer(parsed)
    return ScalarMultiSessionScorer(parsed)


def make_scorer(
    spec: SpecLike,
    backend: Optional[str] = None,
    training_records: Optional[Iterable[BranchRecord]] = None,
) -> StreamingScorer:
    """Build the streaming scorer for ``spec`` on the chosen backend.

    ``backend`` accepts the usual ``auto`` / ``scalar`` / ``vector`` (or
    ``None`` for the process default); the resolution rules are those of
    the offline dispatch (:func:`repro.sim.kernels.choose_backend`).  Every
    registry spec family — finite HRTs included — now has a vector session,
    and the predictions are identical whichever backend runs.
    """
    parsed = _as_spec(spec)
    if training_records is not None and not isinstance(training_records, (list, tuple)):
        training_records = list(training_records)
    if choose_backend(parsed, backend) == "vector":
        return VectorStreamingScorer(parsed, training_records)
    return ScalarStreamingScorer(parsed, training_records)
