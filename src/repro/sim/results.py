"""Statistics objects and aggregation for simulation results.

The paper reports *prediction accuracy* per benchmark and three geometric
means per scheme: across all benchmarks ("Tot G Mean"), across the integer
benchmarks ("Int G Mean") and across the floating-point benchmarks
("FP G Mean").  :class:`SweepResult` mirrors that structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; empty input returns 0.0, zero values are clamped to a
    tiny positive number so one catastrophic benchmark cannot zero the mean."""
    if not values:
        return 0.0
    total = 0.0
    for value in values:
        total += math.log(max(value, 1e-12))
    return math.exp(total / len(values))


@dataclass
class PredictionStats:
    """Scoring of one predictor over one trace."""

    conditional_total: int = 0
    conditional_correct: int = 0
    returns_total: int = 0
    returns_correct: int = 0

    @property
    def accuracy(self) -> float:
        """Conditional-branch prediction accuracy (the paper's metric)."""
        if not self.conditional_total:
            return 0.0
        return self.conditional_correct / self.conditional_total

    @property
    def miss_rate(self) -> float:
        """1 - accuracy: the pipeline-flush rate the paper emphasises."""
        return 1.0 - self.accuracy if self.conditional_total else 0.0

    @property
    def return_accuracy(self) -> float:
        """Return-address-stack target prediction accuracy."""
        if not self.returns_total:
            return 0.0
        return self.returns_correct / self.returns_total


@dataclass
class BenchmarkResult:
    """One (scheme, benchmark) cell of a figure."""

    scheme: str
    benchmark: str
    stats: PredictionStats

    @property
    def accuracy(self) -> float:
        return self.stats.accuracy


@dataclass
class SweepResult:
    """A full sweep: scheme -> benchmark -> result, plus the paper's three
    geometric-mean summary columns.

    ``categories`` maps each benchmark to ``"integer"`` or ``"fp"`` so the
    Int/FP means can be computed; benchmarks missing from it are counted only
    in the total mean.
    """

    results: Dict[str, Dict[str, BenchmarkResult]] = field(default_factory=dict)
    categories: Dict[str, str] = field(default_factory=dict)

    def add(self, result: BenchmarkResult, category: Optional[str] = None) -> None:
        self.results.setdefault(result.scheme, {})[result.benchmark] = result
        if category:
            self.categories[result.benchmark] = category

    def schemes(self) -> List[str]:
        return list(self.results)

    def benchmarks(self) -> List[str]:
        names: List[str] = []
        for per_benchmark in self.results.values():
            for name in per_benchmark:
                if name not in names:
                    names.append(name)
        return names

    def accuracy(self, scheme: str, benchmark: str) -> float:
        return self.results[scheme][benchmark].accuracy

    def accuracies(self, scheme: str) -> Dict[str, float]:
        return {name: r.accuracy for name, r in self.results[scheme].items()}

    def mean(self, scheme: str, category: Optional[str] = None) -> float:
        """Geometric mean accuracy for a scheme: the paper's "Tot G Mean"
        (category None), "Int G Mean" (``"integer"``) or "FP G Mean"
        (``"fp"``)."""
        values = [
            result.accuracy
            for benchmark, result in self.results[scheme].items()
            if category is None or self.categories.get(benchmark) == category
        ]
        return geometric_mean(values)

    def summary_rows(self) -> List[Dict[str, float]]:
        """One dict per scheme with per-benchmark accuracies and the three
        geometric means — the rows the benches print."""
        rows: List[Dict[str, float]] = []
        for scheme in self.results:
            row: Dict[str, float] = dict(self.accuracies(scheme))
            row["Tot G Mean"] = self.mean(scheme)
            row["Int G Mean"] = self.mean(scheme, "integer")
            row["FP G Mean"] = self.mean(scheme, "fp")
            rows.append({"scheme": scheme, **row})  # type: ignore[dict-item]
        return rows
