"""Simulation backend selection: the scalar engine vs the vectorized kernels.

Two backends can score a predictor spec over a packed trace:

* ``scalar`` — the authoritative pure-Python engine
  (:func:`repro.sim.engine.simulate` / ``simulate_packed``), always
  available, the reference for every correctness claim in the repo.
* ``vector`` — the columnar kernels in :mod:`repro.sim.kernels`, which
  score whole predictor families with NumPy batch operations.  NumPy is an
  *optional* dependency: the kernels are only offered when it imports.

``auto`` (the default everywhere) resolves to ``vector`` when NumPy is
installed and the spec is vectorizable, and to ``scalar`` otherwise, so the
fast path is picked up automatically without changing any result — the
kernels are bit-exact against the scalar engine, and specs they cannot
express exactly fall back to the scalar path transparently.

The process-wide default can be forced with the ``REPRO_BACKEND``
environment variable (same three values); the CLI's ``--backend`` flag
overrides per invocation.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.errors import ConfigError

#: accepted ``--backend`` / ``REPRO_BACKEND`` values.
BACKEND_CHOICES = ("auto", "scalar", "vector")

_NUMPY: Any = None
_NUMPY_CHECKED = False


def numpy_or_none() -> Any:
    """The :mod:`numpy` module if importable, else ``None`` (cached)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy  # noqa: PLC0415 - optional dependency probe

            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
    return _NUMPY


def has_numpy() -> bool:
    """Whether the optional NumPy dependency is available."""
    return numpy_or_none() is not None


def validate_env_backend() -> Optional[str]:
    """Fail fast on an invalid ``REPRO_BACKEND`` value.

    Returns the normalised value (or ``None`` when unset/empty); raises
    :class:`~repro.errors.ConfigError` naming :data:`BACKEND_CHOICES` for
    anything else.  The CLI calls this at startup so a typo'd environment
    cannot silently fall back to ``auto`` or surface mid-sweep.
    """
    raw = os.environ.get("REPRO_BACKEND")
    if raw is None:
        return None
    value = raw.strip().lower()
    if not value:
        return None
    if value not in BACKEND_CHOICES:
        raise ConfigError(
            f"invalid REPRO_BACKEND value {raw!r}; expected one of {BACKEND_CHOICES}"
        )
    return value


def default_backend() -> str:
    """The process default: ``REPRO_BACKEND`` when set, else ``auto``.

    An invalid ``REPRO_BACKEND`` raises :class:`~repro.errors.ConfigError`
    (see :func:`validate_env_backend`) rather than silently degrading.
    """
    return validate_env_backend() or "auto"


def resolve_backend(choice: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete ``scalar`` / ``vector``.

    ``None`` means "use the process default" (:func:`default_backend`).
    ``auto`` picks ``vector`` exactly when NumPy is importable.  An explicit
    ``vector`` without NumPy raises :class:`~repro.errors.ConfigError` —
    the user asked for something the environment cannot provide — whereas
    ``auto`` silently degrades.
    """
    if choice is None:
        choice = default_backend()
    choice = choice.strip().lower()
    if choice not in BACKEND_CHOICES:
        raise ConfigError(
            f"unknown backend {choice!r}; expected one of {BACKEND_CHOICES}"
        )
    if choice == "auto":
        return "vector" if has_numpy() else "scalar"
    if choice == "vector" and not has_numpy():
        raise ConfigError(
            "backend 'vector' requires NumPy, which is not installed"
            " (use 'auto' to fall back to the scalar engine automatically)"
        )
    return choice
