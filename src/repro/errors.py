"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an application boundary.  Subsystems define
narrower classes below it; raising a bare ``ValueError`` from library code is
reserved for genuine programming errors (bad types, impossible arguments).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class AssemblyError(ReproError):
    """A source program could not be assembled.

    Carries the source line number when known so tooling can point at the
    offending line.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """An instruction could not be encoded to, or decoded from, binary."""


class ExecutionError(ReproError):
    """The CPU interpreter hit a fault (bad opcode, unmapped jump, ...)."""

    def __init__(self, message: str, pc: int | None = None):
        self.pc = pc
        if pc is not None:
            message = f"pc={pc:#010x}: {message}"
        super().__init__(message)


class TraceFormatError(ReproError):
    """A trace file or stream is malformed."""


class StoreError(TraceFormatError):
    """A trace-store shard is corrupt, truncated, or unreadable.

    Messages follow the truncation convention of the trace readers: report
    the promised byte/record counts next to what was actually received, so
    ``repro cache --verify`` output pinpoints the damage.  Subclasses
    :class:`TraceFormatError` because a shard is just a columnar trace
    container; catching the narrower type distinguishes store-layer damage
    from a malformed ``.trc`` file.
    """


class ConfigError(ReproError):
    """A predictor or experiment configuration is invalid."""


class SpecParseError(ConfigError):
    """A predictor specification string (Table 2 naming convention) is
    syntactically or semantically invalid."""


class WorkloadError(ReproError):
    """A workload or data set was requested that does not exist or cannot
    be built."""


class KernelError(ReproError):
    """A vectorized kernel was asked to score a spec it cannot express
    exactly (or NumPy is unavailable); callers fall back to the scalar
    engine."""


class ProtocolError(ReproError):
    """A prediction-service frame was malformed or violated the session
    protocol (see :mod:`repro.serve.protocol`).

    Carries a stable machine-readable ``code`` (one of
    :data:`repro.serve.protocol.ERROR_CODES`) so clients and tests can
    distinguish failure modes without parsing the message text.  The server
    reports these to the offending connection as typed error frames; the
    client raises them when such a frame arrives.
    """

    def __init__(self, message: str, code: str = "protocol"):
        self.code = code
        super().__init__(message)
