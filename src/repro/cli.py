"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``repro run <exp-id> [--scale N] [--benchmarks a,b,...]`` — regenerate a
  paper table/figure and print it with its shape checks.
* ``repro run all`` — regenerate everything.
* ``repro sweep <spec> [<spec> ...]`` — simulate arbitrary Table 2
  configuration strings over the suite.
* ``repro trace <workload> [--dataset test|train] [--scale N] [-o FILE]`` —
  generate a workload trace (optionally writing the binary trace file).
* ``repro asm <file.s> [--run] [--trace FILE]`` — assemble (and optionally
  execute) an assembly source file on the bundled ISA.
* ``repro disasm <workload>`` — print a workload program's listing.
* ``repro lint [<workload>|<file.s> ...]`` — static analysis (CFG, dataflow,
  rules R001..R008) over workload programs or assembly files; optional
  static-vs-dynamic cross-validation.  See ``docs/analysis.md``.
* ``repro h2p [--top N] [--scale N] [--benchmarks a,b,...]`` — score the
  modern subsystem (perceptron, TAGE) against AT and gshare on the static
  H2P ranking, with per-site misprediction-mass recovery (fig11).
* ``repro serve [--host H] [--port P] [--backend B] ...`` — run the online
  prediction service (sessions over TCP; see ``docs/serving.md``).
* ``repro bench-serve [--sessions N] [--scale N] ...`` — load-test an
  in-process server and write ``BENCH_serve.json``.
* ``repro cache [--verify] [--evict STEM ...] [--clear]`` — inspect and
  manage the on-disk trace store (shards, sizes, hit counts).
* ``repro list`` — list experiments, workloads and example spec strings.

Every ``--scale`` flag accepts an integer conditional-branch cap or the
``paper`` preset (20,000,000 — the paper's per-benchmark simulation length).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import experiment_ids, get_experiment
from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.isa.disassembler import disassemble_program
from repro.sim.backend import BACKEND_CHOICES, validate_env_backend
from repro.sim.runner import run_sweep
from repro.trace.encoding import write_trace
from repro.trace.text_format import write_text_trace
from repro.trace.stats import conditional_pc_histogram, static_branch_census, taken_rate
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    TraceCache,
    default_cache,
    default_cache_dir,
    get_workload,
    parse_scale,
    workload_names,
)


def _parse_benchmarks(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [name.strip() for name in text.split(",") if name.strip()]


def _scale_arg(text: str) -> int:
    """argparse type for ``--scale``: an integer or the ``paper`` preset."""
    try:
        return parse_scale(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _human_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f}{unit}" if unit != "B" else f"{int(count)}B"
        count /= 1024
    return f"{count:.1f}GiB"  # pragma: no cover - loop always returns


def _build_cache(args: argparse.Namespace) -> TraceCache:
    """The trace cache the command should use.

    ``--no-cache`` forces memory-only, ``--cache-dir`` selects an explicit
    disk directory, otherwise the shared default cache (disk-backed under
    ``~/.cache/repro-traces`` unless ``REPRO_CACHE_DIR`` overrides it).
    """
    if getattr(args, "no_cache", False):
        return TraceCache(disk_dir=None)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return TraceCache(disk_dir=cache_dir)
    return default_cache()


def _cmd_run(args: argparse.Namespace) -> int:
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    benchmarks = _parse_benchmarks(args.benchmarks)
    cache = _build_cache(args)
    failures = 0
    for exp_id in ids:
        spec = get_experiment(exp_id)
        report = spec.run(
            max_conditional=args.scale,
            benchmarks=benchmarks,
            cache=cache,
            jobs=args.jobs,
            backend=args.backend,
        )
        print(report.render())
        print()
        failures += len(report.failures())
    if failures:
        print(f"{failures} shape check(s) FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = run_sweep(
        args.specs,
        benchmarks=_parse_benchmarks(args.benchmarks),
        max_conditional=args.scale,
        cache=_build_cache(args),
        jobs=args.jobs,
        backend=args.backend,
    )
    if args.format != "table":
        from repro.sim.export import sweep_to_csv, sweep_to_markdown

        renderer = sweep_to_csv if args.format == "csv" else sweep_to_markdown
        print(renderer(sweep), end="" if args.format == "csv" else "\n")
        return 0
    benchmarks = sweep.benchmarks()
    header = f"{'scheme':42s}" + "".join(f"{name[:8]:>10s}" for name in benchmarks)
    header += f"{'Tot':>8s}{'Int':>8s}{'FP':>8s}"
    print(header)
    for scheme in sweep.schemes():
        accuracies = sweep.accuracies(scheme)
        cells = "".join(
            (f"{accuracies[name]:10.4f}" if name in accuracies else f"{'--':>10s}")
            for name in benchmarks
        )
        print(
            f"{scheme:42s}{cells}"
            f"{sweep.mean(scheme):8.4f}"
            f"{sweep.mean(scheme, 'integer'):8.4f}"
            f"{sweep.mean(scheme, 'fp'):8.4f}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    # through the cache, so the expensive generation lands in (or warm-loads
    # from) the shard store — `repro trace X --scale paper` is the documented
    # way to pre-pay a paper-scale trace once per machine
    trace = _build_cache(args).get(workload, args.dataset, args.scale)
    mix = trace.mix
    census = static_branch_census(trace.records)
    print(f"workload:            {workload.name} [{workload.category}]")
    print(f"data set:            {workload.dataset(args.dataset).name}")
    print(f"instructions:        {mix.total_instructions}")
    print(f"branches:            {mix.total_branches} ({100 * mix.branch_fraction:.1f}%)")
    print(f"conditional:         {mix.conditional}")
    print(f"taken rate:          {100 * taken_rate(trace.records):.1f}%")
    print(f"static conditional:  {census.static_conditional}")
    if args.hot:
        histogram = conditional_pc_histogram(trace.records)
        total = sum(histogram.values())
        print(f"\nhottest {args.hot} conditional branch sites:")
        for pc in sorted(histogram, key=histogram.__getitem__, reverse=True)[: args.hot]:
            share = histogram[pc] / total
            print(f"  {pc:#010x}  {histogram[pc]:>8d} executions  ({share:6.2%})")
    if args.output:
        writer = write_text_trace if args.output.endswith(".txt") else write_trace
        count = writer(trace.records, args.output)
        print(f"wrote {count} records to {args.output}")
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    with open(args.source) as handle:
        source = handle.read()
    program = assemble(source)
    print(f"assembled {len(program)} instructions, {len(program.data)} data words")
    if args.listing:
        print(disassemble_program(program))
    if args.run or args.trace:
        cpu = CPU(program)
        result = cpu.run(
            max_instructions=args.max_instructions,
            max_conditional_branches=args.scale,
        )
        mix = result.mix
        print(f"executed {result.instructions_executed} instructions"
              f" ({'halted' if result.halted else 'limit reached'})")
        print(f"branches: {mix.total_branches} ({mix.conditional} conditional)")
        print(f"taken rate: {100 * taken_rate(result.branch_records):.1f}%")
        if args.trace:
            writer = write_text_trace if args.trace.endswith(".txt") else write_trace
            count = writer(result.branch_records, args.trace)
            print(f"wrote {count} records to {args.trace}")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    program = assemble(workload.build_source(workload.dataset(args.dataset)))
    print(disassemble_program(program))
    return 0


def _lint_targets(args: argparse.Namespace) -> "List[tuple[str, str, object]]":
    """Resolve lint targets to ``(display_name, kind, payload)`` triples.

    ``kind`` is ``"workload"`` (payload: ``(workload, dataset)``) or
    ``"file"`` (payload: source text).  No targets means every workload.
    """
    from repro.errors import ReproError as _ReproError

    targets = args.targets or workload_names()
    resolved: "List[tuple[str, str, object]]" = []
    for target in targets:
        if target.endswith(".s") or "/" in target:
            try:
                with open(target) as handle:
                    resolved.append((target, "file", handle.read()))
            except OSError as exc:
                raise _ReproError(f"cannot read {target}: {exc}") from exc
            continue
        workload = get_workload(target)
        roles = sorted(workload.datasets) if args.dataset == "both" else [args.dataset]
        for role in roles:
            if role not in workload.datasets:
                # Listing every workload tolerates absent roles (e.g. most
                # have no train set); naming one explicitly does not.
                if args.targets:
                    raise _ReproError(
                        f"workload '{workload.name}' has no '{role}' dataset"
                        f" (available: {sorted(workload.datasets)})"
                    )
                continue
            resolved.append(
                (f"{workload.name}:{role}", "workload", (workload, workload.dataset(role)))
            )
    return resolved


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import cross_validate, lint_program, lint_source

    reports = []
    worst = 0
    for display, kind, payload in _lint_targets(args):
        if kind == "file":
            result = lint_source(payload, name=display)
            crossval = None
        else:
            workload, dataset = payload
            program = assemble(workload.build_source(dataset))
            result = lint_program(program, name=display)
            crossval = None
            if args.cross_validate:
                trace = workload.generate(dataset, args.scale)
                crossval = cross_validate(program, trace.records, name=display)
        entry = result.as_dict()
        if crossval is not None:
            entry["cross_validation"] = crossval.as_dict()
        reports.append(entry)

        failing = bool(result.errors) or (args.strict and result.diagnostics)
        if crossval is not None and not crossval.ok:
            failing = True
        worst = max(worst, 1 if failing else 0)

        if not args.json:
            if result.clean:
                status = f"clean ({len(result.cfg.blocks)} blocks, {len(result.cfg.edges)} edges)"
            else:
                status = f"{len(result.errors)} error(s), {len(result.warnings)} warning(s)"
            print(f"{display}: {status}")
            for diagnostic in result.diagnostics:
                print(f"  {diagnostic.render()}")
            if crossval is not None:
                verdict = "agrees" if crossval.ok else "DISAGREES"
                print(
                    f"  cross-validation: {verdict} "
                    f"({crossval.observed_static}/{crossval.static_total} static sites "
                    f"observed; BTFN {crossval.static_btfn_correct}"
                    f"/{crossval.btfn_total} analytic vs "
                    f"{crossval.simulated_btfn_correct} simulated)"
                )
                for mismatch in crossval.mismatches:
                    print(f"    {mismatch}")

    if args.json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "programs": reports,
                    "summary": {
                        "programs": len(reports),
                        "errors": sum(r["errors"] for r in reports),
                        "warnings": sum(r["warnings"] for r in reports),
                        "exit": worst,
                    },
                },
                indent=2,
            )
        )
    elif len(reports) > 1:
        errors = sum(r["errors"] for r in reports)
        warnings = sum(r["warnings"] for r in reports)
        print(f"{len(reports)} program(s): {errors} error(s), {warnings} warning(s)")
    return worst


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_program, validate_predictability

    reports = []
    worst = 0
    for display, kind, payload in _lint_targets(args):
        if kind == "file":
            program = assemble(payload)
            workload = dataset = None
        else:
            workload, dataset = payload
            program = assemble(workload.build_source(dataset))
        report = analyze_program(program, args.scale, name=display)
        validation = None
        if args.cross_validate and workload is not None:
            trace = workload.generate(dataset, args.scale)
            validation = validate_predictability(
                program,
                trace.records,
                args.scale,
                name=display,
                report=report,
            )
            if not validation.ok:
                worst = max(worst, 1)

        entry = report.as_dict()
        if validation is not None:
            entry["cross_validation"] = validation.as_dict()
        reports.append(entry)

        if not args.json:
            counts = report.class_counts
            walk = (
                "complete walk"
                if report.walk_complete
                else f"partial walk ({report.walk_stop_reason})"
            )
            print(
                f"{display}: {walk}, {report.known_conditionals} conditionals, "
                f"{len(report.sites)} sites — "
                + ", ".join(f"{n} {cls}" for cls, n in counts.items())
            )
            known_trips = [
                s for s in report.loops if s.trip_count is not None
            ]
            if known_trips:
                sample = ", ".join(
                    f"{s.header:#x}:{s.trip_count}" for s in known_trips[:4]
                )
                print(
                    f"  loops with known trip counts: {len(known_trips)}"
                    f" ({sample}{', ...' if len(known_trips) > 4 else ''})"
                )
            h2p = report.h2p_ranking()[:5]
            if h2p:
                print(
                    "  H2P top-5 ("
                    + report.reference_scheme
                    + " mass): "
                    + ", ".join(f"{pc:#x}({mass})" for pc, mass in h2p)
                )
            if validation is not None:
                verdict = "agrees" if validation.ok else "DISAGREES"
                print(
                    f"  cross-validation: {verdict} "
                    f"({validation.sites_checked} sites x "
                    f"{validation.schemes_checked} schemes)"
                )
                for mismatch in validation.mismatches[:20]:
                    print(f"    {mismatch}")

    if args.json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "programs": reports,
                    "summary": {
                        "programs": len(reports),
                        "cross_validated": sum(
                            1 for r in reports if "cross_validation" in r
                        ),
                        "exit": worst,
                    },
                },
                indent=2,
            )
        )
    elif len(reports) > 1:
        sites = sum(len(r["sites"]) for r in reports)
        print(f"{len(reports)} program(s), {sites} conditional site(s) analyzed")
    return worst


def _cmd_h2p(args: argparse.Namespace) -> int:
    from repro.experiments.fig11_h2p import SPECS, run as run_fig11, site_table

    benchmarks = _parse_benchmarks(args.benchmarks)
    cache = _build_cache(args)
    report = run_fig11(
        max_conditional=args.scale,
        benchmarks=benchmarks,
        cache=cache,
        backend=args.backend,
        top=args.top,
    )
    sites = site_table(
        max_conditional=args.scale,
        benchmarks=benchmarks,
        cache=cache,
        backend=args.backend,
        top=args.top,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "exp_id": report.exp_id,
                    "title": report.title,
                    "schemes": list(SPECS),
                    "rows": report.rows,
                    "sites": sites,
                    "shape_checks": [
                        {
                            "description": check.description,
                            "passed": check.passed,
                            "detail": check.detail,
                        }
                        for check in report.shape_checks
                    ],
                    "notes": report.notes,
                },
                indent=2,
            )
        )
    else:
        print(report.render())
        if sites:
            from repro.experiments.reporting import render_table

            print("\nPer-site mispredictions (static H2P ranking):")
            print(render_table(sites))
    if not report.all_passed:
        print(
            f"{len(report.failures())} shape check(s) FAILED", file=sys.stderr
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import PredictionServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        max_connections=args.max_connections,
        max_frame_bytes=args.max_frame_bytes,
        read_timeout=args.read_timeout,
        drain_timeout=args.drain_timeout,
    )

    if args.workers > 1:
        import signal as signal_module

        from repro.serve.supervisor import Supervisor

        supervisor = Supervisor(config, workers=args.workers)
        supervisor.start()
        print(
            f"repro serve: listening on {supervisor.host}:{supervisor.port}"
            f" across {args.workers} workers"
            f" ({'SO_REUSEPORT' if supervisor.reuseport else 'inherited socket'},"
            f" backend={args.backend or 'auto'},"
            f" stats endpoint on port {supervisor.control_port})"
        )
        print("protocol: docs/serving.md; stop with SIGTERM/Ctrl-C (graceful drain)")
        holder: dict = {}

        def _drain(_signum: int, _frame: object) -> None:
            holder["final"] = supervisor.stop(drain=True)

        signal_module.signal(signal_module.SIGTERM, _drain)
        signal_module.signal(signal_module.SIGINT, _drain)
        supervisor.join()
        final = (holder.get("final") or supervisor.stop())["aggregate"]
        print(
            f"drained: {final['sessions_total']} session(s),"
            f" {final['records_served']} records served"
            f" across {args.workers} worker(s)"
        )
        return 0

    async def _main() -> None:
        server = PredictionServer(config)
        await server.start()
        server.install_signal_handlers()
        print(
            f"repro serve: listening on {server.host}:{server.port}"
            f" (backend={args.backend or 'auto'},"
            f" max_connections={config.max_connections},"
            f" read_timeout={config.read_timeout:g}s)"
        )
        print("protocol: docs/serving.md; stop with SIGTERM/Ctrl-C (graceful drain)")
        await server.wait_closed()
        final = server.stats.as_dict()
        print(
            f"drained: {final['sessions_total']} session(s),"
            f" {final['records_served']} records served"
        )

    asyncio.run(_main())
    return 0


def _compact_bench_sessions(sessions: list) -> list:
    """Group identical per-session bench entries so BENCH_serve.json stays
    readable when thousands of sessions ran."""
    groups: dict = {}
    for session in sessions:
        key = (session["spec"], session["variant"], session["backend"])
        group = groups.setdefault(
            key,
            {
                "spec": session["spec"],
                "variant": session["variant"],
                "backend": session["backend"],
                "sessions": 0,
                "records": 0,
                "frames": 0,
                "accuracy": session["accuracy"],
                "p50_ms": [],
                "p99_ms": [],
            },
        )
        group["sessions"] += 1
        group["records"] += session["records"]
        group["frames"] += session["frames"]
        group["p50_ms"].append(session["latency"]["p50_ms"])
        group["p99_ms"].append(session["latency"]["p99_ms"])
    compacted = []
    for group in groups.values():
        p50s, p99s = sorted(group.pop("p50_ms")), sorted(group.pop("p99_ms"))
        group["latency"] = {
            "p50_ms_median": p50s[len(p50s) // 2],
            "p99_ms_median": p99s[len(p99s) // 2],
            "p99_ms_max": p99s[-1],
        }
        compacted.append(group)
    return compacted


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import (
        DEFAULT_BENCH_BENCHMARKS,
        DEFAULT_BENCH_SPECS,
        bench_serve,
    )

    specs = args.specs or list(DEFAULT_BENCH_SPECS)
    benchmarks = _parse_benchmarks(args.benchmarks) or list(DEFAULT_BENCH_BENCHMARKS)
    result = bench_serve(
        specs=specs,
        benchmarks=benchmarks,
        sessions=args.sessions,
        scale=args.scale,
        chunk=args.chunk,
        window=args.window,
        backend=args.backend if args.backend != "auto" else None,
        verify=not args.no_verify,
        cache=_build_cache(args),
        connections=args.connections,
        workers=args.workers,
    )

    import datetime

    entry = {"date": datetime.date.today().isoformat(), **result}
    if len(entry["sessions"]) > 16:
        entry["sessions"] = _compact_bench_sessions(entry["sessions"])
    entries: list = []
    if os.path.exists(args.output):
        try:
            with open(args.output) as handle:
                existing = json.load(handle)
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict) and isinstance(existing.get("entries"), list):
            entries = existing["entries"]
        elif isinstance(existing, dict) and existing:
            # a pre-trend single-run payload becomes the first trend entry
            entries = [{"date": None, **existing}]
    entries.append(entry)
    with open(args.output, "w") as handle:
        json.dump({"entries": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")

    totals = result["totals"]
    latency = totals["latency"]
    print(
        f"bench-serve: {args.sessions} session(s) over"
        f" {result['config']['connections']} connection(s),"
        f" {args.workers} worker(s): {totals['records']} records in"
        f" {totals['wall_seconds']:.3f}s = {totals['records_per_sec']:.0f} records/s"
    )
    print(
        f"latency per frame: p50 {latency['p50_ms']:.2f} ms,"
        f" p99 {latency['p99_ms']:.2f} ms over {latency['frames']} frames"
        f" (parity: {totals['parity']})"
    )
    shown = result["sessions"][:16]
    for session in shown:
        print(
            f"  {session['spec']:38s} {session['variant']:14s}"
            f" [{session['backend']}] acc={session['accuracy']:.4f}"
            f" {session['records_per_sec']:>9.0f} rec/s"
        )
    if len(result["sessions"]) > len(shown):
        print(f"  ... and {len(result['sessions']) - len(shown)} more session(s)")
    print(f"appended to {args.output} ({len(entries)} trend entries)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect / manage the shard store behind the disk trace cache.

    The sweep-result cache (:mod:`repro.sim.result_cache`) lives in
    ``results/`` under the same root and is managed here too: the default
    listing shows its rows, ``--evict`` accepts result digests alongside
    shard stems, and ``--clear`` wipes both.
    """
    from repro.sim.result_cache import ResultCache
    from repro.trace.store import TraceStore

    root = args.cache_dir or default_cache_dir()
    if root is None:
        print(
            "error: the disk trace cache is disabled"
            " (REPRO_CACHE_DIR is set but empty)",
            file=sys.stderr,
        )
        return 2
    store = TraceStore(root)
    results = ResultCache(store.root / "results")
    if args.clear:
        removed = store.clear()
        removed_rows = results.clear()
        print(
            f"cleared {removed} shard(s) and {removed_rows} cached"
            f" sweep result(s) from {store.root}"
        )
        return 0
    if args.evict:
        removed = store.evict(args.evict)
        for stem in removed:
            print(f"evicted {stem}")
        missing = []
        for stem in args.evict:
            if stem in removed:
                continue
            if results.evict(stem):
                print(f"evicted result {stem}")
            else:
                missing.append(stem)
        for stem in missing:
            print(f"no such shard or result: {stem}", file=sys.stderr)
        return 1 if missing else 0
    if args.verify:
        verified = store.verify()
        corrupt = 0
        for stem, error in verified:
            if error is None:
                print(f"ok       {stem}")
            else:
                corrupt += 1
                print(f"CORRUPT  {stem}: {error}")
        print(f"{len(verified)} shard(s), {corrupt} corrupt")
        return 1 if corrupt else 0
    infos = store.entries()
    total = sum(info.bytes for info in infos)
    print(f"trace store: {store.root}")
    print(
        f"{len(infos)} shard(s), {_human_bytes(total)} used"
        f" of {_human_bytes(store.max_bytes)} bound"
    )
    if infos:
        print(f"\n{'shard':52s}{'size':>10s}{'records':>12s}{'comp':>6s}{'hits':>6s}")
        for info in sorted(infos, key=lambda i: i.last_used, reverse=True):
            print(
                f"{info.stem:52s}{_human_bytes(info.bytes):>10s}"
                f"{info.records:>12d}{info.compression:>6s}{info.hits:>6d}"
            )
    rows = list(results.entries())
    if rows:
        row_bytes = sum(entry.size_bytes for entry in rows)
        print(
            f"\n{len(rows)} cached sweep result(s),"
            f" {_human_bytes(row_bytes)} (digest / spec @ test trace)"
        )
        for entry in rows:
            print(f"  {entry.digest}  [{entry.backend}] {entry.spec} @ {entry.test_stem}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    print("Experiments:")
    for exp_id in experiment_ids():
        spec = get_experiment(exp_id)
        print(f"  {exp_id:8s} {spec.paper_ref:22s} {spec.title}")
    print("\nWorkloads:")
    for name in workload_names():
        workload = get_workload(name)
        roles = ", ".join(sorted(workload.datasets))
        print(f"  {name:10s} [{workload.category:7s}] data sets: {roles}")
    print("\nExample predictor specs:")
    for example in (
        "AT(AHRT(512,12SR),PT(2^12,A2),)",
        "ST(IHRT(,12SR),PT(2^12,PB),Diff)",
        "LS(AHRT(512,A2),,)",
        "BTFN",
        "gshare(12)",
        "perceptron(12,512)",
        "tage(4,9)",
    ):
        print(f"  {example}")
    print(
        "\nStatic analysis: repro lint [workload|file.s ...]"
        " (rules R001..R011; see docs/analysis.md)"
    )
    print(
        "Predictability: repro analyze [workload|file.s ...] (classes,"
        " per-scheme bounds, H2P ranking; --cross-validate checks them"
        " against the simulator)"
    )
    print(
        "Modern schemes: repro h2p (perceptron/TAGE vs AT on the static"
        " H2P sites; see docs/predictors.md)"
    )
    print(
        "Serving: repro serve (online prediction sessions over TCP) and"
        " repro bench-serve (load test + BENCH_serve.json); see docs/serving.md"
    )
    return 0


def _add_perf_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by the sweep-running subcommands (run, sweep)."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep grid (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="auto",
        help="simulation backend: vectorized NumPy kernels, the pure-Python"
             " scalar engine, or auto-detect (results are identical)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH",
        help="disk trace-cache directory (default: ~/.cache/repro-traces,"
             " or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the disk trace cache (keep traces in memory only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Yeh & Patt's Two-Level Adaptive Training (MICRO 1991)",
    )
    from repro import __version__

    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="regenerate a paper table/figure")
    run_parser.add_argument("experiment", help="experiment id (fig3..fig10, table1, table2) or 'all'")
    run_parser.add_argument(
        "--scale",
        type=_scale_arg,
        default=DEFAULT_CONDITIONAL_BRANCHES,
        help="conditional branches simulated per benchmark, or 'paper'"
             " for the paper's 20,000,000",
    )
    run_parser.add_argument("--benchmarks", help="comma-separated workload subset")
    _add_perf_options(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep", help="simulate arbitrary predictor specs")
    sweep_parser.add_argument("specs", nargs="+", help="Table 2 configuration strings")
    sweep_parser.add_argument(
        "--scale", type=_scale_arg, default=DEFAULT_CONDITIONAL_BRANCHES,
        help="conditional branches per benchmark, or 'paper' (20,000,000)",
    )
    sweep_parser.add_argument("--benchmarks", help="comma-separated workload subset")
    sweep_parser.add_argument(
        "--format", choices=("table", "csv", "markdown"), default="table",
        help="output format",
    )
    _add_perf_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    trace_parser = sub.add_parser("trace", help="generate a workload trace")
    trace_parser.add_argument("workload", choices=workload_names())
    trace_parser.add_argument("--dataset", default="test", choices=("test", "train"))
    trace_parser.add_argument("--scale", type=_scale_arg, default=DEFAULT_CONDITIONAL_BRANCHES)
    trace_parser.add_argument(
        "--hot", type=int, default=0, metavar="N",
        help="also print the N hottest conditional branch sites",
    )
    trace_parser.add_argument(
        "-o", "--output",
        help="write the trace to this path (binary; .txt selects the text format)",
    )
    trace_parser.add_argument("--cache-dir", metavar="PATH")
    trace_parser.add_argument("--no-cache", action="store_true")
    trace_parser.set_defaults(func=_cmd_trace)

    asm_parser = sub.add_parser("asm", help="assemble (and run) an assembly file")
    asm_parser.add_argument("source", help="assembly source file")
    asm_parser.add_argument("--run", action="store_true", help="execute after assembling")
    asm_parser.add_argument("--listing", action="store_true", help="print the disassembly")
    asm_parser.add_argument("--trace", help="run and write the branch trace here")
    asm_parser.add_argument("--scale", type=int, default=None,
                            help="stop after this many conditional branches")
    asm_parser.add_argument("--max-instructions", type=int, default=1_000_000)
    asm_parser.set_defaults(func=_cmd_asm)

    disasm_parser = sub.add_parser("disasm", help="disassemble a workload program")
    disasm_parser.add_argument("workload", choices=workload_names())
    disasm_parser.add_argument("--dataset", default="test", choices=("test", "train"))
    disasm_parser.set_defaults(func=_cmd_disasm)

    lint_parser = sub.add_parser(
        "lint", help="statically analyze workload programs or assembly files"
    )
    lint_parser.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="workload names and/or assembly file paths (default: all workloads)",
    )
    lint_parser.add_argument(
        "--dataset", default="both", choices=("both", "test", "train"),
        help="which data set(s) of each workload to lint",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit the JSON report (schema in docs/analysis.md)"
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    lint_parser.add_argument(
        "--cross-validate", action="store_true",
        help="also execute each workload and check the static tables against the trace",
    )
    lint_parser.add_argument(
        "--scale", type=int, default=20_000,
        help="conditional branches to simulate per program for --cross-validate",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    analyze_parser = sub.add_parser(
        "analyze",
        help="static branch-predictability analysis (classes, bounds, H2P)",
    )
    analyze_parser.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="workload names and/or assembly file paths (default: all workloads)",
    )
    analyze_parser.add_argument(
        "--dataset", default="both", choices=("both", "test", "train"),
        help="which data set(s) of each workload to analyze",
    )
    analyze_parser.add_argument(
        "--json", action="store_true",
        help="emit the JSON report (schema in docs/analysis.md)",
    )
    analyze_parser.add_argument(
        "--cross-validate", action="store_true",
        help="also simulate each workload and check every per-site per-scheme"
             " bound and the H2P ranking against the trace",
    )
    analyze_parser.add_argument(
        "--scale", type=int, default=20_000,
        help="conditional branches the analysis (and --cross-validate trace)"
             " covers per program",
    )
    analyze_parser.set_defaults(func=_cmd_analyze)

    h2p_parser = sub.add_parser(
        "h2p",
        help="modern schemes (perceptron, TAGE) vs AT on the static H2P sites",
    )
    h2p_parser.add_argument("--benchmarks", help="comma-separated workload subset")
    h2p_parser.add_argument(
        "--scale", type=_scale_arg, default=DEFAULT_CONDITIONAL_BRANCHES,
        help="conditional branches per benchmark, or 'paper' (20,000,000)",
    )
    h2p_parser.add_argument(
        "--top", type=int, default=5,
        help="number of top static H2P sites to score per benchmark",
    )
    h2p_parser.add_argument(
        "--json", action="store_true",
        help="emit the full report (rows, per-site table, shape checks) as JSON",
    )
    _add_perf_options(h2p_parser)
    h2p_parser.set_defaults(func=_cmd_h2p)

    serve_parser = sub.add_parser(
        "serve", help="run the online prediction service (docs/serving.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=9797, help="TCP port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="default backend for sessions that do not request one",
    )
    serve_parser.add_argument(
        "--max-connections", type=int, default=64, metavar="N",
        help="reject connections beyond this many concurrent sessions",
    )
    serve_parser.add_argument(
        "--max-frame-bytes", type=int, default=1 << 20, metavar="BYTES",
        help="drop sessions that send a larger frame",
    )
    serve_parser.add_argument(
        "--read-timeout", type=float, default=30.0, metavar="SECONDS",
        help="drop sessions idle longer than this mid-stream",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="grace period for in-flight sessions on SIGTERM",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="pre-fork N worker processes sharing the port (SO_REUSEPORT)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    bench_serve_parser = sub.add_parser(
        "bench-serve",
        help="load-test an in-process prediction server, write BENCH_serve.json",
    )
    bench_serve_parser.add_argument(
        "--sessions", type=int, default=4, metavar="N",
        help="concurrent predictor sessions",
    )
    bench_serve_parser.add_argument(
        "--specs", nargs="*", metavar="SPEC",
        help="predictor specs cycled across sessions (default: AT + BTFN)",
    )
    bench_serve_parser.add_argument(
        "--benchmarks", help="comma-separated workload subset (default: eqntott,tomcatv)"
    )
    bench_serve_parser.add_argument(
        "--scale", type=_scale_arg, default=20_000,
        help="conditional branches per workload trace (or 'paper')",
    )
    bench_serve_parser.add_argument(
        "--chunk", type=int, default=512, metavar="RECORDS",
        help="records per RECORDS frame",
    )
    bench_serve_parser.add_argument(
        "--window", type=int, default=4, metavar="FRAMES",
        help="frames each session keeps in flight (pipelining)",
    )
    bench_serve_parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="auto",
        help="backend requested by every session",
    )
    bench_serve_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the served-vs-offline parity check",
    )
    bench_serve_parser.add_argument(
        "--connections", type=int, default=None, metavar="N",
        help="multiplex all sessions over N protocol-v2 connections"
        " (default: one v1 connection per session)",
    )
    bench_serve_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="serve from a pre-fork pool of N worker processes",
    )
    bench_serve_parser.add_argument(
        "-o", "--output", default="BENCH_serve.json", help="result JSON path"
    )
    bench_serve_parser.add_argument("--cache-dir", metavar="PATH")
    bench_serve_parser.add_argument("--no-cache", action="store_true")
    bench_serve_parser.set_defaults(func=_cmd_bench_serve)

    cache_parser = sub.add_parser(
        "cache", help="inspect and manage the on-disk trace store"
    )
    cache_parser.add_argument(
        "--cache-dir", metavar="PATH",
        help="store root (default: ~/.cache/repro-traces, or $REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--evict", nargs="+", metavar="STEM", help="delete the named shard(s)"
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every shard"
    )
    cache_parser.add_argument(
        "--verify", action="store_true",
        help="fully read every shard, reporting corruption (typed errors)",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    list_parser = sub.add_parser("list", help="list experiments and workloads")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        validate_env_backend()
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
