"""Static-vs-dynamic cross-validation.

The payoff of the static analyzer: every fact it computes without executing
an instruction must agree with what the CPU/trace pipeline observes when the
program *is* executed.  Any divergence is a decoder, CFG or simulator bug
caught by construction:

* every dynamically observed branch PC must exist in the static table, with
  the same class;
* for sites with an encoded target (conditional, ``br``/``bsr``), the
  dynamic taken-direction target and backward/forward direction must match
  the encoding exactly;
* the static per-site BTFN prediction must reproduce the dynamic
  :class:`~repro.predictors.static_schemes.BTFNPredictor` decision for
  every conditional record, and the accuracy computed analytically from the
  static table must equal :func:`repro.sim.engine.simulate`'s score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.isa.program import Program
from repro.predictors.static_schemes import BTFNPredictor, ProfilePredictor
from repro.sim.analysis import (
    accuracy_within_bounds,
    per_site_accuracy_many,
    per_site_accuracy_specs,
    top_mispredicted,
)
from repro.sim.engine import simulate
from repro.trace.record import BranchClass, BranchRecord

from repro.analysis.branches import BranchSite, static_branch_table
from repro.analysis.predictability import (
    ANALYSIS_SCHEMES,
    PROFILE_SCHEME,
    PredictabilityClass,
    PredictabilityReport,
    analyze_program,
)


@dataclass
class CrossValidationReport:
    """Outcome of comparing a static branch table against a dynamic trace."""

    name: str
    static_total: int
    dynamic_total: int
    observed_static: int
    mismatches: List[str] = field(default_factory=list)
    static_btfn_correct: int = 0
    simulated_btfn_correct: int = 0
    btfn_total: int = 0
    unexecuted_static_sites: int = 0
    observed_per_class: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when static and dynamic views agree on every checked fact."""
        return (
            not self.mismatches
            and self.static_btfn_correct == self.simulated_btfn_correct
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.name,
            "static_total": self.static_total,
            "dynamic_total": self.dynamic_total,
            "observed_static": self.observed_static,
            "unexecuted_static_sites": self.unexecuted_static_sites,
            "btfn_total": self.btfn_total,
            "static_btfn_correct": self.static_btfn_correct,
            "simulated_btfn_correct": self.simulated_btfn_correct,
            "observed_per_class": dict(self.observed_per_class),
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }


_CLASS_NAMES = {
    BranchClass.CONDITIONAL: "conditional",
    BranchClass.RETURN: "return",
    BranchClass.IMM_UNCONDITIONAL: "imm_unconditional",
    BranchClass.REG_UNCONDITIONAL: "reg_unconditional",
}


def cross_validate(
    program: Program,
    records: Iterable[BranchRecord],
    name: str = "<program>",
) -> CrossValidationReport:
    """Check a dynamic branch trace of ``program`` against its static table.

    ``records`` may be any iterable of
    :class:`~repro.trace.record.BranchRecord`; it is materialised so the
    BTFN simulation can make a second pass.
    """
    table = static_branch_table(program)
    by_pc: Dict[int, BranchSite] = {site.pc: site for site in table}
    trace = list(records)

    mismatches: List[str] = []
    seen: Set[int] = set()
    per_class: Dict[str, int] = {}
    static_btfn_correct = 0
    btfn_total = 0

    for record in trace:
        site: Optional[BranchSite] = by_pc.get(record.pc)
        if site is None:
            if record.pc not in seen:
                mismatches.append(
                    f"{record.pc:#010x}: dynamic branch has no static site"
                )
            seen.add(record.pc)
            continue
        first_time = record.pc not in seen
        seen.add(record.pc)
        if first_time:
            per_class[_CLASS_NAMES[site.cls]] = (
                per_class.get(_CLASS_NAMES[site.cls], 0) + 1
            )
        if record.cls is not site.cls:
            if first_time:
                mismatches.append(
                    f"{record.pc:#010x}: class mismatch "
                    f"(static {site.cls.name}, dynamic {record.cls.name})"
                )
            continue
        if site.target is not None:
            if record.target != site.target:
                mismatches.append(
                    f"{record.pc:#010x}: target mismatch "
                    f"(static {site.target:#x}, dynamic {record.target:#x})"
                )
            elif record.is_backward != site.is_backward:
                mismatches.append(
                    f"{record.pc:#010x}: direction mismatch "
                    f"(static backward={site.is_backward}, "
                    f"dynamic backward={record.is_backward})"
                )
        if record.cls is BranchClass.CONDITIONAL:
            btfn_total += 1
            prediction = site.btfn_taken
            if prediction is None:
                mismatches.append(
                    f"{record.pc:#010x}: conditional site has no static "
                    "BTFN prediction"
                )
                continue
            if prediction == record.taken:
                static_btfn_correct += 1

    stats = simulate(BTFNPredictor(), trace)
    if stats.conditional_total != btfn_total:
        mismatches.append(
            "conditional record count mismatch: static walk saw "
            f"{btfn_total}, simulator saw {stats.conditional_total}"
        )

    observed_static = len(seen & set(by_pc))
    return CrossValidationReport(
        name=name,
        static_total=len(table),
        dynamic_total=len(seen),
        observed_static=observed_static,
        mismatches=mismatches,
        static_btfn_correct=static_btfn_correct,
        simulated_btfn_correct=stats.conditional_correct,
        btfn_total=btfn_total,
        unexecuted_static_sites=len(table) - observed_static,
        observed_per_class=per_class,
    )


# ----------------------------------------------------------------------
# Predictability cross-validation: the static bounds against the simulator.
# ----------------------------------------------------------------------

#: Classes whose bounds the acceptance criteria require to be *exact*.
_TIGHT_CLASSES = frozenset(
    {PredictabilityClass.CONSTANT, PredictabilityClass.LOOP_PERIODIC}
)


@dataclass
class PredictabilityValidation:
    """Outcome of checking a predictability report against a dynamic trace.

    Three layers of agreement, each hard-failing on divergence:

    * every site × scheme: dynamic ``(correct, total)`` inside the static
      ``[lower, upper]`` interval with matching occurrence counts;
    * constant / loop-periodic sites: the interval must be a point
      (``exact``) — the tightness the acceptance criteria demand;
    * H2P: the static top-N by reference-scheme misprediction mass must
      name the same sites as the dynamic top-N.
    """

    name: str
    scale: int
    sites_checked: int
    schemes_checked: int
    static_h2p: List[int] = field(default_factory=list)
    dynamic_h2p: List[int] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.name,
            "scale": self.scale,
            "sites_checked": self.sites_checked,
            "schemes_checked": self.schemes_checked,
            "static_h2p": list(self.static_h2p),
            "dynamic_h2p": list(self.dynamic_h2p),
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }


def validate_predictability(
    program: Program,
    records: Iterable[BranchRecord],
    scale: int,
    name: str = "<program>",
    report: Optional[PredictabilityReport] = None,
    h2p_n: int = 5,
) -> PredictabilityValidation:
    """Cross-validate static predictability bounds against a dynamic trace.

    ``records`` is the trace the simulator produced for ``program`` at
    ``scale`` conditional branches (the same scale the report was — or will
    be — computed at).  ``report`` may be passed in when the caller already
    ran :func:`~repro.analysis.predictability.analyze_program`.
    """
    trace = [r for r in records if r.cls is BranchClass.CONDITIONAL]
    if report is None:
        report = analyze_program(program, scale, name=name)

    # Registry-spec schemes ride the fused sweep kernel (one pass, shared
    # intermediates); extension predictors without a spec (PAp) replay.
    # Profile profiles the execution trace itself, which is exactly the
    # fused kernel's Profile recipe, so it fuses too.
    spec_map = {
        scheme.name: scheme.spec
        for scheme in ANALYSIS_SCHEMES
        if scheme.spec is not None
    }
    spec_map[PROFILE_SCHEME] = "Profile"
    fused = per_site_accuracy_specs(spec_map, trace)
    if fused is None:
        predictors = {
            scheme.name: scheme.factory() for scheme in ANALYSIS_SCHEMES
        }
        predictors[PROFILE_SCHEME] = ProfilePredictor.from_trace(trace)
        dynamic = per_site_accuracy_many(predictors, trace)
    else:
        replayed = {
            scheme.name: scheme.factory()
            for scheme in ANALYSIS_SCHEMES
            if scheme.spec is None
        }
        dynamic = {**fused, **per_site_accuracy_many(replayed, trace)}
    scheme_count = len(dynamic)

    mismatches: List[str] = []
    for scheme_name in sorted(dynamic):
        bounds = {
            pc: (bound.lower, bound.upper, bound.occurrences)
            for pc, site_report in report.sites.items()
            if (bound := site_report.bounds.get(scheme_name)) is not None
        }
        for violation in accuracy_within_bounds(dynamic[scheme_name], bounds):
            mismatches.append(f"{scheme_name}: {violation}")

    for pc, site_report in sorted(report.sites.items()):
        if site_report.predictability not in _TIGHT_CLASSES:
            continue
        for scheme_name, bound in sorted(site_report.bounds.items()):
            if not bound.exact:
                mismatches.append(
                    f"{scheme_name}: {pc:#010x} is "
                    f"{site_report.predictability.value} but its bound "
                    f"[{bound.lower}, {bound.upper}] is not exact"
                )

    static_h2p = report.h2p_top(h2p_n)
    dynamic_h2p = top_mispredicted(dynamic[report.reference_scheme], h2p_n)
    if set(static_h2p) != set(dynamic_h2p):
        mismatches.append(
            f"H2P top-{h2p_n} disagree: static "
            f"{[hex(pc) for pc in static_h2p]}, dynamic "
            f"{[hex(pc) for pc in dynamic_h2p]}"
        )

    return PredictabilityValidation(
        name=name,
        scale=scale,
        sites_checked=len(report.sites),
        schemes_checked=scheme_count,
        static_h2p=static_h2p,
        dynamic_h2p=dynamic_h2p,
        mismatches=mismatches,
    )
