"""Static-vs-dynamic cross-validation.

The payoff of the static analyzer: every fact it computes without executing
an instruction must agree with what the CPU/trace pipeline observes when the
program *is* executed.  Any divergence is a decoder, CFG or simulator bug
caught by construction:

* every dynamically observed branch PC must exist in the static table, with
  the same class;
* for sites with an encoded target (conditional, ``br``/``bsr``), the
  dynamic taken-direction target and backward/forward direction must match
  the encoding exactly;
* the static per-site BTFN prediction must reproduce the dynamic
  :class:`~repro.predictors.static_schemes.BTFNPredictor` decision for
  every conditional record, and the accuracy computed analytically from the
  static table must equal :func:`repro.sim.engine.simulate`'s score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.isa.program import Program
from repro.predictors.static_schemes import BTFNPredictor
from repro.sim.engine import simulate
from repro.trace.record import BranchClass, BranchRecord

from repro.analysis.branches import BranchSite, static_branch_table


@dataclass
class CrossValidationReport:
    """Outcome of comparing a static branch table against a dynamic trace."""

    name: str
    static_total: int
    dynamic_total: int
    observed_static: int
    mismatches: List[str] = field(default_factory=list)
    static_btfn_correct: int = 0
    simulated_btfn_correct: int = 0
    btfn_total: int = 0
    unexecuted_static_sites: int = 0
    observed_per_class: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when static and dynamic views agree on every checked fact."""
        return (
            not self.mismatches
            and self.static_btfn_correct == self.simulated_btfn_correct
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.name,
            "static_total": self.static_total,
            "dynamic_total": self.dynamic_total,
            "observed_static": self.observed_static,
            "unexecuted_static_sites": self.unexecuted_static_sites,
            "btfn_total": self.btfn_total,
            "static_btfn_correct": self.static_btfn_correct,
            "simulated_btfn_correct": self.simulated_btfn_correct,
            "observed_per_class": dict(self.observed_per_class),
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }


_CLASS_NAMES = {
    BranchClass.CONDITIONAL: "conditional",
    BranchClass.RETURN: "return",
    BranchClass.IMM_UNCONDITIONAL: "imm_unconditional",
    BranchClass.REG_UNCONDITIONAL: "reg_unconditional",
}


def cross_validate(
    program: Program,
    records: Iterable[BranchRecord],
    name: str = "<program>",
) -> CrossValidationReport:
    """Check a dynamic branch trace of ``program`` against its static table.

    ``records`` may be any iterable of
    :class:`~repro.trace.record.BranchRecord`; it is materialised so the
    BTFN simulation can make a second pass.
    """
    table = static_branch_table(program)
    by_pc: Dict[int, BranchSite] = {site.pc: site for site in table}
    trace = list(records)

    mismatches: List[str] = []
    seen: Set[int] = set()
    per_class: Dict[str, int] = {}
    static_btfn_correct = 0
    btfn_total = 0

    for record in trace:
        site: Optional[BranchSite] = by_pc.get(record.pc)
        if site is None:
            if record.pc not in seen:
                mismatches.append(
                    f"{record.pc:#010x}: dynamic branch has no static site"
                )
            seen.add(record.pc)
            continue
        first_time = record.pc not in seen
        seen.add(record.pc)
        if first_time:
            per_class[_CLASS_NAMES[site.cls]] = (
                per_class.get(_CLASS_NAMES[site.cls], 0) + 1
            )
        if record.cls is not site.cls:
            if first_time:
                mismatches.append(
                    f"{record.pc:#010x}: class mismatch "
                    f"(static {site.cls.name}, dynamic {record.cls.name})"
                )
            continue
        if site.target is not None:
            if record.target != site.target:
                mismatches.append(
                    f"{record.pc:#010x}: target mismatch "
                    f"(static {site.target:#x}, dynamic {record.target:#x})"
                )
            elif record.is_backward != site.is_backward:
                mismatches.append(
                    f"{record.pc:#010x}: direction mismatch "
                    f"(static backward={site.is_backward}, "
                    f"dynamic backward={record.is_backward})"
                )
        if record.cls is BranchClass.CONDITIONAL:
            btfn_total += 1
            prediction = site.btfn_taken
            if prediction is None:
                mismatches.append(
                    f"{record.pc:#010x}: conditional site has no static "
                    "BTFN prediction"
                )
                continue
            if prediction == record.taken:
                static_btfn_correct += 1

    stats = simulate(BTFNPredictor(), trace)
    if stats.conditional_total != btfn_total:
        mismatches.append(
            "conditional record count mismatch: static walk saw "
            f"{btfn_total}, simulator saw {stats.conditional_total}"
        )

    observed_static = len(seen & set(by_pc))
    return CrossValidationReport(
        name=name,
        static_total=len(table),
        dynamic_total=len(seen),
        observed_static=observed_static,
        mismatches=mismatches,
        static_btfn_correct=static_btfn_correct,
        simulated_btfn_correct=stats.conditional_correct,
        btfn_total=btfn_total,
        unexecuted_static_sites=len(table) - observed_static,
        observed_per_class=per_class,
    )
