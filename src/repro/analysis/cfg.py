"""Control-flow graph over a decoded :class:`~repro.isa.program.Program`.

Construction follows the classic leader algorithm: an instruction starts a
basic block if it is the program entry, the target of a branch, or the
instruction after a control transfer.  Edges carry a *kind* so downstream
analyses can distinguish a conditional branch's taken edge from its
fall-through, a subroutine call from its return continuation, and resolved
indirect-jump candidates from architectural certainties.

Register-indirect control flow (``jmp``/``jsr``/``rts``) has no encoded
target, so the builder recovers a conservative candidate set:

* *address-taken* text addresses — data words or materialized ``li``
  constants that name a text address — become the candidate targets of
  ``jmp``/``jsr`` (this resolves the computed-goto dispatch tables the gcc
  analog uses);
* ``rts`` gets a RETURN edge to the continuation of every call site, the
  standard context-insensitive approximation.

Dominators use the iterative Cooper-Harvey-Kennedy scheme over a reverse
post-order; natural loops come from back edges (head dominates tail), and
strongly-connected components from an iterative Tarjan — the SCCs drive the
infinite-loop lint rule, which must also catch irreducible cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


class EdgeKind:
    """Edge kinds (plain strings so diagnostics and JSON stay readable)."""

    TAKEN = "taken"
    FALLTHROUGH = "fallthrough"
    CALL = "call"
    CONTINUATION = "continuation"
    RETURN = "return"
    INDIRECT = "indirect"

    ALL = (TAKEN, FALLTHROUGH, CALL, CONTINUATION, RETURN, INDIRECT)


@dataclass(frozen=True)
class Edge:
    """One control-flow edge between basic blocks (by block start address)."""

    src: int
    dst: int
    kind: str


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run.

    Attributes:
        start: byte address of the first instruction.
        instructions: the decoded instruction run.
        label: symbol naming ``start`` when one exists.
    """

    start: int
    instructions: List[Instruction]
    label: Optional[str] = None

    @property
    def end(self) -> int:
        """First byte address past the block."""
        return self.start + 4 * len(self.instructions)

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def addresses(self) -> Iterator[int]:
        for index in range(len(self.instructions)):
            yield self.start + 4 * index


_UNCONDITIONAL_TRANSFER = frozenset(
    {Opcode.BR, Opcode.JMP, Opcode.RTS, Opcode.HALT}
)
_CALLS = frozenset({Opcode.BSR, Opcode.JSR})


def _address_taken_targets(program: Program) -> FrozenSet[int]:
    """Word-aligned text addresses a register-indirect jump could reach.

    Candidates are (a) data words whose value lands in the text segment
    (jump tables), and (b) text addresses materialized by ``li`` — either a
    single ``addi rd, r0, imm`` or a ``lui``/``ori`` pair.  The set is only
    consulted when the program actually contains ``jmp``/``jsr``.
    """
    lo, hi = program.text_base, program.text_end
    candidates: Set[int] = set()
    for _, word in program.data:
        if lo <= word < hi and word % 4 == 0:
            candidates.add(word)
    previous: Optional[Instruction] = None
    for instruction in program.instructions:
        opcode = instruction.opcode
        if opcode is Opcode.ADDI and instruction.rs1 == 0:
            value = instruction.imm & 0xFFFFFFFF
            if lo <= value < hi and value % 4 == 0:
                candidates.add(value)
        elif (
            opcode is Opcode.ORI
            and previous is not None
            and previous.opcode is Opcode.LUI
            and previous.rd == instruction.rd == instruction.rs1
        ):
            value = ((previous.imm & 0xFFFF) << 16) | (instruction.imm & 0xFFFF)
            if lo <= value < hi and value % 4 == 0:
                candidates.add(value)
        previous = instruction
    return frozenset(candidates)


@dataclass
class ControlFlowGraph:
    """Basic blocks plus typed edges, with the standard graph analyses."""

    program: Program
    blocks: Dict[int, BasicBlock]
    edges: List[Edge]
    entry: int
    indirect_targets: FrozenSet[int] = frozenset()
    _succ: Dict[int, List[Edge]] = field(default_factory=dict, repr=False)
    _pred: Dict[int, List[Edge]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for start in self.blocks:
            self._succ[start] = []
            self._pred[start] = []
        for edge in self.edges:
            self._succ[edge.src].append(edge)
            self._pred[edge.dst].append(edge)

    # ------------------------------------------------------------------
    def successors(self, start: int) -> List[Edge]:
        return self._succ[start]

    def predecessors(self, start: int) -> List[Edge]:
        return self._pred[start]

    def block_at(self, address: int) -> BasicBlock:
        """The block containing ``address`` (must be a valid text address)."""
        starts = sorted(self.blocks)
        lo, hi = 0, len(starts) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            block = self.blocks[starts[mid]]
            if address < block.start:
                hi = mid - 1
            elif address >= block.end:
                lo = mid + 1
            else:
                return block
        raise KeyError(f"address {address:#x} is not in any basic block")

    # ------------------------------------------------------------------
    def reachable(self) -> Set[int]:
        """Block starts reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            start = stack.pop()
            if start in seen:
                continue
            seen.add(start)
            for edge in self._succ[start]:
                if edge.dst not in seen:
                    stack.append(edge.dst)
        return seen

    def reverse_post_order(self) -> List[int]:
        """Reachable blocks in reverse post-order (iterative DFS)."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, Iterator[Edge]]] = []
        seen.add(self.entry)
        stack.append((self.entry, iter(self._succ[self.entry])))
        while stack:
            node, children = stack[-1]
            advanced = False
            for edge in children:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append((edge.dst, iter(self._succ[edge.dst])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(node)
        order.reverse()
        return order

    def dominators(self) -> Dict[int, Optional[int]]:
        """Immediate dominator of every reachable block (entry maps to None).

        Iterative Cooper-Harvey-Kennedy over reverse post-order.
        """
        rpo = self.reverse_post_order()
        position = {start: index for index, start in enumerate(rpo)}
        idom: Dict[int, Optional[int]] = {self.entry: self.entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]  # type: ignore[assignment]
                while position[b] > position[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == self.entry:
                    continue
                new_idom: Optional[int] = None
                for edge in self._pred[node]:
                    if edge.src in idom and edge.src in position:
                        new_idom = (
                            edge.src
                            if new_idom is None
                            else intersect(edge.src, new_idom)
                        )
                if new_idom is not None and idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True
        result: Dict[int, Optional[int]] = dict(idom)
        result[self.entry] = None
        return result

    def dominates(self, a: int, b: int) -> bool:
        """Whether block ``a`` dominates block ``b`` (both reachable)."""
        idom = self.dominators()
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = idom.get(node)
        return False

    def natural_loops(self) -> List[Tuple[int, FrozenSet[int]]]:
        """``(header, body)`` for every back edge (tail dominated by head).

        Loops sharing a header are merged, matching the usual definition.
        """
        idom = self.dominators()

        def dominates(a: int, b: int) -> bool:
            node: Optional[int] = b
            while node is not None:
                if node == a:
                    return True
                node = idom.get(node)
            return False

        bodies: Dict[int, Set[int]] = {}
        for edge in self.edges:
            if edge.src not in idom or edge.dst not in idom:
                continue  # unreachable
            if not dominates(edge.dst, edge.src):
                continue
            header, tail = edge.dst, edge.src
            body = bodies.setdefault(header, {header})
            stack = [tail]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                for pred in self._pred[node]:
                    stack.append(pred.src)
            bodies[header] = body
        return sorted(
            (header, frozenset(body)) for header, body in bodies.items()
        )

    def strongly_connected_components(self) -> List[FrozenSet[int]]:
        """Tarjan SCCs over the *reachable* subgraph (iterative)."""
        reachable = self.reachable()
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        components: List[FrozenSet[int]] = []
        counter = 0

        for root in sorted(reachable):
            if root in index:
                continue
            work: List[Tuple[int, Iterator[Edge]]] = [
                (root, iter(self._succ[root]))
            ]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for edge in children:
                    child = edge.dst
                    if child not in index:
                        index[child] = lowlink[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: Set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        return components

    def post_dominators(
        self, edge_kinds: Optional[FrozenSet[str]] = None
    ) -> Dict[int, Optional[int]]:
        """Immediate post-dominator of each block, over a kind-filtered view.

        The reverse graph is rooted at a single virtual exit collecting
        every block with no (kept) successors — halts, and ``rts`` when
        RETURN edges are filtered out.  Blocks whose immediate
        post-dominator is the virtual exit map to ``None``; blocks that
        cannot reach any exit (never-terminating cycles) are absent.

        ``edge_kinds`` restricts the edges considered; passing the
        intraprocedural kinds (taken / fallthrough / continuation /
        indirect) yields the within-procedure join points the abstract
        interpreter skips to — calls are summarised by their continuation,
        exactly because every generated subroutine returns.
        """
        kept = [
            edge
            for edge in self.edges
            if edge_kinds is None or edge.kind in edge_kinds
        ]
        succ: Dict[int, List[int]] = {start: [] for start in self.blocks}
        for edge in kept:
            succ[edge.src].append(edge.dst)
        virtual_exit = -1
        exits = sorted(start for start in self.blocks if not succ[start])
        # Reverse-graph adjacency: virtual exit -> exits, dst -> src.
        rsucc: Dict[int, List[int]] = {virtual_exit: exits}
        rpred: Dict[int, List[int]] = {virtual_exit: []}
        for start in self.blocks:
            rsucc[start] = []
            rpred[start] = []
        for edge in kept:
            rsucc[edge.dst].append(edge.src)
            rpred[edge.src].append(edge.dst)
        for start in exits:
            rpred[start].append(virtual_exit)

        seen: Set[int] = {virtual_exit}
        order: List[int] = []
        stack: List[Tuple[int, Iterator[int]]] = [
            (virtual_exit, iter(rsucc[virtual_exit]))
        ]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(rsucc[child])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(node)
        order.reverse()
        position = {node: index for index, node in enumerate(order)}
        ipdom: Dict[int, int] = {virtual_exit: virtual_exit}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = ipdom[a]
                while position[b] > position[a]:
                    b = ipdom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == virtual_exit:
                    continue
                new_ipdom: Optional[int] = None
                for pred in rpred[node]:
                    if pred in ipdom and pred in position:
                        new_ipdom = (
                            pred
                            if new_ipdom is None
                            else intersect(pred, new_ipdom)
                        )
                if new_ipdom is not None and ipdom.get(node) != new_ipdom:
                    ipdom[node] = new_ipdom
                    changed = True
        return {
            node: (None if value == virtual_exit else value)
            for node, value in ipdom.items()
            if node != virtual_exit
        }

    def label_for(self, address: int) -> Optional[str]:
        """Best symbolic name for a text address: the nearest preceding
        label, with a ``+offset`` suffix when not exact."""
        best_name: Optional[str] = None
        best_address = -1
        for name, value in self.program.symbols.items():
            if value <= address and self.program.text_base <= value:
                if value > best_address and value < self.program.text_end:
                    best_name, best_address = name, value
        if best_name is None:
            return None
        delta = address - best_address
        return best_name if delta == 0 else f"{best_name}+{delta:#x}"


def build_cfg(program: Program) -> ControlFlowGraph:
    """Partition ``program`` into basic blocks and connect them."""
    instructions = program.instructions
    base = program.text_base
    end = program.text_end
    n = len(instructions)

    has_indirect = any(
        instruction.opcode in (Opcode.JMP, Opcode.JSR)
        for instruction in instructions
    )
    indirect_targets = (
        _address_taken_targets(program) if has_indirect else frozenset()
    )
    call_continuations = [
        base + 4 * index + 4
        for index, instruction in enumerate(instructions)
        if instruction.opcode in _CALLS
    ]
    has_rts = any(
        instruction.opcode is Opcode.RTS for instruction in instructions
    )

    # -- leaders -------------------------------------------------------
    leaders: Set[int] = set()
    if n:
        leaders.add(program.entry if base <= program.entry < end else base)
        leaders.add(base)
    for index, instruction in enumerate(instructions):
        pc = base + 4 * index
        opcode = instruction.opcode
        if not instruction.is_branch and opcode is not Opcode.HALT:
            continue
        if pc + 4 < end:
            leaders.add(pc + 4)
        if opcode in (Opcode.BR, Opcode.BSR) or instruction.branch_class.name == "CONDITIONAL":
            target = pc + 4 + 4 * instruction.imm
            if base <= target < end:
                leaders.add(target)
    if has_indirect:
        leaders.update(indirect_targets)
    if has_rts:
        leaders.update(
            address for address in call_continuations if address < end
        )

    # -- blocks --------------------------------------------------------
    text_labels = {
        value: name
        for name, value in sorted(program.symbols.items(), reverse=True)
        if base <= value < end
    }
    ordered = sorted(leaders)
    blocks: Dict[int, BasicBlock] = {}
    for position, start in enumerate(ordered):
        stop = ordered[position + 1] if position + 1 < len(ordered) else end
        lo_index = (start - base) >> 2
        hi_index = (stop - base) >> 2
        blocks[start] = BasicBlock(
            start=start,
            instructions=instructions[lo_index:hi_index],
            label=text_labels.get(start),
        )

    # -- edges ---------------------------------------------------------
    edges: List[Edge] = []
    starts = set(blocks)

    def add(src: int, dst: int, kind: str) -> None:
        if dst in starts:
            edges.append(Edge(src, dst, kind))

    for start, block in blocks.items():
        last = block.terminator
        pc = block.end - 4
        opcode = last.opcode
        fall = block.end
        if opcode is Opcode.HALT:
            continue
        if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                      Opcode.BLE, Opcode.BGT):
            add(start, pc + 4 + 4 * last.imm, EdgeKind.TAKEN)
            add(start, fall, EdgeKind.FALLTHROUGH)
        elif opcode is Opcode.BR:
            add(start, pc + 4 + 4 * last.imm, EdgeKind.TAKEN)
        elif opcode is Opcode.BSR:
            add(start, pc + 4 + 4 * last.imm, EdgeKind.CALL)
            add(start, fall, EdgeKind.CONTINUATION)
        elif opcode is Opcode.JMP:
            for target in sorted(indirect_targets):
                add(start, target, EdgeKind.INDIRECT)
        elif opcode is Opcode.JSR:
            for target in sorted(indirect_targets):
                add(start, target, EdgeKind.CALL)
            add(start, fall, EdgeKind.CONTINUATION)
        elif opcode is Opcode.RTS:
            for target in call_continuations:
                add(start, target, EdgeKind.RETURN)
        else:
            add(start, fall, EdgeKind.FALLTHROUGH)

    entry = program.entry if program.entry in blocks else (base if n else 0)
    return ControlFlowGraph(
        program=program,
        blocks=blocks,
        edges=edges,
        entry=entry,
        indirect_targets=indirect_targets,
    )
