"""Abstract interpretation over the workload ISA.

Three cooperating engines, all built on the PR-3 CFG and sharing the
interpreter's value semantics through the tables in
:mod:`repro.isa.instructions` (stated once, never restated):

* **Value resolution** (:class:`Resolution`) — a reaching-definitions-based
  constant/range analysis.  Registers start at the architectural zero, loads
  are ⊤ (memory is never modelled), and every ALU opcode is evaluated
  through :data:`~repro.isa.instructions.ALU_SEMANTICS` /
  :data:`~repro.isa.instructions.IMM_SEMANTICS`.  Decisive range
  comparisons prove branches one-sided *forever* — the R009 lint rule.

* **Loop summaries** (:func:`loop_summaries`) — affine induction-variable
  detection through the natural-loop structure, with closed-form trip
  counts where a loop's single conditional exit compares loop-affine values
  (solved algebraically, then verified at the boundary through
  :data:`~repro.isa.instructions.BRANCH_SEMANTICS`).

* **The deterministic walk** (:func:`walk_program`) — the CPU semantics
  over partially-known state.  Registers start at the architectural zero
  and memory starts as the loaded data segment, so the walk interprets the
  program concretely — recording the *exact* outcome stream of every
  conditional site it can evaluate — until unknown state intervenes.
  Unknown control flow is handled soundly by skipping to the branch's
  intraprocedural immediate post-dominator while invalidating everything
  the skipped region could write (registers always; all of memory once a
  skipped region contains a store).  A site's recorded stream is therefore
  exact for its first ``len(stream)`` dynamic occurrences (its *horizon*);
  data-dependent control flow truncates horizons rather than corrupting
  them.

The walk is parameterized by a conditional-branch budget.  Because it
counts only the conditionals it can evaluate — an undercount of the real
execution — running it to the simulator's ``max_conditional_branches``
budget guarantees every never-poisoned site's horizon covers its dynamic
occurrence count in a trace of that scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.isa.instructions import (
    ALU_SEMANTICS,
    B_FORMAT,
    BRANCH_SEMANTICS,
    IMM_SEMANTICS,
    Instruction,
    Opcode,
    encoded_target,
    registers_written,
)
from repro.isa.program import Program

from repro.analysis.cfg import ControlFlowGraph, EdgeKind, build_cfg
from repro.analysis.dataflow import (
    UNINITIALIZED,
    ReachingDefinitions,
    reaching_definitions,
)

_WORD_MAX = 0xFFFFFFFF
_SIGN = 0x80000000

#: Edge kinds of the intraprocedural view: calls are summarised by their
#: continuation (every generated subroutine returns), returns are cut.
INTRAPROCEDURAL_KINDS: FrozenSet[str] = frozenset(
    {
        EdgeKind.TAKEN,
        EdgeKind.FALLTHROUGH,
        EdgeKind.CONTINUATION,
        EdgeKind.INDIRECT,
    }
)


# ----------------------------------------------------------------------
# Value ranges.
# ----------------------------------------------------------------------

class ValueRange(NamedTuple):
    """An inclusive unsigned 32-bit interval; ``[0, 2^32-1]`` is ⊤."""

    lo: int
    hi: int

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == _WORD_MAX

    def join(self, other: "ValueRange") -> "ValueRange":
        return ValueRange(min(self.lo, other.lo), max(self.hi, other.hi))


TOP = ValueRange(0, _WORD_MAX)


def constant(value: int) -> ValueRange:
    """A degenerate range holding one 32-bit value."""
    masked = value & _WORD_MAX
    return ValueRange(masked, masked)


def _signed_bounds(r: ValueRange) -> Optional[Tuple[int, int]]:
    """The range as a signed interval, or None when it straddles the sign
    boundary (and therefore is not an interval in the signed order)."""
    if r.hi < _SIGN:
        return (r.lo, r.hi)
    if r.lo >= _SIGN:
        return (r.lo - 0x100000000, r.hi - 0x100000000)
    return None


def compare_ranges(opcode: Opcode, a: ValueRange, b: ValueRange) -> Optional[bool]:
    """Decide a conditional branch's outcome from operand ranges.

    Returns True/False when every pair of values in the ranges agrees on
    the predicate (so the branch is provably one-sided), None otherwise.
    Signedness matches the CPU: equality is bitwise, the ordered compares
    are signed two's-complement.
    """
    if a.is_constant and b.is_constant:
        return BRANCH_SEMANTICS[opcode](a.lo, b.lo)
    if opcode in (Opcode.BEQ, Opcode.BNE):
        disjoint = a.hi < b.lo or b.hi < a.lo
        if not disjoint:
            return None
        return opcode is Opcode.BNE
    sa = _signed_bounds(a)
    sb = _signed_bounds(b)
    if sa is None or sb is None:
        return None
    alo, ahi = sa
    blo, bhi = sb
    if opcode is Opcode.BLT:
        return True if ahi < blo else (False if alo >= bhi else None)
    if opcode is Opcode.BGE:
        return True if alo >= bhi else (False if ahi < blo else None)
    if opcode is Opcode.BLE:
        return True if ahi <= blo else (False if alo > bhi else None)
    if opcode is Opcode.BGT:
        return True if alo > bhi else (False if ahi <= blo else None)
    return None


def _apply_imm(opcode: Opcode, r: ValueRange, imm: int) -> ValueRange:
    if opcode is Opcode.LUI:
        return constant((imm & 0xFFFF) << 16)
    if r.is_constant:
        return constant(IMM_SEMANTICS[opcode](r.lo, imm))
    if opcode is Opcode.ANDI:
        return ValueRange(0, min(r.hi, imm & 0xFFFF))
    if opcode is Opcode.ADDI:
        lo, hi = r.lo + imm, r.hi + imm
        if 0 <= lo and hi <= _WORD_MAX:
            return ValueRange(lo, hi)
        return TOP
    if opcode is Opcode.SHRI:
        shift = imm & 31
        return ValueRange(r.lo >> shift, r.hi >> shift)
    if opcode is Opcode.SHLI:
        shift = imm & 31
        if (r.hi << shift) <= _WORD_MAX:
            return ValueRange(r.lo << shift, r.hi << shift)
        return TOP
    return TOP


def _apply_alu(opcode: Opcode, a: ValueRange, b: ValueRange) -> ValueRange:
    if a.is_constant and b.is_constant:
        try:
            return constant(ALU_SEMANTICS[opcode](a.lo, b.lo))
        except ZeroDivisionError:
            return TOP
    if opcode is Opcode.AND:
        return ValueRange(0, min(a.hi, b.hi))
    if opcode is Opcode.ADD:
        lo, hi = a.lo + b.lo, a.hi + b.hi
        if hi <= _WORD_MAX:
            return ValueRange(lo, hi)
        return TOP
    if opcode is Opcode.SUB:
        lo, hi = a.lo - b.hi, a.hi - b.lo
        if lo >= 0:
            return ValueRange(lo, hi)
        return TOP
    if opcode is Opcode.SHR and b.is_constant:
        shift = b.lo & 31
        return ValueRange(a.lo >> shift, a.hi >> shift)
    return TOP


_MAX_RESOLVE_DEPTH = 16


@dataclass
class Resolution:
    """Reaching-definitions-based value resolution over one program.

    ``resolve(register, address)`` answers "what values can this register
    hold just before ``address`` executes, on any path?" — a sound range,
    exact when the register is a propagated constant.  The virtual entry
    definition resolves to the architectural zero, matching ``CPU.run``'s
    register-file initialisation.
    """

    cfg: ControlFlowGraph
    reaching: ReachingDefinitions
    _memo: Dict[Tuple[int, int], ValueRange] = field(default_factory=dict)
    _in_progress: Set[Tuple[int, int]] = field(default_factory=set)

    def instruction_at(self, address: int) -> Instruction:
        index = (address - self.cfg.program.text_base) >> 2
        return self.cfg.program.instructions[index]

    def resolve(
        self, register: int, address: int, depth: int = _MAX_RESOLVE_DEPTH
    ) -> ValueRange:
        """Range of ``register`` immediately before ``address``."""
        if register == 0:
            return constant(0)
        if depth <= 0:
            return TOP
        key = (register, address)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return TOP  # definition cycle (induction variable): widen
        self._in_progress.add(key)
        try:
            result: Optional[ValueRange] = None
            for def_register, def_address in self.reaching.at(address):
                if def_register != register:
                    continue
                value = self._resolve_definition(register, def_address, depth)
                result = value if result is None else result.join(value)
                if result.is_top:
                    break
            if result is None:
                result = TOP  # unreachable code: no facts
        finally:
            self._in_progress.discard(key)
        self._memo[key] = result
        return result

    def _resolve_definition(
        self, register: int, def_address: int, depth: int
    ) -> ValueRange:
        if def_address == UNINITIALIZED:
            return constant(0)  # architectural register-file init
        instruction = self.instruction_at(def_address)
        opcode = instruction.opcode
        if opcode in (Opcode.BSR, Opcode.JSR):
            return constant(def_address + 4)  # link-register value
        if opcode in (Opcode.LD, Opcode.LDB):
            return TOP  # memory is never modelled
        if opcode in IMM_SEMANTICS:
            base = self.resolve(instruction.rs1, def_address, depth - 1)
            return _apply_imm(opcode, base, instruction.imm)
        if opcode in ALU_SEMANTICS:
            a = self.resolve(instruction.rs1, def_address, depth - 1)
            b = self.resolve(instruction.rs2, def_address, depth - 1)
            return _apply_alu(opcode, a, b)
        return TOP

    def branch_decision(self, pc: int) -> Optional[bool]:
        """Provable constant outcome of the conditional branch at ``pc``,
        valid for *every* execution (None when not provable)."""
        instruction = self.instruction_at(pc)
        if instruction.opcode not in B_FORMAT:
            return None
        a = self.resolve(instruction.rs1, pc)
        b = self.resolve(instruction.rs2, pc)
        return compare_ranges(instruction.opcode, a, b)


def resolution_for(program: Program) -> Resolution:
    """Build a :class:`Resolution` (convenience wrapper)."""
    cfg = build_cfg(program)
    return Resolution(cfg=cfg, reaching=reaching_definitions(cfg))


# ----------------------------------------------------------------------
# Loop summaries: affine induction variables and trip counts.
# ----------------------------------------------------------------------

class AffineValue(NamedTuple):
    """A register whose value at a fixed loop-body point is
    ``base + step * j`` on the loop's j-th iteration (0-based)."""

    base: int
    step: int

    def at(self, iteration: int) -> int:
        return self.base + self.step * iteration


class LoopSummary(NamedTuple):
    """One natural loop with its statically derived iteration structure.

    ``trip_count`` is the number of completed back-edge traversals per
    activation — for a counted loop closed by a backward conditional latch
    this equals the latch's dynamic taken-run length; the header executes
    ``trip_count + 1`` times.  None when the trip is not statically known.
    """

    header: int
    blocks: FrozenSet[int]
    latches: Tuple[int, ...]
    exit_pc: Optional[int]
    trip_count: Optional[int]


def _resolve_relation(relation: str, c: int, s: int) -> Optional[int]:
    """Smallest ``j >= 0`` with ``c + s*j <relation> 0``, or None."""
    if relation == "==":
        if s == 0:
            return 0 if c == 0 else None
        if c % s == 0 and -c // s >= 0 and c * s <= 0:
            return -c // s
        return None
    if relation == "!=":
        if c != 0:
            return 0
        return 1 if s != 0 else None
    if relation in (">", ">="):
        flipped = "<" if relation == ">" else "<="
        return _resolve_relation(flipped, -c, -s)
    if relation == "<":
        if c < 0:
            return 0
        if s >= 0:
            return None
        return c // (-s) + 1
    if relation == "<=":
        if c <= 0:
            return 0
        if s >= 0:
            return None
        return (c + (-s) - 1) // (-s)
    raise ValueError(f"unknown relation {relation!r}")


_EXIT_RELATION = {
    Opcode.BEQ: "==",
    Opcode.BNE: "!=",
    Opcode.BLT: "<",
    Opcode.BGE: ">=",
    Opcode.BLE: "<=",
    Opcode.BGT: ">",
}
_NEGATED = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", "<=": ">", ">": "<="}


_VIRTUAL_ROOT = -2


@dataclass
class LoopAnalysis:
    """Affine induction variables and trip counts over every natural loop.

    Loop structure is computed on the *intraprocedural* edge view with every
    procedure entry as an additional dominator-tree root: context-insensitive
    RETURN edges would otherwise pull unrelated procedures into loop bodies
    and manufacture spurious exits, and CALL edges would make a call inside a
    loop look like the loop being left.  Trip counts are therefore
    per-*activation*: the number of back-edge traversals each time control
    enters the loop.
    """

    resolution: Resolution
    _dominators: Dict[int, Optional[int]] = field(default_factory=dict)
    _intra_succ: Dict[int, List[int]] = field(default_factory=dict)
    _intra_pred: Dict[int, List[int]] = field(default_factory=dict)
    _loops: List[Tuple[int, FrozenSet[int]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        cfg = self.resolution.cfg
        self._intra_succ = {start: [] for start in cfg.blocks}
        self._intra_pred = {start: [] for start in cfg.blocks}
        roots = {cfg.entry}
        for edge in cfg.edges:
            if edge.kind in INTRAPROCEDURAL_KINDS:
                self._intra_succ[edge.src].append(edge.dst)
                self._intra_pred[edge.dst].append(edge.src)
            elif edge.kind == EdgeKind.CALL:
                roots.add(edge.dst)
        self._dominators = self._intra_dominators(sorted(roots))
        self._loops = self._intra_loops()

    def _intra_dominators(self, roots: List[int]) -> Dict[int, Optional[int]]:
        """CHK immediate dominators over the multi-rooted intra view."""
        seen: Set[int] = {_VIRTUAL_ROOT}
        order: List[int] = []
        stack: List[Tuple[int, Iterator[int]]] = [(_VIRTUAL_ROOT, iter(roots))]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(self._intra_succ[child])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(node)
        order.reverse()
        position = {node: index for index, node in enumerate(order)}
        idom: Dict[int, int] = {_VIRTUAL_ROOT: _VIRTUAL_ROOT}

        def preds(node: int) -> List[int]:
            base = self._intra_pred.get(node, [])
            return base + [_VIRTUAL_ROOT] if node in roots else base

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]
                while position[b] > position[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == _VIRTUAL_ROOT:
                    continue
                new_idom: Optional[int] = None
                for pred in preds(node):
                    if pred in idom and pred in position:
                        new_idom = (
                            pred
                            if new_idom is None
                            else intersect(pred, new_idom)
                        )
                if new_idom is not None and idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True
        return {
            node: (None if value == _VIRTUAL_ROOT else value)
            for node, value in idom.items()
            if node != _VIRTUAL_ROOT
        }

    def _intra_loops(self) -> List[Tuple[int, FrozenSet[int]]]:
        """Natural loops of the intra view (bodies merged per header)."""
        bodies: Dict[int, Set[int]] = {}
        for src, dsts in self._intra_succ.items():
            if src not in self._dominators:
                continue
            for dst in dsts:
                if not self._dominates(dst, src):
                    continue
                body = bodies.setdefault(dst, {dst})
                stack = [src]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(
                        pred
                        for pred in self._intra_pred[node]
                        if pred in self._dominators
                    )
                bodies[dst] = body
        return sorted(
            (header, frozenset(body)) for header, body in bodies.items()
        )

    def _dominates(self, a: int, b: int) -> bool:
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = self._dominators.get(node)
        return False

    def _latches(self, header: int, body: FrozenSet[int]) -> Tuple[int, ...]:
        return tuple(
            sorted(
                src
                for src in body
                if header in self._intra_succ[src]
            )
        )

    def _inner_blocks(self, header: int, body: FrozenSet[int]) -> FrozenSet[int]:
        """Blocks of loops strictly nested inside ``(header, body)``."""
        nested: Set[int] = set()
        for other_header, other_body in self._loops:
            if other_header != header and other_body < body:
                nested.update(other_body)
        return frozenset(nested)

    def loop_affine(
        self,
        header: int,
        body: FrozenSet[int],
        register: int,
        use_pc: int,
    ) -> Optional[AffineValue]:
        """Resolve ``register`` at ``use_pc`` as affine in the iteration
        index of the loop ``(header, body)``.

        The use must sit at a point executed once per iteration; the
        pattern recognised is the classic one — a constant initialisation
        outside the loop plus self-increments (``addi r, r, c``) at points
        control-equivalent with the latch.
        """
        if register == 0:
            return AffineValue(0, 0)
        resolution = self.resolution
        cfg = resolution.cfg
        use_block = cfg.block_at(use_pc).start
        latches = self._latches(header, body)
        inner = self._inner_blocks(header, body)
        inside: List[int] = []
        outside: List[int] = []
        for def_register, def_address in resolution.reaching.at(use_pc):
            if def_register != register:
                continue
            if def_address == UNINITIALIZED:
                outside.append(def_address)
            elif cfg.block_at(def_address).start in body:
                inside.append(def_address)
            else:
                outside.append(def_address)
        if not inside:
            value = resolution.resolve(register, use_pc)
            if value.is_constant:
                return AffineValue(value.lo, 0)
            return None
        # Loop-invariant redefinition: every in-body definition produces the
        # same constant and executes before the use on every iteration.
        invariant = self._invariant_constant(inside, register, use_pc, use_block)
        if invariant is not None:
            return AffineValue(invariant, 0)
        # Otherwise every inside definition must be a once-per-iteration
        # self-increment (``addi r, r, c`` control-equivalent with the latch).
        step = 0
        before_use = 0
        for def_address in inside:
            instruction = resolution.instruction_at(def_address)
            if not (
                instruction.opcode is Opcode.ADDI
                and instruction.rd == register
                and instruction.rs1 == register
            ):
                return None
            def_block = cfg.block_at(def_address).start
            if def_block in inner:
                return None
            if not all(self._dominates(def_block, latch) for latch in latches):
                return None
            step += instruction.imm
            executes_before = (
                def_block == use_block and def_address < use_pc
            ) or (def_block != use_block and self._dominates(def_block, use_block))
            if executes_before:
                before_use += instruction.imm
        # The initial value comes from the definitions that reach the loop
        # entry from outside the body (the increment kills them at the use,
        # so they must be read off at the header).
        init: Optional[int] = None
        for def_register, def_address in resolution.reaching.at(header):
            if def_register != register:
                continue
            if (
                def_address != UNINITIALIZED
                and cfg.block_at(def_address).start in body
            ):
                continue  # the increment itself, flowing around the back edge
            value = resolution._resolve_definition(
                register, def_address, _MAX_RESOLVE_DEPTH
            )
            if not value.is_constant:
                return None
            if init is None:
                init = value.lo
            elif init != value.lo:
                return None
        if init is None:
            return None
        return AffineValue(init + before_use, step)

    def _invariant_constant(
        self, inside: List[int], register: int, use_pc: int, use_block: int
    ) -> Optional[int]:
        """The single constant every in-body definition of ``register``
        produces, when each definition also executes before the use on every
        iteration; None when the pattern does not hold."""
        resolution = self.resolution
        cfg = resolution.cfg
        value: Optional[int] = None
        for def_address in inside:
            produced = resolution._resolve_definition(
                register, def_address, _MAX_RESOLVE_DEPTH
            )
            if not produced.is_constant:
                return None
            if value is None:
                value = produced.lo
            elif value != produced.lo:
                return None
            def_block = cfg.block_at(def_address).start
            executes_before = (
                def_block == use_block and def_address < use_pc
            ) or (def_block != use_block and self._dominates(def_block, use_block))
            if not executes_before:
                return None
        return value

    def summarize(self) -> List[LoopSummary]:
        """A :class:`LoopSummary` for every natural loop, in header order."""
        summaries: List[LoopSummary] = []
        cfg = self.resolution.cfg
        for header, body in self._loops:
            latches = self._latches(header, body)
            exit_edges = [
                (src, dst)
                for src in sorted(body)
                for dst in self._intra_succ[src]
                if dst not in body
            ]
            exit_pc: Optional[int] = None
            trip: Optional[int] = None
            if len(exit_edges) == 1:
                exit_block = cfg.blocks[exit_edges[0][0]]
                terminator = exit_block.terminator
                if terminator.opcode in B_FORMAT and all(
                    self._dominates(exit_block.start, latch) for latch in latches
                ):
                    exit_pc = exit_block.end - 4
                    exit_on_taken = (
                        encoded_target(exit_pc, terminator) == exit_edges[0][1]
                    )
                    trip = self._solve_trip(
                        header, body, exit_pc, terminator, exit_on_taken,
                    )
            summaries.append(
                LoopSummary(
                    header=header,
                    blocks=body,
                    latches=latches,
                    exit_pc=exit_pc,
                    trip_count=trip,
                )
            )
        return summaries

    def _solve_trip(
        self,
        header: int,
        body: FrozenSet[int],
        exit_pc: int,
        terminator: Instruction,
        exit_on_taken: bool,
    ) -> Optional[int]:
        a = self.loop_affine(header, body, terminator.rs1, exit_pc)
        b = self.loop_affine(header, body, terminator.rs2, exit_pc)
        if a is None or b is None:
            return None
        relation = _EXIT_RELATION[terminator.opcode]
        if not exit_on_taken:
            relation = _NEGATED[relation]
        first = _resolve_relation(relation, a.base - b.base, a.step - b.step)
        if first is None:
            return None
        # Verify algebra at the boundary through the interpreter's own
        # predicate, and require both operands to stay in [0, 2^31) so the
        # unsigned register values coincide with the integer domain.
        predicate = BRANCH_SEMANTICS[terminator.opcode]
        for operand in (a, b):
            for j in (0, first):
                if not 0 <= operand.at(j) < _SIGN:
                    return None

        def exits_at(j: int) -> bool:
            taken = predicate(a.at(j) & _WORD_MAX, b.at(j) & _WORD_MAX)
            return taken == exit_on_taken

        if not exits_at(first):
            return None
        if first > 0 and exits_at(first - 1):
            return None
        return first


def loop_summaries(program: Program) -> List[LoopSummary]:
    """Loop summaries for ``program`` (convenience wrapper)."""
    return LoopAnalysis(resolution=resolution_for(program)).summarize()


# ----------------------------------------------------------------------
# The deterministic walk.
# ----------------------------------------------------------------------

class RegionInfo(NamedTuple):
    """What a branch-to-join skip must account for: the join block, every
    register the region (including called subroutines) can write, every
    conditional site whose occurrences the walk will not observe, and
    whether the region can write memory at all."""

    join: Optional[int]
    clobbers: FrozenSet[int]
    sites: Tuple[int, ...]
    has_store: bool


@dataclass
class WalkResult:
    """Exact per-site outcome streams from one deterministic walk.

    ``streams[pc]`` holds the site's first ``len(streams[pc])`` dynamic
    outcomes, in order; that length is the site's *horizon*.  A site enters
    ``poisoned`` the first time its occurrences stop being observable —
    unknown operands at the site, or residence inside a skipped region —
    and its stream stops growing (the recorded prefix stays exact).
    """

    streams: Dict[int, List[bool]]
    poisoned: Dict[int, str]
    observed_unknown: Dict[int, int]
    region_entries: Dict[int, int]
    region_sites: Dict[int, Tuple[int, ...]]
    known_conditionals: int
    observed_conditionals: int
    checkpoint: Dict[int, int]
    steps: int
    truncated: bool
    halted: bool
    stop_reason: str = "budget"
    stop_pc: int = -1
    global_stream: List[Tuple[int, bool]] = field(default_factory=list)
    global_exact: bool = True

    def horizon(self, pc: int) -> int:
        """Occurrences for which ``pc``'s outcomes are exactly known."""
        return len(self.streams.get(pc, []))

    @property
    def complete(self) -> bool:
        """True when the walk reproduced the execution's conditional-branch
        sequence exactly up to where it stopped — no region was ever
        skipped, so ``global_stream`` IS the dynamic branch trace."""
        return self.global_exact and not self.truncated


class _Walker:
    """Implementation of :func:`walk_program` (state bundled in a class so
    the region machinery can be memoized per program)."""

    def __init__(self, program: Program, cfg: ControlFlowGraph) -> None:
        self.program = program
        self.cfg = cfg
        self.ipdom = cfg.post_dominators(INTRAPROCEDURAL_KINDS)
        self._intra_succ: Dict[int, List[int]] = {}
        self._call_targets: Dict[int, List[int]] = {}
        for start in cfg.blocks:
            self._intra_succ[start] = [
                edge.dst
                for edge in cfg.successors(start)
                if edge.kind in INTRAPROCEDURAL_KINDS
            ]
            self._call_targets[start] = [
                edge.dst
                for edge in cfg.successors(start)
                if edge.kind == EdgeKind.CALL
            ]
        self._region_cache: Dict[int, RegionInfo] = {}
        self._proc_cache: Dict[
            int, Tuple[FrozenSet[int], Tuple[int, ...], bool]
        ] = {}
        self._proc_in_progress: Set[int] = set()

    # -- procedure summaries -------------------------------------------
    def _procedure_summary(
        self, entry: int
    ) -> Tuple[FrozenSet[int], Tuple[int, ...], bool]:
        """(clobbered registers, conditional sites, writes-memory) of the
        procedure whose body is reachable from ``entry`` along
        intraprocedural edges, including everything its own calls can do."""
        cached = self._proc_cache.get(entry)
        if cached is not None:
            return cached
        if entry in self._proc_in_progress:
            # Recursion: give the conservative answer (everything).
            return frozenset(range(1, 32)), (), True
        self._proc_in_progress.add(entry)
        try:
            clobbers: Set[int] = set()
            sites: Set[int] = set()
            seen: Set[int] = set()
            has_store = False
            stack = [entry]
            while stack:
                start = stack.pop()
                if start in seen:
                    continue
                seen.add(start)
                block = self.cfg.blocks[start]
                for pc, instruction in zip(block.addresses(), block.instructions):
                    clobbers.update(registers_written(instruction))
                    if instruction.opcode in B_FORMAT:
                        sites.add(pc)
                    elif instruction.opcode in (Opcode.ST, Opcode.STB):
                        has_store = True
                for callee in self._call_targets[start]:
                    sub = self._procedure_summary(callee)
                    clobbers.update(sub[0])
                    sites.update(sub[1])
                    has_store = has_store or sub[2]
                stack.extend(self._intra_succ[start])
            result = (frozenset(clobbers), tuple(sorted(sites)), has_store)
        finally:
            self._proc_in_progress.discard(entry)
        self._proc_cache[entry] = result
        return result

    # -- region skipping -----------------------------------------------
    def region_info(self, block_start: int) -> RegionInfo:
        """Join point and side effects of "this block's terminator went an
        unknown way": everything reachable intraprocedurally from its
        successors short of the immediate post-dominator."""
        cached = self._region_cache.get(block_start)
        if cached is not None:
            return cached
        join = self.ipdom.get(block_start)
        if join is None:
            info = RegionInfo(
                join=None, clobbers=frozenset(), sites=(), has_store=False
            )
            self._region_cache[block_start] = info
            return info
        clobbers: Set[int] = set()
        sites: Set[int] = set()
        seen: Set[int] = set()
        has_store = False
        stack = [s for s in self._intra_succ[block_start] if s != join]
        while stack:
            start = stack.pop()
            if start in seen or start == join:
                continue
            seen.add(start)
            block = self.cfg.blocks[start]
            for pc, instruction in zip(block.addresses(), block.instructions):
                clobbers.update(registers_written(instruction))
                if instruction.opcode in B_FORMAT:
                    sites.add(pc)
                elif instruction.opcode in (Opcode.ST, Opcode.STB):
                    has_store = True
            for callee in self._call_targets[start]:
                sub = self._procedure_summary(callee)
                clobbers.update(sub[0])
                sites.update(sub[1])
                has_store = has_store or sub[2]
            stack.extend(s for s in self._intra_succ[start] if s != join)
        info = RegionInfo(
            join=join,
            clobbers=frozenset(clobbers),
            sites=tuple(sorted(sites)),
            has_store=has_store,
        )
        self._region_cache[block_start] = info
        return info

    # -- the walk itself -----------------------------------------------
    def walk(self, budget: int, step_cap: Optional[int] = None) -> WalkResult:
        program = self.program
        instructions = program.instructions
        text_base = program.text_base
        count = len(instructions)
        if step_cap is None:
            step_cap = 200 * budget + 10_000

        regs: List[Optional[int]] = [0] * 32
        streams: Dict[int, List[bool]] = {}
        poisoned: Dict[int, str] = {}
        observed_unknown: Dict[int, int] = {}
        region_entries: Dict[int, int] = {}
        region_sites: Dict[int, Tuple[int, ...]] = {}
        checkpoint: Dict[int, int] = {}
        known = 0
        observed = 0
        steps = 0
        truncated = False
        halted = False
        checkpointed = False
        stop_reason = "budget"
        pc = program.entry
        global_stream: List[Tuple[int, bool]] = []
        global_exact = True
        # Concrete memory: the loaded data segment, word-indexed like
        # Memory._words.  A None entry is a known address holding an unknown
        # value; mem_valid False means an unskipped store to an unknown
        # address (or a skipped region containing stores) may have clobbered
        # anything, so every load is ⊤ from then on.
        mem: Dict[int, Optional[int]] = {
            address >> 2: word & _WORD_MAX for address, word in program.data
        }
        mem_valid = True

        def poison(site: int, reason: str) -> None:
            if site not in poisoned:
                poisoned[site] = reason

        def nonlocal_exact() -> None:
            nonlocal global_exact
            global_exact = False

        def skip_unknown(branch_pc: int) -> Optional[int]:
            """Handle an unresolvable terminator: invalidate and rejoin."""
            nonlocal mem_valid
            block_start = self.cfg.block_at(branch_pc).start
            info = self.region_info(block_start)
            if info.join is None:
                return None
            nonlocal_exact()
            region_entries[branch_pc] = region_entries.get(branch_pc, 0) + 1
            region_sites[branch_pc] = info.sites
            for register in info.clobbers:
                if register:
                    regs[register] = None
            for site in info.sites:
                poison(site, "skipped-region")
            if info.has_store:
                mem_valid = False
            return info.join

        while steps < step_cap and known < budget:
            index = (pc - text_base) >> 2
            if pc & 3 or not 0 <= index < count:
                truncated = True
                stop_reason = "bad-fetch"
                break
            op, rd, rs1, rs2, imm = instructions[index]
            steps += 1
            next_pc = pc + 4
            opcode = Opcode(op)

            if opcode in B_FORMAT:
                a = regs[rs1]
                b = regs[rs2]
                observed += 1
                if a is not None and b is not None:
                    taken = BRANCH_SEMANTICS[opcode](a, b)
                    known += 1
                    if global_exact:
                        global_stream.append((pc, taken))
                    if pc not in poisoned:
                        streams.setdefault(pc, []).append(taken)
                    if taken:
                        next_pc = pc + 4 + 4 * imm
                else:
                    observed_unknown[pc] = observed_unknown.get(pc, 0) + 1
                    poison(pc, "unknown-operands")
                    nonlocal_exact()
                    join = skip_unknown(pc)
                    if join is None:
                        truncated = True
                        stop_reason = "no-join"
                        break
                    next_pc = join
                if not checkpointed and observed >= budget:
                    checkpointed = True
                    checkpoint = {site: len(s) for site, s in streams.items()}
            elif opcode in IMM_SEMANTICS:
                if rd:
                    base = regs[rs1] if opcode is not Opcode.LUI else 0
                    if base is not None:
                        regs[rd] = IMM_SEMANTICS[opcode](base, imm)
                    else:
                        regs[rd] = None
            elif opcode in ALU_SEMANTICS:
                if rd:
                    a = regs[rs1]
                    b = regs[rs2]
                    if a is not None and b is not None:
                        try:
                            regs[rd] = ALU_SEMANTICS[opcode](a, b)
                        except ZeroDivisionError:
                            # The CPU would fault here; the walk has
                            # followed real paths, so stop faithfully.
                            truncated = True
                            stop_reason = "divide-fault"
                            break
                    else:
                        regs[rd] = None
            elif opcode is Opcode.LD:
                if rd:
                    base = regs[rs1]
                    if mem_valid and base is not None:
                        regs[rd] = mem.get((base + imm) >> 2, 0)
                    else:
                        regs[rd] = None
            elif opcode is Opcode.LDB:
                if rd:
                    base = regs[rs1]
                    if mem_valid and base is not None:
                        address = base + imm
                        word = mem.get(address >> 2, 0)
                        if word is None:
                            regs[rd] = None
                        else:
                            regs[rd] = (word >> ((3 - (address & 3)) * 8)) & 0xFF
                    else:
                        regs[rd] = None
            elif opcode is Opcode.ST:
                base = regs[rs1]
                if base is None:
                    mem_valid = False
                elif mem_valid:
                    mem[(base + imm) >> 2] = regs[rd]
            elif opcode is Opcode.STB:
                base = regs[rs1]
                value = regs[rd]
                if base is None:
                    mem_valid = False
                elif mem_valid:
                    address = base + imm
                    windex = address >> 2
                    word = mem.get(windex, 0)
                    if word is None or value is None:
                        mem[windex] = None
                    else:
                        shift = (3 - (address & 3)) * 8
                        mem[windex] = (
                            (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
                        )
            elif opcode is Opcode.NOP:
                pass
            elif opcode is Opcode.BR:
                next_pc = pc + 4 + 4 * imm
            elif opcode is Opcode.BSR:
                regs[1] = next_pc
                next_pc = pc + 4 + 4 * imm
            elif opcode is Opcode.JMP:
                target = regs[rs1]
                if target is not None:
                    next_pc = target
                else:
                    join = skip_unknown(pc)
                    if join is None:
                        truncated = True
                        stop_reason = "no-join"
                        break
                    next_pc = join
            elif opcode is Opcode.JSR:
                target = regs[rs1]
                if target is not None:
                    regs[1] = next_pc
                    next_pc = target
                else:
                    # Unknown indirect call: every candidate callee's side
                    # effects, then the continuation.  The callee's rts
                    # reaches the continuation *through* r1, so r1 holds
                    # exactly the continuation address when control resumes.
                    block_start = self.cfg.block_at(pc).start
                    nonlocal_exact()
                    candidates = self._call_targets[block_start]
                    if not candidates:
                        mem_valid = False
                        for register in range(2, 32):
                            regs[register] = None
                    for callee in candidates:
                        sub = self._procedure_summary(callee)
                        for register in sub[0]:
                            if register:
                                regs[register] = None
                        for site in sub[1]:
                            poison(site, "skipped-region")
                        if sub[2]:
                            mem_valid = False
                    regs[1] = next_pc
            elif opcode is Opcode.RTS:
                target = regs[1]
                if target is None:
                    truncated = True
                    stop_reason = "unknown-return"
                    break
                next_pc = target
            elif opcode is Opcode.HALT:
                halted = True
                stop_reason = "halt"
                break
            pc = next_pc

        if steps >= step_cap:
            truncated = True
            stop_reason = "step-cap"
        if not checkpointed:
            checkpoint = {site: len(s) for site, s in streams.items()}
        return WalkResult(
            streams=streams,
            poisoned=poisoned,
            observed_unknown=observed_unknown,
            region_entries=region_entries,
            region_sites=region_sites,
            known_conditionals=known,
            observed_conditionals=observed,
            checkpoint=checkpoint,
            steps=steps,
            truncated=truncated,
            halted=halted,
            stop_reason=stop_reason,
            stop_pc=pc,
            global_stream=global_stream,
            global_exact=global_exact,
        )


def walk_program(
    program: Program,
    budget: int,
    cfg: Optional[ControlFlowGraph] = None,
    step_cap: Optional[int] = None,
) -> WalkResult:
    """Run the deterministic walk until ``budget`` conditional branches
    have been evaluated (or the program halts / becomes unresolvable)."""
    if cfg is None:
        cfg = build_cfg(program)
    return _Walker(program, cfg).walk(budget, step_cap)
