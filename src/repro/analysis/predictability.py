"""Static branch-predictability classification and per-scheme bounds.

Built on :mod:`repro.analysis.absint`: the deterministic walk reconstructs
each conditional site's exact outcome stream (up to its *horizon*), the
range analysis proves branches one-sided forever, and the loop analysis
attaches closed-form trip counts.  From those three inputs every static
conditional site is placed in one predictability class:

* ``constant`` — one outcome for every occurrence.  Proved analytically
  (decisive operand ranges — the outcome holds for *all* executions) or
  observed over the whole stream.
* ``loop-periodic(p)`` — the outcome stream is eventually periodic with
  minimal period ``p`` (the classic ``taken^(p-1)·not-taken`` loop-exit
  shape, but any repeating pattern qualifies).  Loop trip counts line up:
  a counted loop's backward latch has period ``trip_count + 1``.
* ``correlated(d)`` — the outcome is a function of the most recent
  outcomes of ``d`` listed *source* sites: some operand's reaching
  definitions form a φ whose selection is controlled by other conditional
  branches (a def-use/path-condition walk finds them).
* ``data-dependent`` — none of the above: the static H2P candidate set.

For every site × scheme the analysis derives a correct-prediction interval
(:class:`SchemeBound`).  When the walk is *complete* (it reproduced the
execution's conditional sequence exactly — true for every bundled
workload), bounds are tight for **all** schemes: the analysis replays the
actual predictor implementations over the statically reconstructed stream,
so ``lower == upper`` equals what the simulator must measure.  When a
stream is only partially known, self-contained schemes (whose predictions
for a site depend only on that site's own stream — AlwaysTaken,
AlwaysNotTaken, BTFN, Profile, LS over an ideal HRT, PAp) still get exact
partial replay plus a sound slack term, while shared-state schemes (AT's
global pattern table, GAg, gshare, and the modern subsystem) degrade to
``[0, n]`` with a replay *estimate*.

The modern schemes (:mod:`repro.predictors.modern`) bound the same way —
replay over the reconstructed global stream — but their *rationale*
connects to the static classes differently from the 1991 designs:

* the **perceptron** learns any *linearly separable* function of the last
  ``h`` global outcomes, so a ``correlated(d)`` site is learnable exactly
  when its ``d`` source outcomes all fall inside the history window and
  combine linearly; its bound therefore tightens with ``depth <= h`` and
  the replay shows where nonlinear combinations (XOR-like correlations)
  cap it;
* **TAGE** is bounded by its *longest-history table* (``history_length``
  of the spec — 32 bits at four tables): periodic or correlated behaviour
  whose span exceeds that window cannot be captured by any tagged entry,
  which is exactly the slack the replay estimate exposes on long-period
  loop sites.

The closed-form steady-state results quoted in the paper's terms (LS
misses ~2 per period with LT, 1 with A2; two-level AT with ``k >= p``
perfect after warmup) are exposed via :func:`automaton_constant_misses`
and :func:`automaton_periodic_misses` and validated by unit tests; the
replay bounds are what cross-validation asserts against the simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.analysis.absint import (
    INTRAPROCEDURAL_KINDS,
    LoopAnalysis,
    LoopSummary,
    Resolution,
    WalkResult,
    reaching_definitions,
    walk_program,
)
from repro.analysis.branches import BranchSite, conditional_sites
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow import UNINITIALIZED
from repro.isa.instructions import B_FORMAT, Opcode
from repro.isa.program import Program
from repro.predictors.automata import Automaton
from repro.predictors.base import ConditionalBranchPredictor
from repro.predictors.extensions import PApPredictor
from repro.predictors.spec import parse_spec
from repro.trace.record import BranchClass, BranchRecord


class PredictabilityClass(enum.Enum):
    """The four-way static taxonomy (ISSUE/PAPER terminology)."""

    CONSTANT = "constant"
    LOOP_PERIODIC = "loop-periodic"
    CORRELATED = "correlated"
    DATA_DEPENDENT = "data-dependent"


# ----------------------------------------------------------------------
# Scheme registry.
# ----------------------------------------------------------------------

class AnalysisScheme(NamedTuple):
    """One prediction scheme the static analysis bounds.

    ``self_contained`` marks schemes whose predictions at a site are a
    function of that site's own outcome stream alone, so per-site replay is
    exact even without the global interleaving.  Shared-state schemes (the
    global pattern table, global history registers) need the complete
    global stream for tight bounds.

    ``spec`` is the registry spec string when the scheme has one — those
    schemes ride the fused sweep kernel
    (:func:`repro.sim.analysis.per_site_accuracy_specs`) during
    cross-validation; ``None`` (extension predictors like PAp) stays on the
    per-record replay loop.
    """

    name: str
    factory: Callable[[], ConditionalBranchPredictor]
    self_contained: bool
    spec: Optional[str] = None


def _spec_factory(spec: str) -> Callable[[], ConditionalBranchPredictor]:
    parsed = parse_spec(spec)
    return lambda: parsed.build()


ANALYSIS_SCHEMES: Tuple[AnalysisScheme, ...] = (
    AnalysisScheme("AlwaysTaken", _spec_factory("AlwaysTaken"), True, "AlwaysTaken"),
    AnalysisScheme(
        "AlwaysNotTaken", _spec_factory("AlwaysNotTaken"), True, "AlwaysNotTaken"
    ),
    AnalysisScheme("BTFN", _spec_factory("BTFN"), True, "BTFN"),
    AnalysisScheme(
        "LS(IHRT(,LT),,)", _spec_factory("LS(IHRT(,LT),,)"), True, "LS(IHRT(,LT),,)"
    ),
    AnalysisScheme(
        "LS(IHRT(,A2),,)", _spec_factory("LS(IHRT(,A2),,)"), True, "LS(IHRT(,A2),,)"
    ),
    AnalysisScheme("PAp(8,A2)", lambda: PApPredictor(8), True),
    AnalysisScheme(
        "AT(IHRT(,12SR),PT(2^12,A2),)",
        _spec_factory("AT(IHRT(,12SR),PT(2^12,A2),)"),
        False,
        "AT(IHRT(,12SR),PT(2^12,A2),)",
    ),
    AnalysisScheme("GAg(8,A2)", _spec_factory("GAg(8)"), False, "GAg(8)"),
    AnalysisScheme("gshare(8,A2)", _spec_factory("gshare(8)"), False, "gshare(8)"),
    # the modern subsystem: global-history state shared across sites, so
    # not self-contained; bounds are tight on complete walks (replay) and
    # degrade to [0, n] + estimate otherwise (see module docstring for the
    # correlated(d)-vs-h and longest-table rationale)
    AnalysisScheme(
        "perceptron(12,512)",
        _spec_factory("perceptron(12,512)"),
        False,
        "perceptron(12,512)",
    ),
    AnalysisScheme("tage(4,9)", _spec_factory("tage(4,9)"), False, "tage(4,9)"),
)

#: Scheme whose misprediction mass ranks the static H2P candidates; chosen
#: because it is the paper's per-address baseline (so "hard for LS" is
#: exactly the population the two-level schemes are meant to win on).
REFERENCE_SCHEME = "LS(IHRT(,A2),,)"

#: Profile is bounded in closed form (majority count), not by replay, so it
#: is not in the replay registry; cross-validation still checks it.
PROFILE_SCHEME = "Profile"


# ----------------------------------------------------------------------
# Closed-form automaton results (documentation + unit-test targets).
# ----------------------------------------------------------------------

def automaton_constant_misses(automaton: Automaton, outcome: bool) -> int:
    """Mispredictions of a per-site automaton on an all-``outcome`` stream
    before it locks in (the warmup term of the ``constant`` class)."""
    state = automaton.init_state
    misses = 0
    for _ in range(automaton.num_states + 1):
        if automaton.predictions[state] != outcome:
            misses += 1
        state = automaton.transitions[state][1 if outcome else 0]
        if automaton.predictions[state] == outcome and all(
            # A state that predicts the outcome and self-loops on it stays.
            automaton.transitions[state][1 if outcome else 0] == state
            for _ in (0,)
        ):
            break
    return misses


def automaton_periodic_misses(
    automaton: Automaton, pattern: Sequence[bool]
) -> Tuple[int, int]:
    """(transient misses, steady-state misses per period) of a per-site
    automaton run on a repeating ``pattern`` — e.g. ``(True,)*(p-1) +
    (False,)`` for a counted loop.  LT yields 2 per period, A2 yields 1,
    which is the paper's Lee & Smith loop-exit penalty."""
    state = automaton.init_state
    seen: Dict[int, Tuple[int, int]] = {}
    misses = 0
    steps = 0
    while True:
        key = state
        if key in seen:
            transient_steps, transient_misses = seen[key]
            period_misses = misses - transient_misses
            del transient_steps
            return transient_misses, period_misses
        seen[key] = (steps, misses)
        for outcome in pattern:
            if automaton.predictions[state] != outcome:
                misses += 1
            state = automaton.transitions[state][1 if outcome else 0]
            steps += 1


# ----------------------------------------------------------------------
# Stream shape.
# ----------------------------------------------------------------------

_MAX_PERIOD = 64


def _loop_stream_matches(
    stream: Sequence[bool], trip: int, continue_taken: bool
) -> bool:
    """True when ``stream`` is consistent with a counted-loop latch of the
    given trip count: runs of exactly ``trip`` continue-direction outcomes
    separated by single exit outcomes (the final run may be truncated by
    the analysis horizon)."""
    if trip <= 0:
        return False
    run = 0
    for taken in stream:
        if taken == continue_taken:
            run += 1
            if run > trip:
                return False
        else:
            if run != trip:
                return False
            run = 0
    return True


def eventual_period(stream: Sequence[bool]) -> Optional[Tuple[int, int]]:
    """Minimal ``(period, transient)`` of an eventually periodic stream.

    Requires at least three full repetitions inside the stream and a
    transient no longer than a quarter of it; returns None for aperiodic
    (or too-short) streams.  ``period == 1`` means eventually constant and
    is reported only when the transient is non-empty (a pure constant
    stream is the ``constant`` class, not a period).
    """
    n = len(stream)
    for period in range(1, min(_MAX_PERIOD, n // 3) + 1):
        start = n - period
        while start > 0 and stream[start - 1] == stream[start - 1 + period]:
            start -= 1
        if start == 0 and all(x == stream[0] for x in stream[:period]):
            continue  # fully constant: not periodic, the constant class
        if start <= n // 4 and n - start >= 3 * period:
            return period, start
    return None


# ----------------------------------------------------------------------
# Correlation sources: the def-use / path-condition walk.
# ----------------------------------------------------------------------

class _CorrelationFinder:
    """Finds, per conditional site, the conditional *source* sites whose
    outcomes select among the reaching definitions of its operands."""

    def __init__(self, resolution: Resolution) -> None:
        self.cfg = resolution.cfg
        self.resolution = resolution
        self.ipdom = self.cfg.post_dominators(INTRAPROCEDURAL_KINDS)
        self._intra_succ: Dict[int, List[int]] = {
            start: [
                edge.dst
                for edge in self.cfg.successors(start)
                if edge.kind in INTRAPROCEDURAL_KINDS
            ]
            for start in self.cfg.blocks
        }
        self._control_deps = self._control_dependence()
        self._defs_cache: Dict[int, Dict[int, List[int]]] = {}

    def _control_dependence(self) -> Dict[int, Set[int]]:
        """Control dependence in one pass (Ferrante–Ottenstein–Warren on
        the intraprocedural post-dominator tree): for every conditional
        branch edge ``S → succ``, every block on the post-dominator chain
        from ``succ`` up to (excluding) ``ipdom(S)`` is control-dependent
        on the branch terminating ``S``."""
        deps: Dict[int, Set[int]] = {start: set() for start in self.cfg.blocks}
        for start, successors in self._intra_succ.items():
            if len(successors) < 2:
                continue
            terminator = self.cfg.blocks[start].terminator
            if terminator.opcode not in B_FORMAT:
                continue
            branch_pc = self.cfg.blocks[start].end - 4
            stop = self.ipdom.get(start)
            for succ in successors:
                node: Optional[int] = succ
                while node is not None and node != stop:
                    deps.setdefault(node, set()).add(branch_pc)
                    node = self.ipdom.get(node)
        return deps

    def _controllers(self, block: int) -> Set[int]:
        """Conditional branch pcs block ``block`` is control-dependent on."""
        return self._control_deps.get(block, set())

    #: A use with more reaching definitions than this is not a φ the walk
    #: should chase: the context-insensitive RETURN edges merge every call
    #: site's state, and past this threshold the set is that pollution,
    #: not program structure.
    _MAX_PHI_WIDTH = 8

    def _real_definitions(self, register: int, use_pc: int) -> List[int]:
        """Non-virtual definition addresses of ``register`` reaching
        ``use_pc``, cached per pc (one reaching-set scan serves every
        register queried at that pc)."""
        by_register = self._defs_cache.get(use_pc)
        if by_register is None:
            by_register = {}
            for def_register, def_address in self.resolution.reaching.at(use_pc):
                if def_address != UNINITIALIZED:
                    by_register.setdefault(def_register, []).append(def_address)
            self._defs_cache[use_pc] = by_register
        return by_register.get(register, [])

    def sources(self, pc: int, depth: int = 4) -> Tuple[int, ...]:
        """Source sites correlated with the conditional at ``pc``.

        Walks the operands' reaching definitions transitively (bounded by
        ``depth``); wherever an operand value is a φ — two or more distinct
        definitions reach a use — the branches controlling the defining
        blocks are the sites whose outcomes the value (and therefore this
        site's outcome) is a function of.
        """
        resolution = self.resolution
        cfg = resolution.cfg
        sources: Set[int] = set()
        seen: Set[Tuple[int, int]] = set()
        instruction = resolution.instruction_at(pc)
        work: List[Tuple[int, int, int]] = [
            (register, pc, depth)
            for register in (instruction.rs1, instruction.rs2)
            if register
        ]
        while work:
            register, use_pc, budget = work.pop()
            if budget <= 0 or (register, use_pc) in seen:
                continue
            seen.add((register, use_pc))
            real = self._real_definitions(register, use_pc)
            if len(real) > self._MAX_PHI_WIDTH:
                continue
            if len(real) >= 2:
                for def_address in real:
                    block = cfg.block_at(def_address).start
                    sources.update(self._controllers(block))
            for def_address in real:
                defining = resolution.instruction_at(def_address)
                if defining.opcode in (Opcode.LD, Opcode.LDB):
                    continue  # memory: tracked no further
                for source_register in (defining.rs1, defining.rs2):
                    if source_register:
                        work.append((source_register, def_address, budget - 1))
        sources.discard(pc)
        return tuple(sorted(sources))


# ----------------------------------------------------------------------
# Bounds.
# ----------------------------------------------------------------------

class SchemeBound(NamedTuple):
    """Correct-prediction interval for one site under one scheme.

    ``lower <= correct <= upper`` over ``occurrences`` dynamic executions;
    ``exact`` means the interval is a point derived from exact replay.
    ``expected`` is the replay estimate when the interval is not tight.
    """

    scheme: str
    occurrences: int
    lower: int
    upper: int
    exact: bool
    expected: Optional[int] = None

    def contains(self, correct: int) -> bool:
        return self.lower <= correct <= self.upper


@dataclass
class SiteReport:
    """Everything the analysis knows about one static conditional site."""

    site: BranchSite
    predictability: PredictabilityClass
    occurrences: int
    taken_count: int
    horizon: int
    stream_exact: bool
    analytic_constant: Optional[bool] = None
    period: Optional[int] = None
    transient: int = 0
    sources: Tuple[int, ...] = ()
    trip_count: Optional[int] = None
    poisoned: Optional[str] = None
    bounds: Dict[str, SchemeBound] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """``d`` of ``correlated(d)``: number of source sites whose most
        recent outcomes determine this site's outcome."""
        return len(self.sources)

    @property
    def misprediction_mass(self) -> Optional[int]:
        """Reference-scheme mispredictions (the H2P ranking key)."""
        bound = self.bounds.get(REFERENCE_SCHEME)
        if bound is None or not bound.exact:
            return None
        return bound.occurrences - bound.lower

    def as_dict(self) -> Dict[str, object]:
        return {
            "pc": self.site.pc,
            "label": self.site.label,
            "opcode": self.site.opcode.name.lower(),
            "target": self.site.target,
            "class": self.predictability.value,
            "occurrences": self.occurrences,
            "taken": self.taken_count,
            "horizon": self.horizon,
            "stream_exact": self.stream_exact,
            "analytic_constant": self.analytic_constant,
            "period": self.period,
            "transient": self.transient,
            "sources": list(self.sources),
            "depth": self.depth,
            "trip_count": self.trip_count,
            "poisoned": self.poisoned,
            "bounds": {
                name: {
                    "occurrences": bound.occurrences,
                    "lower": bound.lower,
                    "upper": bound.upper,
                    "exact": bound.exact,
                    "expected": bound.expected,
                }
                for name, bound in sorted(self.bounds.items())
            },
        }


@dataclass
class PredictabilityReport:
    """The full static predictability analysis of one program."""

    name: str
    scale: int
    sites: Dict[int, SiteReport]
    walk_complete: bool
    walk_stop_reason: str
    known_conditionals: int
    loops: List[LoopSummary]
    reference_scheme: str = REFERENCE_SCHEME

    @property
    def class_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {cls.value: 0 for cls in PredictabilityClass}
        for report in self.sites.values():
            counts[report.predictability.value] += 1
        return counts

    def h2p_ranking(self) -> List[Tuple[int, int]]:
        """Static H2P candidates: ``(pc, misprediction mass)`` under the
        reference scheme, heaviest first (pc breaks ties)."""
        ranked = [
            (report.site.pc, mass)
            for report in self.sites.values()
            if (mass := report.misprediction_mass) is not None and mass > 0
        ]
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return ranked

    def h2p_top(self, n: int = 5) -> List[int]:
        return [pc for pc, _ in self.h2p_ranking()[:n]]

    def as_dict(self) -> Dict[str, object]:
        """The ``repro analyze`` JSON v1 payload for one program."""
        return {
            "version": 1,
            "name": self.name,
            "scale": self.scale,
            "walk": {
                "complete": self.walk_complete,
                "stop_reason": self.walk_stop_reason,
                "known_conditionals": self.known_conditionals,
            },
            "classes": self.class_counts,
            "reference_scheme": self.reference_scheme,
            "h2p": [
                {"pc": pc, "mass": mass} for pc, mass in self.h2p_ranking()[:10]
            ],
            "loops": [
                {
                    "header": summary.header,
                    "exit_pc": summary.exit_pc,
                    "trip_count": summary.trip_count,
                }
                for summary in self.loops
            ],
            "sites": [
                report.as_dict() for _, report in sorted(self.sites.items())
            ],
        }


def _records_from_stream(
    stream: Sequence[Tuple[int, bool]], targets: Dict[int, int]
) -> List[BranchRecord]:
    """Reconstruct conditional branch records from the walk's sequence."""
    return [
        BranchRecord(
            pc=pc,
            cls=BranchClass.CONDITIONAL,
            taken=taken,
            target=targets[pc],
        )
        for pc, taken in stream
    ]


def _per_site_all_schemes(
    schemes: Sequence[AnalysisScheme],
    records: Sequence[BranchRecord],
) -> Dict[str, Dict[int, Tuple[int, int]]]:
    """(correct, total) per site for every scheme over the complete stream.

    Registry-spec schemes ride the fused sweep kernel
    (:func:`repro.sim.analysis.per_site_accuracy_specs` — one pass, shared
    per-pc grouping and history windows); schemes without a spec, or every
    scheme when the vector backend is unavailable, fall back to the exact
    same per-record replay the kernel is verified against.
    """
    from repro.sim.analysis import per_site_accuracy_specs

    spec_map = {
        scheme.name: scheme.spec for scheme in schemes if scheme.spec is not None
    }
    fused = per_site_accuracy_specs(spec_map, records) if spec_map else None
    per_scheme: Dict[str, Dict[int, Tuple[int, int]]] = dict(fused or {})
    for scheme in schemes:
        if scheme.name not in per_scheme:
            per_scheme[scheme.name] = _replay_per_site(scheme.factory(), records)
    return per_scheme


def _replay_per_site(
    predictor: ConditionalBranchPredictor,
    records: Sequence[BranchRecord],
) -> Dict[int, Tuple[int, int]]:
    """(correct, total) per site from replaying ``records`` — the same loop
    as :func:`repro.sim.analysis.per_site_accuracy`, kept dependency-free
    so the analysis package works without the vector simulator."""
    correct: Dict[int, int] = {}
    total: Dict[int, int] = {}
    for record in records:
        prediction = predictor.predict(record.pc, record.target)
        predictor.update(record.pc, record.target, record.taken)
        total[record.pc] = total.get(record.pc, 0) + 1
        if prediction == record.taken:
            correct[record.pc] = correct.get(record.pc, 0) + 1
    return {pc: (correct.get(pc, 0), total[pc]) for pc in total}


def _profile_bound(occurrences: int, taken_count: int) -> SchemeBound:
    """Closed-form Profile bound: the per-site majority (ties taken) is
    trained on the same stream it predicts, so correct = majority count."""
    predicts_taken = 2 * taken_count >= occurrences
    correct = taken_count if predicts_taken else occurrences - taken_count
    return SchemeBound(
        scheme=PROFILE_SCHEME,
        occurrences=occurrences,
        lower=correct,
        upper=correct,
        exact=True,
        expected=correct,
    )


# ----------------------------------------------------------------------
# The analysis entry point.
# ----------------------------------------------------------------------

def analyze_program(
    program: Program,
    scale: int,
    name: str = "program",
    cfg: Optional[ControlFlowGraph] = None,
    schemes: Sequence[AnalysisScheme] = ANALYSIS_SCHEMES,
) -> PredictabilityReport:
    """Classify every conditional site of ``program`` and bound every
    scheme's per-site accuracy at trace scale ``scale`` (the simulator's
    ``max_conditional_branches``)."""
    if cfg is None:
        cfg = build_cfg(program)
    resolution = Resolution(cfg=cfg, reaching=reaching_definitions(cfg))
    loop_analysis = LoopAnalysis(resolution=resolution)
    loops = loop_analysis.summarize()
    walk = walk_program(program, scale, cfg=cfg)
    finder = _CorrelationFinder(resolution)

    sites = conditional_sites(program)
    targets = {
        site.pc: site.target for site in sites if site.target is not None
    }

    trip_by_exit = {
        summary.exit_pc: summary.trip_count
        for summary in loops
        if summary.exit_pc is not None
    }
    loop_by_exit = {
        summary.exit_pc: summary for summary in loops
        if summary.exit_pc is not None
    }

    # Occurrence counts at this scale.  When the walk is complete its
    # per-site stream lengths ARE the dynamic counts; otherwise they are
    # exact up to each site's horizon (a lower bound thereafter).
    reports: Dict[int, SiteReport] = {}
    for site in sites:
        stream = walk.streams.get(site.pc, [])
        occurrences = len(stream)
        if occurrences == 0:
            continue  # never executed at this scale: nothing to bound
        taken_count = sum(stream)
        analytic = resolution.branch_decision(site.pc)
        poisoned = walk.poisoned.get(site.pc)
        stream_exact = poisoned is None or walk.complete

        period_info = eventual_period(stream)
        sources = finder.sources(site.pc)
        trip = trip_by_exit.get(site.pc)
        if analytic is not None or taken_count in (0, occurrences):
            predictability = PredictabilityClass.CONSTANT
            period_info = None
        elif period_info is not None:
            predictability = PredictabilityClass.LOOP_PERIODIC
        elif trip is not None and _loop_stream_matches(
            stream,
            trip,
            site.target is not None
            and site.target in loop_by_exit[site.pc].blocks,
        ):
            # A counted loop whose latch the stream confirms but which does
            # not repeat often enough for observational period detection
            # (e.g. a single activation): the analytic trip supplies the
            # period directly.
            predictability = PredictabilityClass.LOOP_PERIODIC
            period_info = (trip + 1, 0)
        elif sources:
            predictability = PredictabilityClass.CORRELATED
        else:
            predictability = PredictabilityClass.DATA_DEPENDENT

        reports[site.pc] = SiteReport(
            site=site,
            predictability=predictability,
            occurrences=occurrences,
            taken_count=taken_count,
            horizon=walk.horizon(site.pc),
            stream_exact=stream_exact,
            analytic_constant=analytic,
            period=period_info[0] if period_info else None,
            transient=period_info[1] if period_info else 0,
            sources=sources if predictability is PredictabilityClass.CORRELATED else (),
            trip_count=trip_by_exit.get(site.pc),
            poisoned=poisoned,
        )

    # -- bounds ---------------------------------------------------------
    if walk.complete:
        records = _records_from_stream(walk.global_stream, targets)
        per_scheme = _per_site_all_schemes(schemes, records)
        for scheme in schemes:
            per_site = per_scheme[scheme.name]
            for pc, (correct, total) in per_site.items():
                report = reports.get(pc)
                if report is None:
                    continue
                report.bounds[scheme.name] = SchemeBound(
                    scheme=scheme.name,
                    occurrences=total,
                    lower=correct,
                    upper=correct,
                    exact=True,
                    expected=correct,
                )
    else:
        for scheme in schemes:
            for pc, report in reports.items():
                stream = walk.streams.get(pc, [])
                site_records = [
                    BranchRecord(
                        pc=pc,
                        cls=BranchClass.CONDITIONAL,
                        taken=taken,
                        target=targets[pc],
                    )
                    for taken in stream
                ]
                replay = _replay_per_site(scheme.factory(), site_records)
                correct = replay.get(pc, (0, 0))[0]
                n = report.occurrences
                if scheme.self_contained and report.stream_exact:
                    bound = SchemeBound(
                        scheme=scheme.name,
                        occurrences=n,
                        lower=correct,
                        upper=correct,
                        exact=True,
                        expected=correct,
                    )
                else:
                    bound = SchemeBound(
                        scheme=scheme.name,
                        occurrences=n,
                        lower=0,
                        upper=n,
                        exact=False,
                        expected=correct,
                    )
                report.bounds[scheme.name] = bound

    for report in reports.values():
        report.bounds[PROFILE_SCHEME] = (
            _profile_bound(report.occurrences, report.taken_count)
            if report.stream_exact
            else SchemeBound(
                scheme=PROFILE_SCHEME,
                occurrences=report.occurrences,
                lower=0,
                upper=report.occurrences,
                exact=False,
                expected=None,
            )
        )

    return PredictabilityReport(
        name=name,
        scale=scale,
        sites=reports,
        walk_complete=walk.complete,
        walk_stop_reason=walk.stop_reason,
        known_conditionals=walk.known_conditionals,
        loops=loops,
    )
