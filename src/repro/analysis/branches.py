"""Static branch-site extraction.

The static analog of the trace pipeline's census: every branch instruction
in a program, classified per the paper's section 4 taxonomy, with its
encoded target, backward/forward direction and the static BTFN prediction —
all computed straight from the decoding, without executing anything.

Register-indirect control flow (``jmp``/``jsr``/``rts``) has no encoded
target, so those sites carry ``target=None``; direction and BTFN are
defined only for sites with a static target.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.isa.instructions import B_FORMAT, Opcode, branch_class_of
from repro.isa.program import Program
from repro.trace.record import BranchClass

_IMMEDIATE_TARGET = B_FORMAT | {Opcode.BR, Opcode.BSR}


class BranchSite(NamedTuple):
    """One static branch instruction.

    Attributes:
        pc: byte address of the branch.
        opcode: the branch mnemonic's opcode.
        cls: paper taxonomy class (conditional / return / imm / reg).
        target: encoded taken-direction target, or None when the target is
            register-indirect (``jmp``/``jsr``/``rts``).
        is_call: True for ``bsr``/``jsr``.
        label: symbolic name for ``pc`` when the symbol table offers one.
    """

    pc: int
    opcode: Opcode
    cls: BranchClass
    target: Optional[int]
    is_call: bool
    label: Optional[str]

    @property
    def is_backward(self) -> Optional[bool]:
        """Whether the encoded target precedes the branch; None if indirect."""
        return None if self.target is None else self.target < self.pc

    @property
    def btfn_taken(self) -> Optional[bool]:
        """The static BTFN prediction for a conditional site.

        Matches :class:`repro.predictors.static_schemes.BTFNPredictor`:
        predict taken exactly when the target is backward.  None for
        non-conditional sites (they need no direction prediction).
        """
        if self.cls is not BranchClass.CONDITIONAL or self.target is None:
            return None
        return self.target < self.pc


def _nearest_labels(program: Program) -> Dict[int, str]:
    """Map each text address to the nearest preceding symbol (with offset)."""
    text_symbols = sorted(
        (value, name)
        for name, value in program.symbols.items()
        if program.text_base <= value < program.text_end
    )
    labels: Dict[int, str] = {}
    index = -1
    for address in range(program.text_base, program.text_end, 4):
        while (
            index + 1 < len(text_symbols)
            and text_symbols[index + 1][0] <= address
        ):
            index += 1
        if index >= 0:
            value, name = text_symbols[index]
            delta = address - value
            labels[address] = name if delta == 0 else f"{name}+{delta:#x}"
    return labels


def static_branch_table(program: Program) -> List[BranchSite]:
    """Every branch site in ``program``, in address order."""
    labels = _nearest_labels(program)
    sites: List[BranchSite] = []
    for index, instruction in enumerate(program.instructions):
        if not instruction.is_branch:
            continue
        pc = program.text_base + 4 * index
        opcode = instruction.opcode
        target: Optional[int] = None
        if opcode in _IMMEDIATE_TARGET:
            target = pc + 4 + 4 * instruction.imm
        sites.append(
            BranchSite(
                pc=pc,
                opcode=opcode,
                cls=branch_class_of(opcode),
                target=target,
                is_call=opcode in (Opcode.BSR, Opcode.JSR),
                label=labels.get(pc),
            )
        )
    return sites


def conditional_sites(program: Program) -> List[BranchSite]:
    """The conditional subset of :func:`static_branch_table`, in address
    order — the population the predictability analysis classifies (every
    conditional site has an encoded target, so ``target`` is never None)."""
    return [
        site
        for site in static_branch_table(program)
        if site.cls is BranchClass.CONDITIONAL
    ]


def static_branch_summary(program: Program) -> Dict[str, int]:
    """Aggregate counts over :func:`static_branch_table`.

    Keys: total, one per branch class (``conditional``, ``return``,
    ``imm_unconditional``, ``reg_unconditional``), plus the
    conditional-direction split (``conditional_backward`` /
    ``conditional_forward``) and the static BTFN split
    (``btfn_predict_taken`` / ``btfn_predict_not_taken``).
    """
    table = static_branch_table(program)
    summary = {
        "total": len(table),
        "conditional": 0,
        "return": 0,
        "imm_unconditional": 0,
        "reg_unconditional": 0,
        "conditional_backward": 0,
        "conditional_forward": 0,
        "btfn_predict_taken": 0,
        "btfn_predict_not_taken": 0,
    }
    class_keys = {
        BranchClass.CONDITIONAL: "conditional",
        BranchClass.RETURN: "return",
        BranchClass.IMM_UNCONDITIONAL: "imm_unconditional",
        BranchClass.REG_UNCONDITIONAL: "reg_unconditional",
    }
    for site in table:
        summary[class_keys[site.cls]] += 1
        if site.cls is BranchClass.CONDITIONAL:
            if site.is_backward:
                summary["conditional_backward"] += 1
                summary["btfn_predict_taken"] += 1
            else:
                summary["conditional_forward"] += 1
                summary["btfn_predict_not_taken"] += 1
    return summary
