"""Static analysis of assembled programs.

The paper's methodology (section 4) rests on a *static* classification of
every branch — conditional vs. unconditional, return, backward vs. forward —
that the rest of the repository only ever derived dynamically, inside the
trace pipeline.  This package computes the same facts without executing an
instruction, so the dynamic simulator can be cross-validated against them:

* :mod:`repro.analysis.cfg` — basic blocks, control-flow edges, dominators,
  natural loops and strongly-connected components over a decoded
  :class:`~repro.isa.program.Program`;
* :mod:`repro.analysis.dataflow` — reaching definitions and register
  liveness on that CFG, driven by the operand metadata in
  :mod:`repro.isa.instructions`;
* :mod:`repro.analysis.branches` — the static branch-site table (per-site
  class, direction, BTFN prediction), the static analog of Table 1;
* :mod:`repro.analysis.lint` — a rule engine (R001..R008) emitting
  structured diagnostics, behind the ``repro lint`` CLI subcommand;
* :mod:`repro.analysis.crossval` — asserts the static tables agree with
  what the CPU/trace pipeline observes dynamically.
"""

from repro.analysis.branches import (
    BranchSite,
    static_branch_summary,
    static_branch_table,
)
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, Edge, EdgeKind, build_cfg
from repro.analysis.crossval import CrossValidationReport, cross_validate
from repro.analysis.dataflow import (
    LivenessResult,
    ReachingDefinitions,
    UNINITIALIZED,
    liveness,
    reaching_definitions,
)
from repro.analysis.lint import (
    Diagnostic,
    LintResult,
    RULES,
    Severity,
    lint_program,
    lint_source,
)

__all__ = [
    "BasicBlock",
    "BranchSite",
    "ControlFlowGraph",
    "CrossValidationReport",
    "Diagnostic",
    "Edge",
    "EdgeKind",
    "LintResult",
    "LivenessResult",
    "ReachingDefinitions",
    "RULES",
    "Severity",
    "UNINITIALIZED",
    "build_cfg",
    "cross_validate",
    "lint_program",
    "lint_source",
    "liveness",
    "reaching_definitions",
    "static_branch_summary",
    "static_branch_table",
]
