"""Static analysis of assembled programs.

The paper's methodology (section 4) rests on a *static* classification of
every branch — conditional vs. unconditional, return, backward vs. forward —
that the rest of the repository only ever derived dynamically, inside the
trace pipeline.  This package computes the same facts without executing an
instruction, so the dynamic simulator can be cross-validated against them:

* :mod:`repro.analysis.cfg` — basic blocks, control-flow edges, dominators,
  post-dominators, natural loops and strongly-connected components over a
  decoded :class:`~repro.isa.program.Program`;
* :mod:`repro.analysis.dataflow` — reaching definitions and register
  liveness on that CFG, driven by the operand metadata in
  :mod:`repro.isa.instructions`;
* :mod:`repro.analysis.absint` — abstract interpretation: value ranges,
  affine induction variables with closed-form loop trip counts, and a
  deterministic whole-program walk that reconstructs per-site outcome
  streams;
* :mod:`repro.analysis.predictability` — the four-way predictability
  taxonomy (constant / loop-periodic / correlated / data-dependent) with
  per-scheme accuracy bounds and the static H2P candidate ranking, behind
  the ``repro analyze`` CLI subcommand;
* :mod:`repro.analysis.branches` — the static branch-site table (per-site
  class, direction, BTFN prediction), the static analog of Table 1;
* :mod:`repro.analysis.lint` — a rule engine (R001..R011) emitting
  structured diagnostics, behind the ``repro lint`` CLI subcommand;
* :mod:`repro.analysis.crossval` — asserts the static tables and
  predictability bounds agree with what the CPU/trace pipeline observes
  dynamically.
"""

from repro.analysis.absint import (
    AffineValue,
    LoopAnalysis,
    LoopSummary,
    Resolution,
    ValueRange,
    WalkResult,
    loop_summaries,
    resolution_for,
    walk_program,
)
from repro.analysis.branches import (
    BranchSite,
    conditional_sites,
    static_branch_summary,
    static_branch_table,
)
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, Edge, EdgeKind, build_cfg
from repro.analysis.crossval import (
    CrossValidationReport,
    PredictabilityValidation,
    cross_validate,
    validate_predictability,
)
from repro.analysis.dataflow import (
    LivenessResult,
    ReachingDefinitions,
    UNINITIALIZED,
    liveness,
    reaching_definitions,
)
from repro.analysis.lint import (
    Diagnostic,
    LintResult,
    RULES,
    Severity,
    lint_program,
    lint_source,
)
from repro.analysis.predictability import (
    ANALYSIS_SCHEMES,
    AnalysisScheme,
    PredictabilityClass,
    PredictabilityReport,
    SchemeBound,
    SiteReport,
    analyze_program,
)

__all__ = [
    "ANALYSIS_SCHEMES",
    "AffineValue",
    "AnalysisScheme",
    "BasicBlock",
    "BranchSite",
    "ControlFlowGraph",
    "CrossValidationReport",
    "Diagnostic",
    "Edge",
    "EdgeKind",
    "LintResult",
    "LivenessResult",
    "LoopAnalysis",
    "LoopSummary",
    "PredictabilityClass",
    "PredictabilityReport",
    "PredictabilityValidation",
    "ReachingDefinitions",
    "RULES",
    "Resolution",
    "SchemeBound",
    "Severity",
    "SiteReport",
    "UNINITIALIZED",
    "ValueRange",
    "WalkResult",
    "analyze_program",
    "build_cfg",
    "conditional_sites",
    "cross_validate",
    "lint_program",
    "lint_source",
    "liveness",
    "loop_summaries",
    "reaching_definitions",
    "resolution_for",
    "static_branch_summary",
    "static_branch_table",
    "validate_predictability",
    "walk_program",
]
