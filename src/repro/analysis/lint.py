"""Lint rules over the CFG and dataflow results.

Each rule has a stable identifier (``R001``..``R008``) so suppressions,
docs and tests can reference findings without string-matching messages.
Severities are fixed per rule: *error* marks structural defects that make a
program meaningless to simulate (control flow leaving the text segment,
loops that cannot terminate), *warning* marks suspicious-but-runnable
constructs (dead stores, unreachable code).  ``repro lint`` exits non-zero
only on errors unless ``--strict`` promotes warnings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.isa.assembler import assemble
from repro.isa.instructions import B_FORMAT, Opcode
from repro.isa.program import Program
from repro.isa.registers import register_name

from repro.analysis.absint import LoopAnalysis, Resolution
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow import liveness, reaching_definitions


class Severity(enum.Enum):
    """Finding severity; ordering lets callers threshold (error > warning)."""

    WARNING = "warning"
    ERROR = "error"


class Rule(NamedTuple):
    """A lint rule's identity card (the check itself lives in the engine)."""

    id: str
    name: str
    severity: Severity
    description: str


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "R001",
            "unreachable-block",
            Severity.WARNING,
            "Basic block can never execute: no control-flow path from the "
            "program entry reaches it.",
        ),
        Rule(
            "R002",
            "fallthrough-off-text-end",
            Severity.ERROR,
            "The last text instruction can fall through past the end of the "
            "text segment (it is not halt/br/jmp/rts).",
        ),
        Rule(
            "R003",
            "read-of-uninitialized-register",
            Severity.WARNING,
            "Every definition reaching this read of a register is the "
            "program entry: no instruction has written it on any path.",
        ),
        Rule(
            "R004",
            "branch-to-undefined-address",
            Severity.ERROR,
            "An immediate branch target lies outside the text segment.",
        ),
        Rule(
            "R005",
            "call-return-imbalance",
            Severity.WARNING,
            "The program has subroutine calls without any rts, or an rts "
            "without any call site.",
        ),
        Rule(
            "R006",
            "infinite-loop-no-exit",
            Severity.ERROR,
            "A reachable cycle has no edge leaving it: once entered, "
            "execution can never terminate or continue elsewhere.",
        ),
        Rule(
            "R007",
            "dead-store",
            Severity.WARNING,
            "A register write whose value cannot be read on any path before "
            "being overwritten.",
        ),
        Rule(
            "R008",
            "unreachable-halt-missing",
            Severity.WARNING,
            "No halt instruction is reachable: the program cannot terminate "
            "on its own.",
        ),
        Rule(
            "R009",
            "constant-condition-branch",
            Severity.WARNING,
            "Conditional branch whose outcome is provably one-sided: the "
            "value ranges of its operands decide the comparison on every "
            "path.",
        ),
        Rule(
            "R010",
            "code-after-unconditional-jump",
            Severity.WARNING,
            "Block that starts right after an unconditional transfer and is "
            "the target of no edge: dead code a fall-through can never "
            "reach.",
        ),
        Rule(
            "R011",
            "degenerate-loop-trip-count",
            Severity.WARNING,
            "Loop whose statically-known trip count is 0 or 1: the "
            "back-edge is never or once taken, so the loop structure is "
            "vestigial.",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule, severity, location and human-readable message."""

    rule: str
    severity: Severity
    address: Optional[int]
    label: Optional[str]
    message: str

    def render(self) -> str:
        """``ADDR [label] RULE severity: message`` (address part optional)."""
        where = ""
        if self.address is not None:
            where = f"{self.address:#010x}"
            if self.label:
                where += f" <{self.label}>"
            where += ": "
        return f"{where}{self.rule} {self.severity.value}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name,
            "severity": self.severity.value,
            "address": self.address,
            "label": self.label,
            "message": self.message,
        }


@dataclass
class LintResult:
    """All findings for one program, plus the CFG they were computed on."""

    name: str
    cfg: ControlFlowGraph
    diagnostics: List[Diagnostic]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when there are no error-severity findings."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there are no findings at all."""
        return not self.diagnostics

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.name,
            "blocks": len(self.cfg.blocks),
            "edges": len(self.cfg.edges),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


def _diag(
    cfg: ControlFlowGraph,
    rule: str,
    address: Optional[int],
    message: str,
) -> Diagnostic:
    label = cfg.label_for(address) if address is not None else None
    return Diagnostic(
        rule=rule,
        severity=RULES[rule].severity,
        address=address,
        label=label,
        message=message,
    )


# ----------------------------------------------------------------------
# Rule implementations.  Each takes the CFG and appends diagnostics.
# ----------------------------------------------------------------------

def _check_unreachable(cfg: ControlFlowGraph, out: List[Diagnostic]) -> None:
    reachable = cfg.reachable()
    for start in sorted(cfg.blocks):
        if start in reachable:
            continue
        block = cfg.blocks[start]
        out.append(
            _diag(
                cfg,
                "R001",
                start,
                f"unreachable block of {len(block.instructions)} "
                "instruction(s)",
            )
        )


def _check_fallthrough_off_end(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    program = cfg.program
    if not program.instructions:
        return
    last = program.instructions[-1]
    if last.opcode in (Opcode.HALT, Opcode.BR, Opcode.JMP, Opcode.RTS):
        return
    out.append(
        _diag(
            cfg,
            "R002",
            program.text_end - 4,
            f"last instruction '{last.opcode.name.lower()}' can fall "
            "through past the end of the text segment",
        )
    )


def _check_uninitialized_reads(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    for address, register in reaching_definitions(
        cfg
    ).definitely_uninitialized_reads():
        out.append(
            _diag(
                cfg,
                "R003",
                address,
                f"read of {register_name(register)} which no instruction "
                "has written on any path from entry",
            )
        )


def _check_branch_targets(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    program = cfg.program
    lo, hi = program.text_base, program.text_end
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        for pc, instruction in zip(block.addresses(), block.instructions):
            opcode = instruction.opcode
            if opcode not in B_FORMAT and opcode not in (
                Opcode.BR,
                Opcode.BSR,
            ):
                continue
            target = pc + 4 + 4 * instruction.imm
            if not lo <= target < hi:
                out.append(
                    _diag(
                        cfg,
                        "R004",
                        pc,
                        f"branch target {target:#x} lies outside the text "
                        f"segment [{lo:#x}, {hi:#x})",
                    )
                )


def _check_call_return_balance(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    calls = [
        pc
        for start in cfg.blocks
        for pc, instruction in zip(
            cfg.blocks[start].addresses(), cfg.blocks[start].instructions
        )
        if instruction.opcode in (Opcode.BSR, Opcode.JSR)
    ]
    returns = [
        pc
        for start in cfg.blocks
        for pc, instruction in zip(
            cfg.blocks[start].addresses(), cfg.blocks[start].instructions
        )
        if instruction.opcode is Opcode.RTS
    ]
    if calls and not returns:
        out.append(
            _diag(
                cfg,
                "R005",
                min(calls),
                f"{len(calls)} call site(s) but no rts anywhere in the "
                "program",
            )
        )
    elif returns and not calls:
        out.append(
            _diag(
                cfg,
                "R005",
                min(returns),
                "rts without any bsr/jsr call site: the link register is "
                "never set",
            )
        )


def _check_infinite_loops(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    reachable = cfg.reachable()
    for component in cfg.strongly_connected_components():
        members = component & reachable
        if not members:
            continue
        cyclic = len(component) > 1 or any(
            edge.dst in component for edge in cfg.successors(next(iter(component)))
        )
        if not cyclic:
            continue
        escapes = any(
            edge.dst not in component
            for start in component
            for edge in cfg.successors(start)
        )
        if escapes:
            continue
        header = min(component)
        out.append(
            _diag(
                cfg,
                "R006",
                header,
                f"cycle of {len(component)} block(s) with no exit edge: "
                "execution can never leave it",
            )
        )


def _check_dead_stores(cfg: ControlFlowGraph, out: List[Diagnostic]) -> None:
    for address, register in liveness(cfg).dead_stores():
        out.append(
            _diag(
                cfg,
                "R007",
                address,
                f"value written to {register_name(register)} is never read "
                "before being overwritten",
            )
        )


def _check_halt_reachable(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    reachable = cfg.reachable()
    for start in reachable:
        if any(
            instruction.opcode is Opcode.HALT
            for instruction in cfg.blocks[start].instructions
        ):
            return
    out.append(
        _diag(
            cfg,
            "R008",
            None,
            "no reachable halt instruction: the program cannot terminate "
            "on its own",
        )
    )


def _check_constant_conditions(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    resolution = Resolution(cfg=cfg, reaching=reaching_definitions(cfg))
    reachable = cfg.reachable()
    for start in sorted(reachable):
        block = cfg.blocks[start]
        terminator = block.terminator
        if terminator.opcode not in B_FORMAT:
            continue
        pc = block.end - 4
        decision = resolution.branch_decision(pc)
        if decision is None:
            continue
        out.append(
            _diag(
                cfg,
                "R009",
                pc,
                f"'{terminator.opcode.name.lower()}' is always "
                f"{'taken' if decision else 'not taken'}: operand value "
                "ranges decide the comparison on every path",
            )
        )


def _check_code_after_jump(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    _UNCONDITIONAL = (Opcode.BR, Opcode.JMP, Opcode.RTS, Opcode.HALT)
    program = cfg.program
    for start in sorted(cfg.blocks):
        if start == cfg.entry or cfg.predecessors(start):
            continue
        previous_index = (start - program.text_base) // 4 - 1
        if previous_index < 0:
            continue
        previous = program.instructions[previous_index]
        if previous.opcode not in _UNCONDITIONAL:
            continue
        block = cfg.blocks[start]
        out.append(
            _diag(
                cfg,
                "R010",
                start,
                f"block of {len(block.instructions)} instruction(s) after "
                f"'{previous.opcode.name.lower()}' is the target of no edge",
            )
        )


def _check_degenerate_loops(
    cfg: ControlFlowGraph, out: List[Diagnostic]
) -> None:
    resolution = Resolution(cfg=cfg, reaching=reaching_definitions(cfg))
    for summary in LoopAnalysis(resolution=resolution).summarize():
        if summary.trip_count is None or summary.trip_count > 1:
            continue
        times = "never" if summary.trip_count == 0 else "exactly once"
        out.append(
            _diag(
                cfg,
                "R011",
                summary.header,
                f"loop back-edge is statically known to be taken {times} "
                f"(trip count {summary.trip_count})",
            )
        )


_CHECKS: List[Callable[[ControlFlowGraph, List[Diagnostic]], None]] = [
    _check_unreachable,
    _check_fallthrough_off_end,
    _check_uninitialized_reads,
    _check_branch_targets,
    _check_call_return_balance,
    _check_infinite_loops,
    _check_dead_stores,
    _check_halt_reachable,
    _check_constant_conditions,
    _check_code_after_jump,
    _check_degenerate_loops,
]


def lint_program(program: Program, name: str = "<program>") -> LintResult:
    """Run every rule over ``program`` and collect the findings."""
    cfg = build_cfg(program)
    diagnostics: List[Diagnostic] = []
    for check in _CHECKS:
        check(cfg, diagnostics)
    diagnostics.sort(
        key=lambda d: (d.address if d.address is not None else -1, d.rule)
    )
    return LintResult(name=name, cfg=cfg, diagnostics=diagnostics)


def lint_source(source: str, name: str = "<source>") -> LintResult:
    """Assemble ``source`` and lint the result.

    Assembly failures raise :class:`~repro.errors.AssemblyError` — a lint
    run cannot begin without a decodable program, so that is a usage error
    (CLI exit 2), not a finding.
    """
    return lint_program(assemble(source), name=name)
