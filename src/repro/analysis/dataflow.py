"""Dataflow analyses over the control-flow graph.

Two classic bit-vector analyses, specialised to the register file:

* **Reaching definitions** (forward, may): which instruction last wrote
  each register on *some* path.  Every register is seeded with a virtual
  :data:`UNINITIALIZED` definition at the program entry, so "every
  definition reaching this read is the virtual one" means the read observes
  a register no instruction has written — the R003 lint rule.
* **Liveness** (backward, may): which registers may still be read before
  being overwritten.  A register write whose value is never live is a dead
  store — the R007 lint rule.

Both reuse :func:`repro.isa.instructions.registers_read` /
:func:`~repro.isa.instructions.registers_written`, so the analyses track
the interpreter's semantics (stores read ``rd``, calls define the link
register, ``rts`` reads it) without restating them.  ``r0`` is hardwired
zero and excluded throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.isa.instructions import Opcode, registers_read, registers_written
from repro.isa.registers import NUM_REGISTERS

from repro.analysis.cfg import ControlFlowGraph

#: Virtual definition address meaning "never written since program entry".
UNINITIALIZED = -1

#: A definition: ``(register, address)`` where ``address`` is the byte
#: address of the writing instruction, or :data:`UNINITIALIZED`.
Definition = Tuple[int, int]


def _analysis_order(cfg: ControlFlowGraph) -> List[int]:
    """Reverse post-order of the reachable blocks, then the rest."""
    order = cfg.reverse_post_order()
    seen = set(order)
    order.extend(start for start in sorted(cfg.blocks) if start not in seen)
    return order


#: bit positions set in each byte value — the decode table for bitset
#: solutions (see :func:`reaching_definitions`)
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(j for j in range(8) if value >> j & 1) for value in range(256)
)


def _decode_bits(
    bits: int, definitions: List[Definition]
) -> FrozenSet[Definition]:
    """Decode one bitset solution into the frozenset interface."""
    raw = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
    return frozenset(
        definitions[index * 8 + offset]
        for index, byte in enumerate(raw)
        if byte
        for offset in _BYTE_BITS[byte]
    )


class _LazyDecodedSets(Dict[int, FrozenSet[Definition]]):
    """block start -> decoded definition set, decoding on first access.

    The fixpoint solves on integer bitsets; most callers only ever look at
    a few blocks' sets (``at`` walks one block per query), so decoding all
    of them eagerly would dominate the solve.  Iteration and ``len`` see
    every block: the map pre-fills keys lazily via ``__missing__`` only.
    """

    def __init__(self, bits: Dict[int, int], definitions: List[Definition]):
        super().__init__()
        self._bits = bits
        self._definitions = definitions

    def __missing__(self, start: int) -> FrozenSet[Definition]:
        value = _decode_bits(self._bits[start], self._definitions)
        self[start] = value
        return value


@dataclass
class ReachingDefinitions:
    """Fixpoint solution: definitions reaching each block boundary."""

    cfg: ControlFlowGraph
    block_in: Dict[int, FrozenSet[Definition]]
    block_out: Dict[int, FrozenSet[Definition]]

    def at(self, address: int) -> FrozenSet[Definition]:
        """Definitions reaching ``address`` (before it executes)."""
        block = self.cfg.block_at(address)
        last_def: Dict[int, int] = {}
        for pc, instruction in zip(block.addresses(), block.instructions):
            if pc == address:
                live = {
                    d for d in self.block_in[block.start] if d[0] not in last_def
                }
                live.update(last_def.items())
                return frozenset(live)
            for register in registers_written(instruction):
                last_def[register] = pc
        raise KeyError(f"address {address:#x} is not in block {block.start:#x}")

    def definitely_uninitialized_reads(self) -> List[Tuple[int, int]]:
        """``(address, register)`` pairs where every reaching definition of a
        read register is the virtual entry definition.

        Reads with *no* reaching definition (unreachable code) are skipped —
        that is R001's territory.
        """
        findings: List[Tuple[int, int]] = []
        for start in sorted(self.cfg.blocks):
            block = self.cfg.blocks[start]
            entry_only: Dict[int, bool] = {}
            for register, address in self.block_in[start]:
                entry_only[register] = (
                    entry_only.get(register, True) and address == UNINITIALIZED
                )
            written: Set[int] = set()
            for pc, instruction in zip(block.addresses(), block.instructions):
                for register in registers_read(instruction):
                    if register == 0 or register in written:
                        continue
                    if entry_only.get(register, False):
                        findings.append((pc, register))
                written.update(registers_written(instruction))
        return findings


def reaching_definitions(cfg: ControlFlowGraph) -> ReachingDefinitions:
    """Solve forward may reaching-definitions over ``cfg``.

    The fixpoint runs on bitsets: only a block's *last* definition of each
    register can escape it, so the definition universe is the per-block gen
    pairs plus the virtual entry definitions — small enough to give every
    definition a bit and solve with integer ``|``/``&`` instead of
    per-element frozenset rebuilds.  The solution decodes back to the
    frozenset interface once, after convergence.
    """
    definitions: List[Definition] = []
    index_of: Dict[Definition, int] = {}
    register_bits: Dict[int, int] = {}

    def intern(definition: Definition) -> int:
        bit = index_of.get(definition)
        if bit is None:
            bit = len(definitions)
            index_of[definition] = bit
            definitions.append(definition)
            register = definition[0]
            register_bits[register] = register_bits.get(register, 0) | (1 << bit)
        return bit

    gen_bits: Dict[int, int] = {}
    kill_regs: Dict[int, FrozenSet[int]] = {}
    for start, block in cfg.blocks.items():
        last_def: Dict[int, int] = {}
        for pc, instruction in zip(block.addresses(), block.instructions):
            for register in registers_written(instruction):
                last_def[register] = pc
        bits = 0
        for item in last_def.items():
            bits |= 1 << intern(item)
        gen_bits[start] = bits
        kill_regs[start] = frozenset(last_def)

    entry_bits = 0
    for register in range(1, NUM_REGISTERS):
        entry_bits |= 1 << intern((register, UNINITIALIZED))

    # kill masks cover every definition of the killed registers, so they can
    # only be assembled once the whole universe is interned
    keep_mask: Dict[int, int] = {}
    universe = (1 << len(definitions)) - 1
    for start in cfg.blocks:
        killed = 0
        for register in kill_regs[start]:
            killed |= register_bits.get(register, 0)
        keep_mask[start] = universe & ~killed

    predecessors: Dict[int, List[int]] = {
        start: [edge.src for edge in cfg.predecessors(start)]
        for start in cfg.blocks
    }
    in_bits: Dict[int, int] = {start: 0 for start in cfg.blocks}
    out_bits: Dict[int, int] = {start: 0 for start in cfg.blocks}
    order = _analysis_order(cfg)
    changed = True
    while changed:
        changed = False
        for start in order:
            merged = entry_bits if start == cfg.entry else 0
            for src in predecessors[start]:
                merged |= out_bits[src]
            new_out = (merged & keep_mask[start]) | gen_bits[start]
            if merged != in_bits[start] or new_out != out_bits[start]:
                in_bits[start] = merged
                out_bits[start] = new_out
                changed = True

    return ReachingDefinitions(
        cfg=cfg,
        block_in=_LazyDecodedSets(in_bits, definitions),
        block_out=_LazyDecodedSets(out_bits, definitions),
    )


@dataclass
class LivenessResult:
    """Fixpoint solution: registers live at each block boundary."""

    cfg: ControlFlowGraph
    block_in: Dict[int, FrozenSet[int]]
    block_out: Dict[int, FrozenSet[int]]

    def live_after(self, address: int) -> FrozenSet[int]:
        """Registers live immediately *after* the instruction at ``address``."""
        block = self.cfg.block_at(address)
        live: Set[int] = set(self.block_out[block.start])
        pcs = list(block.addresses())
        for pc, instruction in zip(reversed(pcs), reversed(block.instructions)):
            if pc == address:
                return frozenset(live)
            live.difference_update(registers_written(instruction))
            live.update(r for r in registers_read(instruction) if r)
        raise KeyError(f"address {address:#x} is not in block {block.start:#x}")

    def dead_stores(self) -> List[Tuple[int, int]]:
        """``(address, register)`` pairs where a written register is not live
        afterwards.

        Calls are exempt (the link register is an ABI effect, not a value
        computation), as is any block that can leave the graph through an
        indirect edge — the candidate-target sets are approximate, so a
        value could flow somewhere liveness cannot see.
        """
        findings: List[Tuple[int, int]] = []
        for start in sorted(self.cfg.blocks):
            block = self.cfg.blocks[start]
            live: Set[int] = set(self.block_out[start])
            pcs = list(block.addresses())
            for pc, instruction in zip(
                reversed(pcs), reversed(block.instructions)
            ):
                written = registers_written(instruction)
                if written and instruction.opcode not in (Opcode.BSR, Opcode.JSR):
                    for register in written:
                        if register not in live:
                            findings.append((pc, register))
                live.difference_update(written)
                live.update(r for r in registers_read(instruction) if r)
        findings.sort()
        return findings


def liveness(cfg: ControlFlowGraph) -> LivenessResult:
    """Solve backward may liveness over ``cfg``."""
    use: Dict[int, FrozenSet[int]] = {}
    defs: Dict[int, FrozenSet[int]] = {}
    for start, block in cfg.blocks.items():
        block_use: Set[int] = set()
        block_def: Set[int] = set()
        for instruction in block.instructions:
            block_use.update(
                r
                for r in registers_read(instruction)
                if r and r not in block_def
            )
            block_def.update(registers_written(instruction))
        use[start] = frozenset(block_use)
        defs[start] = frozenset(block_def)

    block_in: Dict[int, FrozenSet[int]] = {
        start: frozenset() for start in cfg.blocks
    }
    block_out: Dict[int, FrozenSet[int]] = {
        start: frozenset() for start in cfg.blocks
    }
    order = list(reversed(_analysis_order(cfg)))
    changed = True
    while changed:
        changed = False
        for start in order:
            merged: Set[int] = set()
            for edge in cfg.successors(start):
                merged.update(block_in[edge.dst])
            new_out = frozenset(merged)
            new_in = use[start] | (new_out - defs[start])
            if new_out != block_out[start] or new_in != block_in[start]:
                block_out[start] = new_out
                block_in[start] = new_in
                changed = True
    return LivenessResult(cfg=cfg, block_in=block_in, block_out=block_out)
