"""Figure 5: effect of the pattern-history state transition automaton.

The paper simulates the AT scheme with A2, A3, A4 and Last-Time (A1 was
dropped as inferior in early experiments) and finds the four-state machines
within noise of each other, with Last-Time about one percent worse — the
counter machines tolerate one noisy outcome without flipping the prediction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import (
    ExperimentReport,
    ShapeCheck,
    sweep_rows,
)
from repro.sim.runner import run_sweep
from repro.workloads.base import DEFAULT_CONDITIONAL_BRANCHES, TraceCache

SPECS = [
    "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,12SR),PT(2^12,A3),)",
    "AT(AHRT(512,12SR),PT(2^12,A4),)",
    "AT(AHRT(512,12SR),PT(2^12,LT),)",
]


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    sweep = run_sweep(SPECS, benchmarks, max_conditional, cache, jobs=jobs, backend=backend)
    means = {spec: sweep.mean(spec) for spec in sweep.schemes()}
    a2, a3, a4, lt = (means[spec] for spec in SPECS)

    checks = [
        ShapeCheck(
            "Last-Time is the weakest automaton (paper: ~1% below the others)",
            lt <= min(a2, a3, a4) + 0.002,
            f"A2={a2:.4f} A3={a3:.4f} A4={a4:.4f} LT={lt:.4f}",
        ),
        ShapeCheck(
            "four-state automata achieve similar accuracy (within ~2.5%)",
            max(a2, a3, a4) - min(a2, a3, a4) <= 0.025,
            f"spread={max(a2, a3, a4) - min(a2, a3, a4):.4f}",
        ),
        ShapeCheck(
            "A2 performs best or ties among the automata (paper: 'usually performs the best')",
            a2 >= max(a3, a4, lt) - 0.003,
        ),
    ]
    return ExperimentReport(
        exp_id="fig5",
        title="AT schemes using different state transition automata",
        rows=sweep_rows(sweep),
        shape_checks=checks,
        sweep=sweep,
    )
