"""Figure 8: Static Training trained on the same vs different data sets.

The paper trains five benchmarks on the Table 3 alternative inputs
(espresso, gcc, li, doduc, spice2g6; the other four lack applicable data
sets) and finds: training on the same data set roughly matches Two-Level
Adaptive Training; training on a different data set costs about one percent
on gcc/espresso, about five percent on li (the largest drop), and under half
a percent on the floating-point codes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.reporting import ExperimentReport, ShapeCheck, sweep_rows
from repro.sim.runner import SweepRunner
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    FLOATING_POINT,
    INTEGER,
    TraceCache,
    get_workload,
)

SPECS = [
    "ST(IHRT(,12SR),PT(2^12,PB),Same)",
    "ST(AHRT(512,12SR),PT(2^12,PB),Same)",
    "ST(HHRT(512,12SR),PT(2^12,PB),Same)",
    "ST(IHRT(,12SR),PT(2^12,PB),Diff)",
    "ST(AHRT(512,12SR),PT(2^12,PB),Diff)",
    "ST(HHRT(512,12SR),PT(2^12,PB),Diff)",
]


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    runner = SweepRunner(benchmarks, max_conditional, cache, backend=backend)
    sweep = runner.run(SPECS, jobs=jobs)

    same_ihrt = sweep.accuracies("ST(IHRT(,12SR),PT(2^12,PB),Same)")
    diff_ihrt = sweep.accuracies("ST(IHRT(,12SR),PT(2^12,PB),Diff)")
    degradation: Dict[str, float] = {
        name: same_ihrt[name] - diff_ihrt[name] for name in diff_ihrt
    }

    checks = []
    checks.append(
        ShapeCheck(
            "exactly the five Table 3 benchmarks have Diff results",
            set(degradation) == {"espresso", "gcc", "li", "doduc", "spice2g6"},
            f"got {sorted(degradation)}",
        )
    )
    checks.append(
        ShapeCheck(
            "training on a different data set never helps (Same >= Diff)",
            all(drop >= -0.005 for drop in degradation.values()),
            "; ".join(f"{name}: {drop:+.4f}" for name, drop in degradation.items()),
        )
    )
    if degradation:
        worst = max(degradation, key=degradation.get)
        checks.append(
            ShapeCheck(
                "li shows the largest Same->Diff degradation (paper: ~5%)",
                worst == "li",
                f"worst={worst} ({degradation[worst]:.4f})",
            )
        )
        fp_drops = [
            drop
            for name, drop in degradation.items()
            if get_workload(name).category == FLOATING_POINT
        ]
        int_drops = [
            drop
            for name, drop in degradation.items()
            if get_workload(name).category == INTEGER
        ]
        if fp_drops and int_drops:
            checks.append(
                ShapeCheck(
                    "FP degradation is small relative to the integer codes (paper: <=0.5%)",
                    max(fp_drops) <= max(int_drops) and max(fp_drops) <= 0.02,
                    f"max FP drop={max(fp_drops):.4f}, max int drop={max(int_drops):.4f}",
                )
            )

    rows = sweep_rows(sweep)
    rows.append({"scheme": "-- Same-Diff degradation (IHRT) --"})
    rows.append(
        {
            "scheme": "degradation",
            **{name: degradation.get(name, float("nan")) for name in sweep.benchmarks()},
        }
    )
    return ExperimentReport(
        exp_id="fig8",
        title="Prediction accuracy of Static Training schemes (Table 3 data sets)",
        rows=rows,
        shape_checks=checks,
        sweep=sweep,
        notes=(
            "Diff cells exist only for the five benchmarks Table 3 lists with an "
            "applicable alternative data set; eqntott, fpppp, matrix300 and tomcatv "
            "are excluded exactly as in the paper."
        ),
    )
