"""Figure 9: Lee & Smith BTB designs, BTFN, Always Taken, and profiling.

The paper's findings: the BTB designs top out around 93 percent with an
ideal table; using Last-Time instead of A2 costs about four percent; BTFN
averages about 69 percent but reaches ~98 percent on the loop-bound
matrix300/tomcatv; Always Taken averages about 60 percent with wild
per-benchmark swings; simple profiling lands around 92.5 percent — roughly
the BTB designs' level.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import (
    ExperimentReport,
    ShapeCheck,
    band_check,
    sweep_rows,
)
from repro.sim.runner import run_sweep
from repro.workloads.base import DEFAULT_CONDITIONAL_BRANCHES, TraceCache

SPECS = [
    "LS(IHRT(,A2),,)",
    "LS(AHRT(512,A2),,)",
    "LS(HHRT(512,A2),,)",
    "LS(IHRT(,A1),,)",
    "LS(IHRT(,LT),,)",
    "LS(AHRT(512,LT),,)",
    "Profile",
    "BTFN",
    "AlwaysTaken",
]


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    sweep = run_sweep(SPECS, benchmarks, max_conditional, cache, jobs=jobs, backend=backend)
    mean = {spec: sweep.mean(spec) for spec in sweep.schemes()}

    checks = [
        ShapeCheck(
            "LS ideal-table A2 bounds the practical LS tables",
            mean["LS(IHRT(,A2),,)"] >= mean["LS(AHRT(512,A2),,)"] - 0.002
            and mean["LS(IHRT(,A2),,)"] >= mean["LS(HHRT(512,A2),,)"] - 0.002,
        ),
        band_check(
            "LS with an ideal table stays at or below ~93%",
            mean["LS(IHRT(,A2),,)"],
            0.70,
            0.94,
        ),
        ShapeCheck(
            "Last-Time costs the BTB design several percent vs A2 (paper: ~4%)",
            mean["LS(IHRT(,A2),,)"] - mean["LS(IHRT(,LT),,)"] >= 0.02,
            f"A2={mean['LS(IHRT(,A2),,)']:.4f} LT={mean['LS(IHRT(,LT),,)']:.4f}",
        ),
        ShapeCheck(
            "A1 predicts 2-3 percent below A2 in the BTB design (paper section 5.3)",
            0.005 <= mean["LS(IHRT(,A2),,)"] - mean["LS(IHRT(,A1),,)"] <= 0.06,
            f"A2={mean['LS(IHRT(,A2),,)']:.4f} A1={mean['LS(IHRT(,A1),,)']:.4f}",
        ),
        band_check("BTFN averages around ~69%", mean["BTFN"], 0.55, 0.80),
        ShapeCheck(
            "BTFN excels on the loop-bound FP codes (paper: ~98% on matrix300/tomcatv)",
            all(
                sweep.accuracy("BTFN", name) >= 0.85
                for name in ("matrix300", "tomcatv")
                if name in sweep.benchmarks()
            ),
        ),
        band_check("Always Taken averages around ~60%", mean["AlwaysTaken"], 0.50, 0.78),
        ShapeCheck(
            "profiling lands near the BTB designs (paper: ~92.5% vs ~93%)",
            abs(mean["Profile"] - mean["LS(IHRT(,A2),,)"]) <= 0.04,
            f"Profile={mean['Profile']:.4f} LS-A2={mean['LS(IHRT(,A2),,)']:.4f}",
        ),
    ]
    return ExperimentReport(
        exp_id="fig9",
        title="BTB designs, BTFN, Always Taken, and the profiling scheme",
        rows=sweep_rows(sweep),
        shape_checks=checks,
        sweep=sweep,
    )
