"""Experiment index: id -> (title, paper artefact, run function).

The ids follow the paper's artefact numbering: ``fig3`` .. ``fig10``,
``table1`` .. ``table3`` (table3 is exercised inside fig8, which consumes
the training/testing data-set pairs).  ``fig11`` is a repo extension: the
modern-predictor subsystem (perceptron, TAGE) scored against AT on the
static H2P ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.experiments.reporting import ExperimentReport


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata plus the callable that regenerates one paper artefact."""

    exp_id: str
    title: str
    paper_ref: str
    run: Callable[..., ExperimentReport]


def _load() -> Dict[str, ExperimentSpec]:
    # imported lazily to keep `import repro` light and cycle-free
    from repro.experiments import (
        fig3_instruction_mix,
        fig4_branch_mix,
        fig5_automata,
        fig6_hrt,
        fig7_history_length,
        fig8_static_training,
        fig9_other_schemes,
        fig10_comparison,
        fig11_h2p,
        table1_static_branches,
        table2_configs,
        table3_datasets,
    )

    specs = [
        ExperimentSpec(
            "fig3",
            "Distribution of dynamic instructions",
            "Figure 3",
            fig3_instruction_mix.run,
        ),
        ExperimentSpec(
            "fig4",
            "Distribution of dynamic branch instructions",
            "Figure 4",
            fig4_branch_mix.run,
        ),
        ExperimentSpec(
            "table1",
            "Static conditional branches per benchmark",
            "Table 1",
            table1_static_branches.run,
        ),
        ExperimentSpec(
            "table2",
            "Configurations of simulated branch predictors",
            "Table 2",
            table2_configs.run,
        ),
        ExperimentSpec(
            "table3",
            "Training and testing data sets of each benchmark",
            "Table 3",
            table3_datasets.run,
        ),
        ExperimentSpec(
            "fig5",
            "Two-Level Adaptive Training: state transition automata",
            "Figure 5",
            fig5_automata.run,
        ),
        ExperimentSpec(
            "fig6",
            "Two-Level Adaptive Training: HRT implementations",
            "Figure 6",
            fig6_hrt.run,
        ),
        ExperimentSpec(
            "fig7",
            "Two-Level Adaptive Training: history register length",
            "Figure 7",
            fig7_history_length.run,
        ),
        ExperimentSpec(
            "fig8",
            "Static Training: Same vs Diff data sets (Table 3 pairs)",
            "Figure 8 (and Table 3)",
            fig8_static_training.run,
        ),
        ExperimentSpec(
            "fig9",
            "BTB designs, BTFN, Always Taken, Profiling",
            "Figure 9",
            fig9_other_schemes.run,
        ),
        ExperimentSpec(
            "fig10",
            "Comparison of branch prediction schemes",
            "Figure 10",
            fig10_comparison.run,
        ),
        ExperimentSpec(
            "fig11",
            "Modern schemes (perceptron, TAGE) on the static H2P sites",
            "extension (Jimenez/Lin perceptron; Seznec TAGE)",
            fig11_h2p.run,
        ),
    ]
    return {spec.exp_id: spec for spec in specs}


_SPECS: "Dict[str, ExperimentSpec] | None" = None


def _specs() -> Dict[str, ExperimentSpec]:
    global _SPECS
    if _SPECS is None:
        _SPECS = _load()
    return _SPECS


def experiment_ids() -> List[str]:
    """All experiment ids, in paper order."""
    return list(_specs())


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up an experiment by id (``fig5``, ``table1`` ...)."""
    try:
        return _specs()[exp_id]
    except KeyError as exc:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; available: {experiment_ids()}"
        ) from exc
