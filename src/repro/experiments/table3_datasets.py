"""Table 3: training and testing data sets of each benchmark.

The table drives the Figure 8 experiment; this artefact verifies the wiring
itself — which benchmarks have an applicable alternative training input,
what the pairs are, and that training inputs really produce different branch
behaviour on the same program.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import ExperimentReport, ShapeCheck
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    TraceCache,
    default_cache,
    get_workload,
    workload_names,
)

#: the published Table 3 (NA = no applicable training set)
PAPER_TABLE3 = {
    "eqntott": (None, "int_pri_3.eqn"),
    "espresso": ("cps", "bca"),
    "gcc": ("cexp.i", "dbxout.i"),
    "li": ("tower of hanoi", "eight queens"),
    "doduc": ("tiny doducin", "doducin"),
    "fpppp": (None, "natoms"),
    "matrix300": (None, None),
    "spice2g6": ("short greycode.in", "greycode.in"),
    "tomcatv": (None, None),
}


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    del jobs, backend  # single pass over cached traces; no predictor simulated
    cache = cache if cache is not None else default_cache()
    names = list(benchmarks) if benchmarks is not None else workload_names()

    rows = []
    checks = []
    divergence_scale = min(max_conditional, 5_000)
    for name in names:
        workload = get_workload(name)
        train = workload.datasets.get("train")
        test = workload.datasets.get("test")
        rows.append(
            {
                "benchmark": name,
                "training set": train.name if train else "NA",
                "testing set": test.name if test else "NA",
            }
        )
        paper_train, _paper_test = PAPER_TABLE3.get(name, (None, None))
        checks.append(
            ShapeCheck(
                f"{name}: training-set availability matches Table 3",
                (train is not None) == (paper_train is not None),
                f"paper={'NA' if paper_train is None else paper_train}, "
                f"ours={'NA' if train is None else train.name}",
            )
        )
        if train is not None:
            test_outcomes = [
                record.taken
                for record in cache.get(workload, "test", divergence_scale).records
            ]
            train_outcomes = [
                record.taken
                for record in cache.get(workload, "train", divergence_scale).records
            ]
            checks.append(
                ShapeCheck(
                    f"{name}: training input produces different branch behaviour",
                    test_outcomes != train_outcomes,
                )
            )

    if "li" in names:
        li = get_workload("li")
        checks.append(
            ShapeCheck(
                "li trains on towers of hanoi and tests on eight queens (Table 3)",
                li.datasets["train"].name == "towers-of-hanoi"
                and li.datasets["test"].name == "eight-queens",
            )
        )

    return ExperimentReport(
        exp_id="table3",
        title="Training and testing data sets of each benchmark",
        rows=rows,
        shape_checks=checks,
        notes="The Diff columns of Figure 8 consume exactly these pairs.",
    )
