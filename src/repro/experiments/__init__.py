"""Experiment definitions: one module per table/figure of the paper.

Each experiment module exposes ``run(...)`` returning an
:class:`~repro.experiments.reporting.ExperimentReport`, which carries the
regenerated rows/series, a plain-text rendering, and the list of *shape
checks* — the qualitative claims of the paper that the reproduction asserts
(orderings, bands, crossovers), as opposed to absolute numbers which depend
on the substituted workloads and trace scale.

Use :func:`~repro.experiments.registry.get_experiment` /
:func:`~repro.experiments.registry.experiment_ids` for programmatic access,
or ``python -m repro run <id>`` from the command line.
"""

from repro.experiments.registry import experiment_ids, get_experiment
from repro.experiments.reporting import ExperimentReport, ShapeCheck

__all__ = ["ExperimentReport", "ShapeCheck", "experiment_ids", "get_experiment"]
