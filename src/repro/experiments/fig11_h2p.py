"""Figure 11 (repo extension): modern schemes on the hard-to-predict sites.

Lin & Tarsa's observation — a handful of static H2P branches carries most
of the remaining misprediction mass — and the Bullseye approach of
attacking exactly those sites motivate the first result in this repo the
1991 paper could not produce: take the *static* H2P ranking
(:func:`repro.analysis.predictability.analyze_program`, the PR-8
cross-validated pipeline), then score the paper's Two-Level Adaptive
Training against gshare and the modern subsystem (perceptron, TAGE) on
the top-N H2P sites and overall.  The reported ``recovered`` column is
per-site *misprediction-mass recovery*: the fraction of AT's mispredictions
on the H2P sites that a scheme eliminates (negative = it loses mass).

Every per-site map is computed through the fused sweep kernels when the
vector backend is available and through the scalar replay loop otherwise;
a parity shape-check additionally scores the modern schemes on the scalar
engine and asserts the totals agree, so `repro h2p` doubles as an
end-to-end vector/scalar parity gate in CI.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.reporting import ExperimentReport, ShapeCheck
from repro.isa.assembler import assemble
from repro.predictors.spec import parse_spec
from repro.sim.results import geometric_mean
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    TraceCache,
    get_workload,
    workload_names,
)

#: the 1991 baseline (ideal-HRT AT, the repo's reference two-level spec),
#: the classic global-history comparator, and the modern subsystem.
AT_SPEC = "AT(IHRT(,12SR),PT(2^12,A2),)"
GSHARE_SPEC = "gshare(12)"
PERCEPTRON_SPEC = "perceptron(12,512)"
TAGE_SPEC = "tage(4,9)"
SPECS = (AT_SPEC, GSHARE_SPEC, PERCEPTRON_SPEC, TAGE_SPEC)
MODERN_SPECS = (PERCEPTRON_SPEC, TAGE_SPEC)

DEFAULT_TOP = 5


def _per_site_maps(
    spec_texts: Sequence[str], records, backend: str
) -> Dict[str, Dict[int, Tuple[int, int]]]:
    """Per-site (correct, total) per scheme — fused when possible."""
    from repro.sim.analysis import per_site_accuracy_many, per_site_accuracy_specs

    named = {text: text for text in spec_texts}
    if backend != "scalar":
        fused = per_site_accuracy_specs(named, records)
        if fused is not None:
            return fused
    predictors = {text: parse_spec(text).build() for text in spec_texts}
    return per_site_accuracy_many(predictors, records)


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
    top: int = DEFAULT_TOP,
) -> ExperimentReport:
    from repro.analysis import analyze_program
    from repro.sim.kernels import score_spec

    del jobs  # one fused pass per benchmark; nothing to farm out
    names = list(benchmarks) if benchmarks else workload_names()
    cache = cache or TraceCache()

    rows = []
    missing_h2p = []
    zero_mass = []
    parity_failures = []
    modern_wins = []
    overall: Dict[str, list] = {text: [] for text in SPECS}

    for name in names:
        workload = get_workload(name)
        dataset = workload.dataset("test")
        program = assemble(workload.build_source(dataset))
        static = analyze_program(program, max_conditional, name=name)
        h2p_sites = static.h2p_top(top)
        if not h2p_sites:
            missing_h2p.append(name)
        trace = cache.get(workload, "test", max_conditional)
        maps = _per_site_maps(SPECS, trace.records, backend)

        # vector/scalar parity on the modern schemes: the per-site pipeline
        # must reproduce the scalar engine's totals exactly
        packed = trace.packed()
        for text in MODERN_SPECS:
            per_site = maps[text]
            total_correct = sum(correct for correct, _ in per_site.values())
            scalar = score_spec(parse_spec(text), packed, backend="scalar")
            if total_correct != scalar.conditional_correct:
                parity_failures.append(
                    f"{name}/{text}: per-site {total_correct}"
                    f" != scalar {scalar.conditional_correct}"
                )

        at_map = maps[AT_SPEC]
        at_mass = sum(
            at_map[pc][1] - at_map[pc][0] for pc in h2p_sites if pc in at_map
        )
        if h2p_sites and at_mass == 0:
            zero_mass.append(name)
        for text in SPECS:
            per_site = maps[text]
            correct = sum(c for c, _ in per_site.values())
            total = sum(n for _, n in per_site.values())
            mass = sum(
                per_site[pc][1] - per_site[pc][0]
                for pc in h2p_sites
                if pc in per_site
            )
            recovered = (
                (at_mass - mass) / at_mass if at_mass else float("nan")
            )
            if text in MODERN_SPECS and at_mass and mass < at_mass:
                modern_wins.append((name, text))
            overall[text].append(correct / total if total else 0.0)
            rows.append(
                {
                    "benchmark": name,
                    "scheme": text,
                    "accuracy": correct / total if total else 0.0,
                    "h2p sites": len(h2p_sites),
                    "h2p miss": mass,
                    "recovered vs AT": recovered,
                }
            )
    checks = [
        ShapeCheck(
            "every benchmark has static H2P sites",
            not missing_h2p,
            f"missing: {missing_h2p}" if missing_h2p else f"{len(names)} benchmarks",
        ),
        ShapeCheck(
            "the static top-N carries AT misprediction mass",
            not zero_mass,
            f"zero-mass: {zero_mass}" if zero_mass else "mass > 0 everywhere",
        ),
        ShapeCheck(
            "a modern scheme beats AT(IHRT) on H2P mass on >= 1 benchmark",
            bool(modern_wins),
            ", ".join(f"{b}:{s}" for b, s in modern_wins[:6]) or "none",
        ),
        ShapeCheck(
            "per-site pipeline matches the scalar engine (modern schemes)",
            not parity_failures,
            "; ".join(parity_failures[:4]) or "bit-exact",
        ),
    ]

    geo = {text: geometric_mean(values) for text, values in overall.items()}
    notes = "overall geometric means: " + "  ".join(
        f"{text}={geo[text]:.4f}" for text in SPECS
    )
    return ExperimentReport(
        exp_id="fig11",
        title=f"Modern schemes vs AT on the top-{top} static H2P sites",
        rows=rows,
        shape_checks=checks,
        notes=notes,
    )


def site_table(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    backend: str = "auto",
    top: int = DEFAULT_TOP,
) -> list:
    """Per-H2P-site misprediction counts (the `repro h2p` detail table)."""
    from repro.analysis import analyze_program

    names = list(benchmarks) if benchmarks else workload_names()
    cache = cache or TraceCache()
    rows = []
    for name in names:
        workload = get_workload(name)
        dataset = workload.dataset("test")
        program = assemble(workload.build_source(dataset))
        static = analyze_program(program, max_conditional, name=name)
        h2p_sites = static.h2p_top(top)
        trace = cache.get(workload, "test", max_conditional)
        maps = _per_site_maps(SPECS, trace.records, backend)
        for rank, pc in enumerate(h2p_sites, start=1):
            row = {"benchmark": name, "rank": rank, "pc": f"{pc:#x}"}
            for text in SPECS:
                correct, total = maps[text].get(pc, (0, 0))
                row[text] = total - correct
            rows.append(row)
    return rows
