"""Figure 10: comparison of branch prediction schemes.

The paper's headline figure: with the 512-entry 4-way AHRT chosen everywhere
for comparable cost, Two-Level Adaptive Training tops the chart; Static
Training follows one to five percent lower; the profiling scheme and Lee &
Smith's BTB design land together several points below; last-time-style
prediction lower still.  The miss-rate framing — AT's miss rate is less than
half the best alternative's — is the "more than 100 percent improvement"
claim of the abstract, and is asserted here.

Static Training is shown, as deployed in practice, with the Table 3
training data set where one exists (Diff) and the same data set elsewhere.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import ExperimentReport, ShapeCheck, sweep_rows
from repro.sim.results import geometric_mean
from repro.sim.runner import SweepRunner
from repro.predictors.spec import parse_spec
from repro.workloads.base import DEFAULT_CONDITIONAL_BRANCHES, TraceCache

AT_SPEC = "AT(AHRT(512,12SR),PT(2^12,A2),)"
LS_SPEC = "LS(AHRT(512,A2),,)"
LT_SPEC = "LS(AHRT(512,LT),,)"
SPECS = [AT_SPEC, LS_SPEC, LT_SPEC, "Profile", "BTFN", "AlwaysTaken"]


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    runner = SweepRunner(benchmarks, max_conditional, cache, backend=backend)
    sweep = runner.run(SPECS, jobs=jobs)

    # Static Training as realistically deployed: Diff where Table 3 provides
    # a training set, Same (best case) where it does not.  Both variants run
    # as one fused sweep (the missing Diff cells skip, exactly like Figure 8)
    # and each benchmark reports the Diff accuracy when it exists.
    st_label = "ST(AHRT512, Diff where available)"
    st_diff = parse_spec("ST(AHRT(512,12SR),PT(2^12,PB),Diff)").canonical()
    st_same = parse_spec("ST(AHRT(512,12SR),PT(2^12,PB),Same)").canonical()
    st_sweep = runner.run([st_diff, st_same], jobs=jobs)
    diff_cells = st_sweep.accuracies(st_diff) if st_diff in st_sweep.results else {}
    st_accuracies = {}
    for benchmark in runner.benchmarks:
        st_accuracies[benchmark] = (
            diff_cells[benchmark]
            if benchmark in diff_cells
            else st_sweep.accuracy(st_same, benchmark)
        )
    st_mean = geometric_mean(list(st_accuracies.values()))

    at_mean = sweep.mean(AT_SPEC)
    ls_mean = sweep.mean(LS_SPEC)
    lt_mean = sweep.mean(LT_SPEC)
    profile_mean = sweep.mean("Profile")
    at_miss = 1.0 - at_mean
    best_runtime_miss = 1.0 - max(ls_mean, lt_mean, profile_mean)
    st_miss = 1.0 - st_mean

    checks = [
        ShapeCheck(
            "Two-Level Adaptive Training is the top curve",
            at_mean >= max(ls_mean, lt_mean, profile_mean, st_mean),
            f"AT={at_mean:.4f} ST={st_mean:.4f} LS={ls_mean:.4f} "
            f"Profile={profile_mean:.4f} LT={lt_mean:.4f}",
        ),
        ShapeCheck(
            "Static Training trails AT by roughly one to five percent",
            0.0 <= at_mean - st_mean <= 0.08,
            f"gap={at_mean - st_mean:.4f}",
        ),
        ShapeCheck(
            "profiling predicts almost as well as the LS BTB design",
            abs(profile_mean - ls_mean) <= 0.04,
            f"Profile={profile_mean:.4f} LS={ls_mean:.4f}",
        ),
        ShapeCheck(
            "last-time prediction trails the 2-bit counter design",
            lt_mean < ls_mean,
            f"LT={lt_mean:.4f} LS-A2={ls_mean:.4f}",
        ),
        ShapeCheck(
            "AT's miss rate is about half the best run-time alternative's "
            "(the paper's '>100% improvement in pipeline flushes': 3% vs 7%; "
            "the ratio shrinks slightly at reduced trace scale)",
            at_miss * 1.8 <= best_runtime_miss + 1e-9,
            f"AT miss={at_miss:.4f}, best runtime-scheme miss={best_runtime_miss:.4f}, "
            f"ratio={best_runtime_miss / max(at_miss, 1e-9):.2f}x",
        ),
        ShapeCheck(
            "AT mispredicts less than deployed Static Training",
            at_miss < st_miss,
            f"AT miss={at_miss:.4f}, ST miss={st_miss:.4f}",
        ),
    ]

    rows = sweep_rows(sweep)
    rows.append(
        {
            "scheme": st_label,
            **{name: st_accuracies.get(name, float("nan")) for name in sweep.benchmarks()},
            "Tot G Mean": st_mean,
        }
    )
    return ExperimentReport(
        exp_id="fig10",
        title="Comparison of branch prediction schemes (512-entry 4-way AHRT)",
        rows=rows,
        shape_checks=checks,
        sweep=sweep,
    )
