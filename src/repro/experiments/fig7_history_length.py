"""Figure 7: effect of the history register length.

The paper lengthens the history register from 6 to 12 bits in steps of two
and observes roughly +0.5 percent per step until the asymptote.  Longer
histories both distinguish longer patterns and slow warm-up, so the check is
monotonicity with a small tolerance plus a meaningful total gain.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import (
    ExperimentReport,
    ShapeCheck,
    ordering_check,
    sweep_rows,
)
from repro.sim.runner import run_sweep
from repro.workloads.base import DEFAULT_CONDITIONAL_BRANCHES, TraceCache

SPECS = [
    "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,10SR),PT(2^10,A2),)",
    "AT(AHRT(512,8SR),PT(2^8,A2),)",
    "AT(AHRT(512,6SR),PT(2^6,A2),)",
]
LABELS = ["12SR", "10SR", "8SR", "6SR"]


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    sweep = run_sweep(SPECS, benchmarks, max_conditional, cache, jobs=jobs, backend=backend)
    means = [sweep.mean(spec) for spec in SPECS]

    checks = [
        ordering_check(
            "accuracy improves with history length (12 >= 10 >= 8 >= 6, small tolerance)",
            means,
            LABELS,
            tolerance=0.004,
        ),
        ShapeCheck(
            "12-bit history clearly beats 6-bit history",
            means[0] > means[-1] + 0.01,
            f"12SR={means[0]:.4f} 6SR={means[-1]:.4f}",
        ),
    ]
    return ExperimentReport(
        exp_id="fig7",
        title="AT schemes using history registers of different lengths",
        rows=sweep_rows(sweep),
        shape_checks=checks,
        sweep=sweep,
    )
