"""Figure 4: distribution of dynamic branch instructions.

About 80 percent of dynamic branch instructions are conditional in the
paper's traces — the reason the study focuses on conditional-branch
prediction.  This experiment regenerates the per-class branch mix.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import ExperimentReport, ShapeCheck, band_check
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    TraceCache,
    default_cache,
    get_workload,
    workload_names,
)


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    del jobs, backend  # single pass over cached traces; no predictor simulated
    cache = cache if cache is not None else default_cache()
    names = list(benchmarks) if benchmarks is not None else workload_names()

    rows = []
    conditional_fractions = []
    for name in names:
        workload = get_workload(name)
        mix = cache.get(workload, "test", max_conditional).mix
        branches = mix.total_branches or 1
        rows.append(
            {
                "benchmark": name,
                "branches": mix.total_branches,
                "conditional %": 100.0 * mix.conditional / branches,
                "return %": 100.0 * mix.returns / branches,
                "imm-uncond %": 100.0 * mix.imm_unconditional / branches,
                "reg-uncond %": 100.0 * mix.reg_unconditional / branches,
            }
        )
        conditional_fractions.append(mix.conditional / branches)

    mean_conditional = (
        sum(conditional_fractions) / len(conditional_fractions)
        if conditional_fractions
        else 0.0
    )
    checks = [
        band_check(
            "~80% of dynamic branch instructions are conditional",
            mean_conditional,
            0.60,
            0.98,
        ),
        ShapeCheck(
            "conditional is the dominant branch class in every benchmark",
            all(
                row["conditional %"]
                >= max(row["return %"], row["imm-uncond %"], row["reg-uncond %"])
                for row in rows
            ),
        ),
    ]
    return ExperimentReport(
        exp_id="fig4",
        title="Distribution of dynamic branch instructions",
        rows=rows,
        shape_checks=checks,
    )
