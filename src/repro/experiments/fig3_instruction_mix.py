"""Figure 3: distribution of dynamic instructions.

The paper reports about 24 percent of dynamic instructions being branches
for the integer benchmarks and about 5 percent for the floating-point
benchmarks.  This experiment regenerates the per-benchmark instruction mix
from the analog traces and checks those demographics.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import ExperimentReport, ShapeCheck, band_check
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    FLOATING_POINT,
    INTEGER,
    TraceCache,
    default_cache,
    get_workload,
    workload_names,
)


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    del jobs, backend  # single pass over cached traces; no predictor simulated
    cache = cache if cache is not None else default_cache()
    names = list(benchmarks) if benchmarks is not None else workload_names()

    rows = []
    by_category: dict = {INTEGER: [], FLOATING_POINT: []}
    for name in names:
        workload = get_workload(name)
        mix = cache.get(workload, "test", max_conditional).mix
        rows.append(
            {
                "benchmark": name,
                "category": workload.category,
                "instructions": mix.total_instructions,
                "branches": mix.total_branches,
                "branch %": 100.0 * mix.branch_fraction,
                "non-branch %": 100.0 * (1.0 - mix.branch_fraction),
            }
        )
        by_category.setdefault(workload.category, []).append(mix.branch_fraction)

    checks = []
    int_fractions = by_category.get(INTEGER, [])
    fp_fractions = by_category.get(FLOATING_POINT, [])
    if int_fractions:
        mean_int = sum(int_fractions) / len(int_fractions)
        checks.append(
            band_check(
                "integer benchmarks: ~24% of dynamic instructions are branches",
                mean_int,
                0.15,
                0.45,
            )
        )
    if fp_fractions:
        mean_fp = sum(fp_fractions) / len(fp_fractions)
        checks.append(
            band_check(
                "FP benchmarks: ~5% of dynamic instructions are branches",
                mean_fp,
                0.02,
                0.20,
            )
        )
    if int_fractions and fp_fractions:
        checks.append(
            ShapeCheck(
                "integer codes are branchier than FP codes",
                min(int_fractions) > min(fp_fractions)
                and (sum(int_fractions) / len(int_fractions))
                > (sum(fp_fractions) / len(fp_fractions)),
                f"int mean={sum(int_fractions)/len(int_fractions):.3f}, "
                f"fp mean={sum(fp_fractions)/len(fp_fractions):.3f}",
            )
        )
        checks.append(
            ShapeCheck(
                "fpppp has the smallest branch fraction of the suite",
                "fpppp" not in names
                or min(rows, key=lambda row: row["branch %"])["benchmark"] == "fpppp",
            )
        )

    return ExperimentReport(
        exp_id="fig3",
        title="Distribution of dynamic instructions",
        rows=rows,
        shape_checks=checks,
        notes=(
            f"Traces capped at {max_conditional} conditional branches per benchmark "
            "(the paper uses twenty million; demographics stabilise far earlier)."
        ),
    )
