"""Table 2: configurations of simulated branch predictors.

The paper's Table 2 enumerates every simulated configuration in its naming
convention.  This experiment parses each row with
:mod:`repro.predictors.spec`, instantiates it (Static Training rows train on
a small synthetic trace just to prove buildability), and verifies the
round-trip through the canonical renderer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import ExperimentReport, ShapeCheck
from repro.predictors.spec import parse_spec
from repro.trace.synthetic import random_program
from repro.workloads.base import DEFAULT_CONDITIONAL_BRANCHES, TraceCache

#: every configuration row from the paper's Table 2
TABLE2_ROWS = [
    "AT(AHRT(256,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,12SR),PT(2^12,A3),)",
    "AT(AHRT(512,12SR),PT(2^12,A4),)",
    "AT(AHRT(512,12SR),PT(2^12,LT),)",
    "AT(AHRT(512,10SR),PT(2^10,A2),)",
    "AT(AHRT(512,8SR),PT(2^8,A2),)",
    "AT(AHRT(512,6SR),PT(2^6,A2),)",
    "AT(HHRT(256,12SR),PT(2^12,A2),)",
    "AT(HHRT(512,12SR),PT(2^12,A2),)",
    "AT(IHRT(,12SR),PT(2^12,A2),)",
    "ST(AHRT(512,12SR),PT(2^12,PB),Same)",
    "ST(HHRT(512,12SR),PT(2^12,PB),Same)",
    "ST(IHRT(,12SR),PT(2^12,PB),Same)",
    "ST(AHRT(512,12SR),PT(2^12,PB),Diff)",
    "ST(HHRT(512,12SR),PT(2^12,PB),Diff)",
    "ST(IHRT(,12SR),PT(2^12,PB),Diff)",
    "LS(AHRT(512,A2),,)",
    "LS(AHRT(512,LT),,)",
    "LS(HHRT(512,A2),,)",
    "LS(HHRT(512,LT),,)",
    "LS(IHRT(,A2),,)",
    "LS(IHRT(,LT),,)",
]


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    del max_conditional, benchmarks, cache, jobs, backend  # configuration-only
    training = list(random_program(64, 4000, seed=7))

    rows = []
    checks = []
    for text in TABLE2_ROWS:
        spec = parse_spec(text)
        predictor = spec.build(training_records=training)
        canonical = spec.canonical()
        reparsed = parse_spec(canonical).canonical()
        rows.append(
            {
                "configuration": text,
                "scheme": spec.scheme,
                "hrt": spec.hrt_kind or "-",
                "entries": spec.hrt_entries if spec.hrt_entries else "inf",
                "built": type(predictor).__name__,
            }
        )
        checks.append(
            ShapeCheck(
                f"{text}: parse -> build -> canonical round-trip",
                canonical == reparsed,
                f"canonical={canonical}",
            )
        )

    return ExperimentReport(
        exp_id="table2",
        title="Configurations of simulated branch predictors",
        rows=rows,
        shape_checks=checks,
        notes="All 23 Table 2 rows parse, build and round-trip through the spec grammar.",
    )
