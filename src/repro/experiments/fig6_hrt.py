"""Figure 6: effect of the history register table implementation.

The paper's ordering, by decreasing HRT hit ratio: IHRT best, then the
512-entry AHRT, 512-entry HHRT, 256-entry AHRT, 256-entry HHRT.  At our
trace scale the 256-entry pair lands within a fraction of a percent of each
other (see EXPERIMENTS.md), so that adjacent pair is checked with a small
tolerance while the capacity and tag-store effects are asserted strictly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import (
    ExperimentReport,
    ShapeCheck,
    ordering_check,
    sweep_rows,
)
from repro.sim.runner import run_sweep
from repro.workloads.base import DEFAULT_CONDITIONAL_BRANCHES, TraceCache

SPECS = [
    "AT(IHRT(,12SR),PT(2^12,A2),)",
    "AT(AHRT(512,12SR),PT(2^12,A2),)",
    "AT(HHRT(512,12SR),PT(2^12,A2),)",
    "AT(AHRT(256,12SR),PT(2^12,A2),)",
    "AT(HHRT(256,12SR),PT(2^12,A2),)",
]
LABELS = ["IHRT", "AHRT512", "HHRT512", "AHRT256", "HHRT256"]


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    sweep = run_sweep(SPECS, benchmarks, max_conditional, cache, jobs=jobs, backend=backend)
    means = [sweep.mean(spec) for spec in SPECS]
    ihrt, ahrt512, hhrt512, ahrt256, hhrt256 = means

    checks = [
        ShapeCheck(
            "IHRT is the upper bound (no history interference)",
            ihrt >= max(means[1:]),
            f"IHRT={ihrt:.4f}",
        ),
        ShapeCheck(
            "tag store helps at 512 entries: AHRT(512) >= HHRT(512)",
            ahrt512 >= hhrt512,
            f"AHRT512={ahrt512:.4f} HHRT512={hhrt512:.4f}",
        ),
        ShapeCheck(
            "capacity helps: 512-entry tables beat 256-entry tables per kind",
            ahrt512 > ahrt256 and hhrt512 > hhrt256,
            f"AHRT {ahrt512:.4f}>{ahrt256:.4f}, HHRT {hhrt512:.4f}>{hhrt256:.4f}",
        ),
        ordering_check(
            "overall Figure 6 ordering (256-entry pair within 0.5% tolerance)",
            means,
            LABELS,
            tolerance=0.005,
        ),
    ]
    return ExperimentReport(
        exp_id="fig6",
        title="AT schemes using different HRT implementations",
        rows=sweep_rows(sweep),
        shape_checks=checks,
        sweep=sweep,
    )
