"""Shared result/reporting types for the experiments.

An experiment's deliverable is an :class:`ExperimentReport`: the regenerated
data (rows keyed like the paper's axes), a human-readable rendering in the
style of the paper's figures, and explicit :class:`ShapeCheck` assertions.
The benchmark harness fails if any shape check fails, so a regression in any
substrate is caught by the same code that regenerates the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.results import SweepResult


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper, verified against our data."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.description}{suffix}"


@dataclass
class ExperimentReport:
    """The regenerated artefact for one table/figure."""

    exp_id: str
    title: str
    rows: List[Dict[str, object]]
    shape_checks: List[ShapeCheck] = field(default_factory=list)
    notes: str = ""
    sweep: Optional[SweepResult] = None

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.shape_checks)

    def failures(self) -> List[ShapeCheck]:
        return [check for check in self.shape_checks if not check.passed]

    def render(self) -> str:
        """Plain-text rendering: title, table, shape checks, notes."""
        lines = [f"== {self.exp_id}: {self.title} ==", ""]
        lines.append(render_table(self.rows))
        if self.shape_checks:
            lines.append("")
            lines.append("Shape checks:")
            lines.extend(f"  {check}" for check in self.shape_checks)
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def render_table(rows: Sequence[Dict[str, object]]) -> str:
    """Format dict-rows as an aligned ASCII table.

    Column order follows the first row's key order; floats print with three
    decimals (accuracies), everything else via ``str``.
    """
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {
        column: max(len(column), *(len(cell(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(cell(row.get(column, "")).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    return "\n".join([header, separator, *body])


def sweep_rows(sweep: SweepResult, label: str = "scheme") -> List[Dict[str, object]]:
    """Standard figure rows: per-benchmark accuracies plus the paper's three
    geometric-mean columns, one row per scheme."""
    rows: List[Dict[str, object]] = []
    benchmarks = sweep.benchmarks()
    for scheme in sweep.schemes():
        accuracies = sweep.accuracies(scheme)
        row: Dict[str, object] = {label: scheme}
        for benchmark in benchmarks:
            row[benchmark] = accuracies.get(benchmark, float("nan"))
        row["Tot G Mean"] = sweep.mean(scheme)
        row["Int G Mean"] = sweep.mean(scheme, "integer")
        row["FP G Mean"] = sweep.mean(scheme, "fp")
        rows.append(row)
    return rows


def ordering_check(
    description: str, values: Sequence[float], labels: Sequence[str], tolerance: float = 0.0
) -> ShapeCheck:
    """Check that ``values`` are non-increasing (first is best), allowing each
    adjacent pair to violate by at most ``tolerance``."""
    violations = []
    for index in range(len(values) - 1):
        if values[index] + tolerance < values[index + 1]:
            violations.append(
                f"{labels[index]}={values[index]:.4f} < {labels[index + 1]}={values[index + 1]:.4f}"
            )
    detail = "; ".join(
        f"{label}={value:.4f}" for label, value in zip(labels, values)
    )
    if violations:
        detail += " | violated: " + "; ".join(violations)
    return ShapeCheck(description, not violations, detail)


def band_check(description: str, value: float, low: float, high: float) -> ShapeCheck:
    """Check that a value falls inside a coarse band."""
    return ShapeCheck(
        description, low <= value <= high, f"value={value:.4f}, band=[{low}, {high}]"
    )
