"""Table 1: number of static conditional branches in each benchmark.

The analog workloads were engineered so their static conditional branch
populations land near the paper's counts (gcc, the outlier at 6,922, is
deliberately scaled down — recorded in DESIGN.md).  This experiment counts
distinct conditional-branch PCs in each trace and compares against the
published numbers as coarse bands.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.reporting import ExperimentReport, ShapeCheck
from repro.trace.stats import static_branch_census
from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    TraceCache,
    default_cache,
    get_workload,
    workload_names,
)

#: the published Table 1 counts
PAPER_COUNTS = {
    "eqntott": 277,
    "espresso": 556,
    "gcc": 6922,
    "li": 489,
    "doduc": 1149,
    "fpppp": 653,
    "matrix300": 213,
    "spice2g6": 606,
    "tomcatv": 370,
}

#: acceptance band relative to the paper's count (gcc is scaled; see notes)
BAND = (0.4, 1.6)
GCC_BAND = (0.15, 1.6)


def run(
    max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    benchmarks: Optional[Sequence[str]] = None,
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> ExperimentReport:
    del jobs, backend  # single pass over cached traces; no predictor simulated
    cache = cache if cache is not None else default_cache()
    names = list(benchmarks) if benchmarks is not None else workload_names()

    rows = []
    checks = []
    for name in names:
        workload = get_workload(name)
        records = cache.get(workload, "test", max_conditional).records
        measured = static_branch_census(records).static_conditional
        paper = PAPER_COUNTS.get(name)
        rows.append(
            {
                "benchmark": name,
                "paper": paper if paper is not None else "-",
                "measured": measured,
                "ratio": (measured / paper) if paper else float("nan"),
            }
        )
        if paper:
            low, high = GCC_BAND if name == "gcc" else BAND
            checks.append(
                ShapeCheck(
                    f"{name}: static conditional count within {low}-{high}x of paper",
                    low * paper <= measured <= high * paper,
                    f"paper={paper}, measured={measured}",
                )
            )
    if {"gcc", "matrix300"} <= set(names):
        by_name = {row["benchmark"]: row["measured"] for row in rows}
        largest_two = sorted(by_name.values())[-2:]
        smallest_two = sorted(by_name.values())[:2]
        checks.append(
            ShapeCheck(
                "gcc is among the two largest static populations, matrix300 among the two smallest",
                by_name["gcc"] in largest_two and by_name["matrix300"] in smallest_two,
                f"gcc={by_name['gcc']}, matrix300={by_name['matrix300']}",
            )
        )

    return ExperimentReport(
        exp_id="table1",
        title="Static conditional branches per benchmark",
        rows=rows,
        shape_checks=checks,
        notes=(
            "gcc's population is a deliberate scale-down of the paper's 6,922 "
            "(see DESIGN.md substitutions); all others target the published count."
        ),
    )
