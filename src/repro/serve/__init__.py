"""Branch prediction as a service.

The serving subsystem turns the offline simulation stack into an online
scoring service:

* :mod:`repro.serve.protocol` — the length-prefixed binary wire format
  (frames carrying YPTRACE2 branch records, prediction bytes, JSON control
  payloads and typed errors);
* :mod:`repro.serve.server` — the asyncio server: per-connection predictor
  sessions resolved through the spec registry and
  :mod:`repro.sim.backend`, micro-batched scoring per event-loop tick
  (vector kernels with carried state where the spec allows, the scalar
  engine otherwise), read timeouts, frame/connection limits, graceful
  drain, and a built-in stats frame;
* :mod:`repro.serve.client` — sync and asyncio client libraries;
* :mod:`repro.serve.loadgen` — a concurrent-session load generator and the
  ``repro bench-serve`` benchmark harness.

Served predictions are bit-exact against the offline engine for every
scheme: a session is a :class:`repro.sim.streaming.StreamingScorer`, whose
chunk-by-chunk replay is the same computation the batch sweep performs.
See ``docs/serving.md`` for the protocol specification.
"""

from repro.serve.client import AsyncPredictionClient, PredictionClient, PredictionResult
from repro.serve.server import PredictionServer, ServerConfig

__all__ = [
    "AsyncPredictionClient",
    "PredictionClient",
    "PredictionResult",
    "PredictionServer",
    "ServerConfig",
]
