"""Branch prediction as a service.

The serving subsystem turns the offline simulation stack into an online
scoring service:

* :mod:`repro.serve.protocol` — the length-prefixed binary wire format
  (frames carrying YPTRACE2 branch records, prediction bytes, JSON control
  payloads and typed errors), in two versions: v1 (one connection = one
  session) and v2 (per-frame session ids multiplexing thousands of
  logical sessions over one connection);
* :mod:`repro.serve.server` — the asyncio server: logical predictor
  sessions resolved through the spec registry and
  :mod:`repro.sim.backend`, with a server-wide score loop that *fuses*
  batches from all sessions sharing a (spec, backend) pair into single
  vector-kernel calls per tick, read timeouts, frame/connection/session
  limits, graceful drain, and a built-in stats frame;
* :mod:`repro.serve.supervisor` — a pre-fork worker pool sharing one
  listen port via ``SO_REUSEPORT`` (inherited-socket fallback), with
  SIGTERM-drains-everything semantics and an aggregated-stats endpoint;
* :mod:`repro.serve.client` — sync and asyncio v1 clients plus the
  multiplexing :class:`MuxPredictionClient`;
* :mod:`repro.serve.loadgen` — a concurrent-session load generator and the
  ``repro bench-serve`` benchmark harness.

Served predictions are bit-exact against the offline engine for every
scheme and any interleaving: each session's predictor state lives
namespaced inside a :class:`repro.sim.streaming.MultiSessionScorer`, so
fused replay is the same computation the batch sweep performs.  See
``docs/serving.md`` for the protocol specification and scaling recipe.
"""

from repro.serve.client import (
    AsyncPredictionClient,
    MuxPredictionClient,
    PredictionClient,
    PredictionResult,
)
from repro.serve.server import PredictionServer, ServeStats, ServerConfig
from repro.serve.supervisor import Supervisor

__all__ = [
    "AsyncPredictionClient",
    "MuxPredictionClient",
    "PredictionClient",
    "PredictionResult",
    "PredictionServer",
    "ServeStats",
    "ServerConfig",
    "Supervisor",
]
