"""The asyncio prediction server.

One TCP connection is one *predictor session*: the client's HELLO names a
Table 2 predictor spec (resolved through the ordinary registry) and an
optional backend request (resolved through :mod:`repro.sim.backend`); the
server then scores every RECORDS frame the connection sends against that
session's live predictor state and answers with per-record prediction
bytes.  Sessions are fully isolated — each owns a
:class:`~repro.sim.streaming.StreamingScorer`, so vectorizable specs run on
the carried-state NumPy kernels while AHRT/HHRT (and NumPy-less hosts)
fall back to the scalar engine, bit-exactly either way.

**Micro-batching.**  A session's frames are decoded by a reader task and
scored by a per-connection scorer task connected by a bounded queue.  The
scorer drains *everything* queued when it wakes — all RECORDS frames that
arrived during the previous event-loop tick — and scores them as one
batch, then answers each frame with its slice of the predictions.  Under
load the batches grow and the vector kernels amortise; when idle the batch
is a single frame and latency stays at one round trip.  The bounded queue
gives natural backpressure: a slow scorer stops the reader, which stops
the TCP window.

**Robustness.**  Malformed frames, oversized frames, protocol violations,
bad specs/backends and read timeouts each earn the *offending connection*
one typed ERROR frame and a close; the server and every other session keep
running.  A connection limit rejects surplus clients with ``busy``.
``stop()`` (installed on SIGTERM/SIGINT by
:meth:`PredictionServer.install_signal_handlers`) stops accepting, drains
in-flight sessions for a grace period, then cancels stragglers.  The
STATS_REQUEST frame exposes live counters — sessions, records served, the
micro-batch size histogram and per-scheme scoring latency — so the service
is observable with nothing but a client.
"""

from __future__ import annotations

import asyncio
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError, ProtocolError, ReproError, SpecParseError
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.kernels import choose_backend
from repro.sim.streaming import StreamingScorer, make_scorer, needs_training
from repro.trace.record import BranchRecord
from repro.serve import protocol
from repro.serve.protocol import (
    FRAME_BYE,
    FRAME_HELLO,
    FRAME_OK,
    FRAME_PREDICTIONS,
    FRAME_RECORDS,
    FRAME_STATS,
    FRAME_STATS_REQUEST,
    FRAME_TRAIN,
    MAX_FRAME_BYTES,
)

__all__ = ["ServerConfig", "ServeStats", "PredictionServer"]


@dataclass
class ServerConfig:
    """Tunables of a :class:`PredictionServer`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port is ``server.port``
    backend: Optional[str] = None  #: session default; None = process default
    max_connections: int = 64
    max_frame_bytes: int = MAX_FRAME_BYTES
    read_timeout: float = 30.0  #: seconds a session may sit idle mid-stream
    drain_timeout: float = 10.0  #: grace period for in-flight sessions on stop
    queue_frames: int = 64  #: per-session frame backlog before backpressure


class ServeStats:
    """Server-wide counters reported by the STATS frame."""

    def __init__(self) -> None:
        self.sessions_total = 0
        self.records_served = 0
        self.frames = 0
        self.errors = 0
        #: micro-batch size histogram, keyed by power-of-two bucket ceiling.
        self.batch_sizes: Dict[int, int] = {}
        #: per-scheme scoring cost: batches, records, seconds.
        self.schemes: Dict[str, Dict[str, float]] = {}

    def record_batch(self, scheme: str, size: int, seconds: float) -> None:
        bucket = 1 << max(size - 1, 0).bit_length()
        self.batch_sizes[bucket] = self.batch_sizes.get(bucket, 0) + 1
        entry = self.schemes.setdefault(
            scheme, {"batches": 0, "records": 0, "seconds": 0.0}
        )
        entry["batches"] += 1
        entry["records"] += size
        entry["seconds"] += seconds
        self.records_served += size

    def as_dict(self, active_sessions: int) -> Dict[str, Any]:
        schemes = {}
        for scheme, entry in sorted(self.schemes.items()):
            mean_us = (
                1e6 * entry["seconds"] / entry["batches"] if entry["batches"] else 0.0
            )
            schemes[scheme] = {
                "batches": int(entry["batches"]),
                "records": int(entry["records"]),
                "seconds": round(entry["seconds"], 6),
                "mean_batch_us": round(mean_us, 1),
            }
        return {
            "active_sessions": active_sessions,
            "sessions_total": self.sessions_total,
            "records_served": self.records_served,
            "frames": self.frames,
            "errors": self.errors,
            "batch_size_histogram": {
                str(bucket): count for bucket, count in sorted(self.batch_sizes.items())
            },
            "schemes": schemes,
        }


@dataclass
class _Session:
    """Per-connection predictor session state."""

    session_id: int
    backend_request: Optional[str] = None
    spec: Optional[PredictorSpec] = None
    resolved_backend: Optional[str] = None
    scorer: Optional[StreamingScorer] = None
    training: List[BranchRecord] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        stats = self.scorer.stats if self.scorer is not None else None
        return {
            "session": self.session_id,
            "scheme": self.spec.canonical() if self.spec is not None else None,
            "backend": self.resolved_backend,
            "conditional": stats.conditional_total if stats else 0,
            "correct": stats.conditional_correct if stats else 0,
            "accuracy": stats.accuracy if stats else 0.0,
        }


# scorer-queue sentinels
_STATS = ("stats",)
_BYE = ("bye",)


class PredictionServer:
    """Serve branch-prediction sessions over TCP (see module docstring)."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.stats = ServeStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "Set[asyncio.Task]" = set()
        self._next_session = 0
        self._stopping = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound TCP port (useful with the ephemeral default)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def active_sessions(self) -> int:
        return len(self._connections)

    def install_signal_handlers(self) -> None:
        """Arrange a graceful drain on SIGTERM / SIGINT."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # e.g. non-Unix event loops

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` has completed (e.g. via SIGTERM)."""
        await self._closed.wait()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight sessions, then shut down.

        ``drain=True`` gives active sessions ``config.drain_timeout``
        seconds to finish their streams before cancellation; ``False``
        cancels immediately.
        """
        if self._stopping:
            await self._closed.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = set(self._connections)
        if pending and drain:
            _done, pending = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._closed.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        if len(self._connections) >= self.config.max_connections or self._stopping:
            self.stats.errors += 1
            await self._send_error(
                writer, "busy", f"server at its {self.config.max_connections}-connection limit"
            )
            await self._close_writer(writer)
            return
        self._connections.add(task)
        self._next_session += 1
        self.stats.sessions_total += 1
        session = _Session(
            session_id=self._next_session, backend_request=self.config.backend
        )
        queue: "asyncio.Queue[Tuple[Any, ...]]" = asyncio.Queue(
            maxsize=self.config.queue_frames
        )
        scorer_task = asyncio.create_task(self._score_loop(session, queue, writer))
        try:
            await self._read_loop(session, queue, reader, writer, scorer_task)
        except asyncio.CancelledError:
            pass  # server shutdown cancelled this connection; end quietly
        finally:
            if not scorer_task.done():
                scorer_task.cancel()
            try:
                await asyncio.gather(scorer_task, return_exceptions=True)
                await self._close_writer(writer)
            except asyncio.CancelledError:
                writer.close()
            self._connections.discard(task)

    async def _read_loop(
        self,
        session: _Session,
        queue: "asyncio.Queue[Tuple[Any, ...]]",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        scorer_task: "asyncio.Task",
    ) -> None:
        """Decode frames and feed the session's scorer queue.

        Every exit path of this coroutine closes only this session; typed
        errors are reported to the client before the close.
        """
        try:
            while True:
                try:
                    frame = await asyncio.wait_for(
                        protocol.read_frame(reader, self.config.max_frame_bytes),
                        timeout=self.config.read_timeout,
                    )
                except asyncio.TimeoutError:
                    self.stats.errors += 1
                    await self._send_error(
                        writer,
                        "timeout",
                        f"no frame within the {self.config.read_timeout:g}s read timeout",
                    )
                    return
                if frame is None:  # client closed (mid-stream disconnect is fine)
                    return
                if scorer_task.done():  # scoring failed; surface and stop
                    return
                frame_type, payload = frame
                self.stats.frames += 1
                if frame_type == FRAME_HELLO:
                    self._handle_hello(session, payload)
                    spec = session.spec
                    assert spec is not None  # _handle_hello set it or raised
                    ok = {
                        "session": session.session_id,
                        "scheme": spec.canonical(),
                        "backend": session.resolved_backend,
                        "needs_training": needs_training(spec),
                    }
                    writer.write(protocol.pack_json(FRAME_OK, ok))
                    await writer.drain()
                elif frame_type == FRAME_TRAIN:
                    self._require_hello(session)
                    if session.scorer is not None:
                        raise ProtocolError(
                            "TRAIN after the first RECORDS frame", "protocol"
                        )
                    session.training.extend(protocol.unpack_records(payload))
                elif frame_type == FRAME_RECORDS:
                    self._require_hello(session)
                    records = protocol.unpack_records(payload)
                    if session.scorer is None:
                        session.scorer = self._build_scorer(session)
                    await queue.put(("records", records))
                elif frame_type == FRAME_STATS_REQUEST:
                    self._require_hello(session)
                    await queue.put(_STATS)
                elif frame_type == FRAME_BYE:
                    await queue.put(_BYE)
                    await asyncio.wait_for(scorer_task, timeout=None)
                    return
                else:
                    name = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
                    raise ProtocolError(
                        f"unexpected frame type {name} from client", "bad-frame"
                    )
        except ProtocolError as exc:
            self.stats.errors += 1
            await self._send_error(writer, exc.code, str(exc))
        except SpecParseError as exc:
            self.stats.errors += 1
            await self._send_error(writer, "bad-spec", str(exc))
        except ConfigError as exc:
            self.stats.errors += 1
            await self._send_error(writer, "bad-backend", str(exc))
        except ReproError as exc:
            self.stats.errors += 1
            await self._send_error(writer, "internal", str(exc))
        except (ConnectionResetError, BrokenPipeError):
            return  # mid-stream disconnect; nothing to report to anyone

    # ------------------------------------------------------------------
    def _handle_hello(self, session: _Session, payload: bytes) -> None:
        if session.spec is not None:
            raise ProtocolError("duplicate HELLO", "protocol")
        hello = protocol.unpack_json(payload, FRAME_HELLO)
        spec_text = hello.get("spec")
        if not isinstance(spec_text, str) or not spec_text:
            raise ProtocolError("HELLO must carry a 'spec' string", "bad-hello")
        spec = parse_spec(spec_text)  # SpecParseError -> bad-spec
        backend = hello.get("backend", None)
        if backend is not None and not isinstance(backend, str):
            raise ProtocolError("HELLO 'backend' must be a string", "bad-hello")
        if backend is None:
            backend = session.backend_request
        # resolve now so an impossible request fails the handshake, not the
        # first RECORDS frame; ConfigError -> bad-backend
        session.resolved_backend = choose_backend(spec, backend)
        session.backend_request = backend
        session.spec = spec

    @staticmethod
    def _require_hello(session: _Session) -> None:
        if session.spec is None:
            raise ProtocolError("frame before HELLO", "protocol")

    def _build_scorer(self, session: _Session) -> StreamingScorer:
        assert session.spec is not None
        training = session.training if session.training else None
        if needs_training(session.spec) and training is None:
            raise ProtocolError(
                f"{session.spec.canonical()} sessions need TRAIN frames before RECORDS",
                "protocol",
            )
        scorer = make_scorer(session.spec, session.backend_request, training)
        session.training = []  # the scorer owns them now; free the buffer
        return scorer

    # ------------------------------------------------------------------
    async def _score_loop(
        self,
        session: _Session,
        queue: "asyncio.Queue[Tuple[Any, ...]]",
        writer: asyncio.StreamWriter,
    ) -> None:
        """Drain the queue in micro-batches and answer each frame in order."""
        try:
            finished = False
            while not finished:
                items = [await queue.get()]
                while True:  # everything already queued = this micro-batch
                    try:
                        items.append(queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                pending_frames: List[List[BranchRecord]] = []
                for item in items:
                    if item[0] == "records":
                        pending_frames.append(item[1])
                        continue
                    await self._flush_frames(session, pending_frames, writer)
                    pending_frames = []
                    if item[0] == "stats":
                        writer.write(
                            protocol.pack_json(FRAME_STATS, self._stats_payload(session))
                        )
                    else:  # bye: final stats, then end the session
                        payload = self._stats_payload(session)
                        payload["final"] = True
                        writer.write(protocol.pack_json(FRAME_STATS, payload))
                        finished = True
                        break
                await self._flush_frames(session, pending_frames, writer)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            # The client went away mid-answer.  Keep draining the queue so a
            # reader blocked on a full queue can run, notice EOF and exit;
            # it cancels this task on its way out.
            while True:
                if (await queue.get())[0] == "bye":
                    return

    async def _flush_frames(
        self,
        session: _Session,
        frames: List[List[BranchRecord]],
        writer: asyncio.StreamWriter,
    ) -> None:
        """Score queued RECORDS frames as one batch; answer each in order."""
        if not frames:
            return
        scorer = session.scorer
        assert scorer is not None and session.spec is not None
        if len(frames) == 1:
            merged = frames[0]
        else:
            merged = [record for frame in frames for record in frame]
        started = time.perf_counter()
        predictions = scorer.feed(merged)
        elapsed = time.perf_counter() - started
        self.stats.record_batch(session.spec.canonical(), len(merged), elapsed)
        offset = 0
        for frame in frames:
            frame_predictions = predictions[offset : offset + len(frame)]
            offset += len(frame)
            writer.write(
                protocol.pack_frame(
                    FRAME_PREDICTIONS,
                    protocol.encode_predictions(frame, frame_predictions),
                )
            )

    def _stats_payload(self, session: _Session) -> Dict[str, Any]:
        return {
            "server": self.stats.as_dict(self.active_sessions),
            "session": session.as_dict(),
        }

    # ------------------------------------------------------------------
    async def _send_error(
        self, writer: asyncio.StreamWriter, code: str, message: str
    ) -> None:
        try:
            writer.write(protocol.pack_error(code, message))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
