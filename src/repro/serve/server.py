"""The asyncio prediction server.

A client connection carries one or many *predictor sessions*.  A v1 HELLO
names a Table 2 predictor spec and the whole connection is that one
session, exactly as in the original service.  A v2 HELLO (``"version": 2``)
negotiates *session multiplexing*: the client then OPENs logical sessions —
each with its own spec, backend and predictor state — and interleaves
record frames for thousands of them over the single TCP stream, every
frame carrying its session id.

**Cross-session batch fusion.**  Scoring is no longer per connection: a
single server-wide score loop drains everything queued during the previous
event-loop tick — from *all* sessions on *all* connections — groups it by
(spec, resolved backend) into *fusion groups*, and scores each group's
queued batches with one fused call into a
:class:`~repro.sim.streaming.MultiSessionScorer`.  Per-session predictor
state is namespaced inside the scorer, so fusion is bit-exact with running
every session alone, under any chunking and interleaving; what fusion buys
is batch size — under load the vector kernels see one large batch per tick
instead of dozens of small ones, and per-record cost collapses.  Each
RECORDS frame is still answered individually, in per-session order.

**Robustness.**  Malformed frames, oversized frames, protocol violations,
bad specs/backends/session-ids and read timeouts each earn the *offending
connection* one typed ERROR frame and a close; the server and every other
connection keep running.  A connection limit rejects surplus clients with
``busy``.  A consumer that stops reading its predictions for longer than
the read timeout is disconnected rather than allowed to stall the shared
score loop.  ``stop()`` (installed on SIGTERM/SIGINT by
:meth:`PredictionServer.install_signal_handlers`) stops accepting, drains
in-flight sessions for a grace period, then cancels stragglers.  The
STATS_REQUEST frame exposes live counters — active/peak logical sessions,
records served, the batch-size histogram (fused batches show up as buckets
larger than any single client chunk), fusion counters and per-scheme
scoring latency — so the service is observable with nothing but a client.
For multi-process scale-out, see :mod:`repro.serve.supervisor`.
"""

from __future__ import annotations

import asyncio
import signal
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError, ProtocolError, ReproError, SpecParseError
from repro.predictors.spec import PredictorSpec, parse_spec
from repro.sim.kernels import choose_backend
from repro.sim.results import PredictionStats
from repro.sim.streaming import (
    FusedPredictions,
    MultiSessionScorer,
    make_multi_scorer,
    needs_training,
)
from repro.trace.record import BranchRecord
from repro.serve import protocol
from repro.serve.protocol import (
    FRAME_BYE,
    FRAME_CLOSE,
    FRAME_HELLO,
    FRAME_OK,
    FRAME_OPEN,
    FRAME_PREDICTIONS,
    FRAME_RECORDS,
    FRAME_RECORDS2,
    FRAME_STATS,
    FRAME_STATS_REQUEST,
    FRAME_TRAIN,
    FRAME_TRAIN2,
    MAX_FRAME_BYTES,
    MAX_SESSION_ID,
    PROTOCOL_VERSION,
)

__all__ = ["ServerConfig", "ServeStats", "PredictionServer"]


def _parse_records(payload: bytes) -> Any:
    """Decode a RECORDS payload, columnar when NumPy allows.

    The packed form flows through the scorers unchanged: the vector engine
    consumes the columns directly (and answers with a
    :class:`FusedPredictions`), the scalar engine iterates it like any
    record sequence.
    """
    packed = protocol.unpack_records_packed(payload)
    if packed is None:
        return protocol.unpack_records(payload)
    return packed


@dataclass
class ServerConfig:
    """Tunables of a :class:`PredictionServer`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port is ``server.port``
    backend: Optional[str] = None  #: session default; None = process default
    max_connections: int = 64
    max_frame_bytes: int = MAX_FRAME_BYTES
    read_timeout: float = 30.0  #: seconds a session may sit idle mid-stream
    drain_timeout: float = 10.0  #: grace period for in-flight sessions on stop
    queue_frames: int = 64  #: per-connection frame backlog before backpressure
    max_sessions: int = 4096  #: logical sessions one v2 connection may hold
    #: seconds the score loop lingers collecting frames from concurrent
    #: sessions before scoring, so they fuse into one kernel call; never
    #: applied while a single session is active (request-response latency
    #: is unchanged for lone v1 clients)
    fuse_window: float = 0.002


class ServeStats:
    """Server-wide counters reported by the STATS frame."""

    def __init__(self) -> None:
        self.sessions_total = 0
        self.active_sessions = 0
        self.peak_sessions = 0
        self.records_served = 0
        self.frames = 0
        self.errors = 0
        #: micro-batch size histogram, keyed by power-of-two bucket ceiling.
        self.batch_sizes: Dict[int, int] = {}
        #: batches that fused records from more than one session.
        self.fused_batches = 0
        #: most sessions ever fused into one scoring call.
        self.max_fused_sessions = 0
        #: per-scheme scoring cost: batches, records, seconds.
        self.schemes: Dict[str, Dict[str, float]] = {}

    def session_opened(self) -> None:
        self.sessions_total += 1
        self.active_sessions += 1
        self.peak_sessions = max(self.peak_sessions, self.active_sessions)

    def session_closed(self) -> None:
        self.active_sessions -= 1

    def record_batch(
        self, scheme: str, size: int, seconds: float, sessions: int = 1
    ) -> None:
        bucket = 1 << max(size - 1, 0).bit_length()
        self.batch_sizes[bucket] = self.batch_sizes.get(bucket, 0) + 1
        if sessions > 1:
            self.fused_batches += 1
        self.max_fused_sessions = max(self.max_fused_sessions, sessions)
        entry = self.schemes.setdefault(
            scheme, {"batches": 0, "records": 0, "seconds": 0.0}
        )
        entry["batches"] += 1
        entry["records"] += size
        entry["seconds"] += seconds
        self.records_served += size

    def as_dict(self) -> Dict[str, Any]:
        schemes = {}
        for scheme, entry in sorted(self.schemes.items()):
            mean_us = (
                1e6 * entry["seconds"] / entry["batches"] if entry["batches"] else 0.0
            )
            schemes[scheme] = {
                "batches": int(entry["batches"]),
                "records": int(entry["records"]),
                "seconds": round(entry["seconds"], 6),
                "mean_batch_us": round(mean_us, 1),
            }
        return {
            "active_sessions": self.active_sessions,
            "peak_sessions": self.peak_sessions,
            "sessions_total": self.sessions_total,
            "records_served": self.records_served,
            "frames": self.frames,
            "errors": self.errors,
            "fused_batches": self.fused_batches,
            "max_fused_sessions": self.max_fused_sessions,
            "batch_size_histogram": {
                str(bucket): count for bucket, count in sorted(self.batch_sizes.items())
            },
            "schemes": schemes,
        }


class _FusionGroup:
    """All live sessions of one (spec, resolved backend) pair."""

    def __init__(self, spec: PredictorSpec, resolved_backend: str):
        self.spec = spec
        self.scheme = spec.canonical()
        self.resolved_backend = resolved_backend
        self.scorer: MultiSessionScorer = make_multi_scorer(spec, resolved_backend)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.scheme, self.resolved_backend)


@dataclass
class _Session:
    """One logical predictor session (v1: the whole connection; v2: one of
    many multiplexed over it)."""

    key: int  #: server-global id; namespaces this session's predictor state
    sid: int  #: client-visible session id (v1 clients see ``key``)
    conn: "_Connection"
    spec: PredictorSpec
    backend_request: Optional[str]
    resolved_backend: str
    display_id: int
    training: List[BranchRecord] = field(default_factory=list)
    group: Optional[_FusionGroup] = None
    started: bool = False  #: first RECORDS seen; scorer state exists
    closed: bool = False

    def stats(self) -> PredictionStats:
        if self.started and not self.closed and self.group is not None:
            return self.group.scorer.session_stats(self.key)
        return PredictionStats()

    def as_dict(self) -> Dict[str, Any]:
        stats = self.stats()
        return {
            "session": self.display_id,
            "scheme": self.spec.canonical(),
            "backend": self.resolved_backend,
            "conditional": stats.conditional_total,
            "correct": stats.conditional_correct,
            "accuracy": stats.accuracy,
        }


class _Connection:
    """Per-TCP-connection state: protocol version and logical sessions."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.version = 1
        self.hello_done = False
        self.max_sessions = 1
        self.sessions: Dict[int, _Session] = {}  #: client sid -> session


class PredictionServer:
    """Serve branch-prediction sessions over TCP (see module docstring)."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.stats = ServeStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "Set[asyncio.Task]" = set()
        self._groups: Dict[Tuple[str, str], _FusionGroup] = {}
        self._queue: "Optional[asyncio.Queue[Tuple[Any, ...]]]" = None
        self._score_task: "Optional[asyncio.Task]" = None
        self._next_session = 0
        self._stopping = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, sock: Optional[socket.socket] = None) -> None:
        """Bind and start accepting connections.

        ``sock`` lets a supervisor hand this server a pre-bound listening
        socket (``SO_REUSEPORT`` sibling or an inherited fd); otherwise the
        configured host/port is bound here.
        """
        self._queue = asyncio.Queue(
            maxsize=max(self.config.queue_frames, 1)
            * max(self.config.max_connections, 1)
        )
        self._score_task = asyncio.create_task(self._score_loop())
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )

    @property
    def port(self) -> int:
        """The bound TCP port (useful with the ephemeral default)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def active_sessions(self) -> int:
        """Open *logical* sessions (not TCP connections)."""
        return self.stats.active_sessions

    @property
    def active_connections(self) -> int:
        return len(self._connections)

    def install_signal_handlers(self) -> None:
        """Arrange a graceful drain on SIGTERM / SIGINT."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # e.g. non-Unix event loops

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` has completed (e.g. via SIGTERM)."""
        await self._closed.wait()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight sessions, then shut down.

        ``drain=True`` gives active sessions ``config.drain_timeout``
        seconds to finish their streams before cancellation; ``False``
        cancels immediately.
        """
        if self._stopping:
            await self._closed.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = set(self._connections)
        if pending and drain:
            _done, pending = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._score_task is not None:
            self._score_task.cancel()
            await asyncio.gather(self._score_task, return_exceptions=True)
        self._closed.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        if len(self._connections) >= self.config.max_connections or self._stopping:
            self.stats.errors += 1
            await self._send_error(
                writer, "busy", f"server at its {self.config.max_connections}-connection limit"
            )
            await self._close_writer(writer)
            return
        self._connections.add(task)
        conn = _Connection(reader, writer)
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            pass  # server shutdown cancelled this connection; end quietly
        finally:
            # a vanished client leaves its sessions behind; free their
            # fused predictor state (queued batches are skipped via
            # session.closed)
            for session in list(conn.sessions.values()):
                self._end_session(session)
            try:
                await self._close_writer(writer)
            except asyncio.CancelledError:
                writer.close()
            self._connections.discard(task)

    async def _read_loop(self, conn: _Connection) -> None:
        """Decode frames and feed the server's fused scoring queue.

        Every exit path of this coroutine closes only this connection;
        typed errors are reported to the client before the close.
        """
        reader, writer = conn.reader, conn.writer
        queue = self._queue
        assert queue is not None
        try:
            while True:
                try:
                    frame = await asyncio.wait_for(
                        protocol.read_frame(reader, self.config.max_frame_bytes),
                        timeout=self.config.read_timeout,
                    )
                except asyncio.TimeoutError:
                    self.stats.errors += 1
                    await self._send_error(
                        writer,
                        "timeout",
                        f"no frame within the {self.config.read_timeout:g}s read timeout",
                    )
                    return
                if frame is None:  # client closed (mid-stream disconnect is fine)
                    return
                frame_type, payload = frame
                self.stats.frames += 1
                if frame_type == FRAME_HELLO:
                    self._handle_hello(conn, payload)
                elif frame_type == FRAME_BYE:
                    future = asyncio.get_running_loop().create_future()
                    await queue.put(("bye", conn, future))
                    await future
                    return
                elif not conn.hello_done:
                    raise ProtocolError("frame before HELLO", "protocol")
                elif frame_type == FRAME_TRAIN:
                    session = self._v1_session(conn, frame_type)
                    if session.started:
                        raise ProtocolError(
                            "TRAIN after the first RECORDS frame", "protocol"
                        )
                    session.training.extend(protocol.unpack_records(payload))
                elif frame_type == FRAME_RECORDS:
                    session = self._v1_session(conn, frame_type)
                    records = _parse_records(payload)
                    if not session.started:
                        self._start_scoring(session)
                    await queue.put(("records", session, records))
                elif frame_type == FRAME_TRAIN2:
                    sid, body = protocol.split_session_payload(payload, frame_type)
                    session = self._v2_session(conn, sid, frame_type)
                    if session.started:
                        raise ProtocolError(
                            "TRAIN2 after the first RECORDS2 frame", "protocol"
                        )
                    session.training.extend(protocol.unpack_records(body))
                elif frame_type == FRAME_RECORDS2:
                    sid, body = protocol.split_session_payload(payload, frame_type)
                    session = self._v2_session(conn, sid, frame_type)
                    records = _parse_records(body)
                    if not session.started:
                        self._start_scoring(session)
                    await queue.put(("records", session, records))
                elif frame_type == FRAME_OPEN:
                    self._handle_open(conn, payload)
                elif frame_type == FRAME_CLOSE:
                    obj = protocol.unpack_json(payload, frame_type)
                    sid = obj.get("session")
                    if not isinstance(sid, int):
                        raise ProtocolError(
                            "CLOSE must carry an integer 'session'", "bad-session"
                        )
                    session = self._v2_session(conn, sid, frame_type)
                    # drop it from the connection now so the sid can be
                    # reused; predictor state is freed by the score loop
                    # after queued batches flush
                    del conn.sessions[sid]
                    await queue.put(("close", session))
                elif frame_type == FRAME_STATS_REQUEST:
                    session: Optional[_Session]
                    if conn.version == 1:
                        session = self._v1_session(conn, frame_type)
                    elif payload:
                        obj = protocol.unpack_json(payload, frame_type)
                        sid = obj.get("session")
                        if sid is None:
                            session = None
                        elif isinstance(sid, int):
                            session = self._v2_session(conn, sid, frame_type)
                        else:
                            raise ProtocolError(
                                "STATS_REQUEST 'session' must be an integer",
                                "bad-session",
                            )
                    else:
                        session = None
                    await queue.put(("stats", conn, session))
                else:
                    name = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
                    raise ProtocolError(
                        f"unexpected frame type {name} from client", "bad-frame"
                    )
        except ProtocolError as exc:
            self.stats.errors += 1
            await self._send_error(writer, exc.code, str(exc))
        except SpecParseError as exc:
            self.stats.errors += 1
            await self._send_error(writer, "bad-spec", str(exc))
        except ConfigError as exc:
            self.stats.errors += 1
            await self._send_error(writer, "bad-backend", str(exc))
        except ReproError as exc:
            self.stats.errors += 1
            await self._send_error(writer, "internal", str(exc))
        except (ConnectionResetError, BrokenPipeError):
            return  # mid-stream disconnect; nothing to report to anyone

    # ------------------------------------------------------------------
    # handshake and session management
    # ------------------------------------------------------------------
    def _handle_hello(self, conn: _Connection, payload: bytes) -> None:
        if conn.hello_done:
            raise ProtocolError("duplicate HELLO", "protocol")
        hello = protocol.unpack_json(payload, FRAME_HELLO)
        version = hello.get("version", 1)
        if version not in (1, PROTOCOL_VERSION):
            raise ProtocolError(
                f"unsupported protocol version {version!r}"
                f" (this server speaks 1 and {PROTOCOL_VERSION})",
                "bad-hello",
            )
        if version == PROTOCOL_VERSION:
            if "spec" in hello:
                raise ProtocolError(
                    "v2 HELLO negotiates the connection; sessions are opened"
                    " with OPEN frames, not a HELLO spec",
                    "bad-hello",
                )
            requested = hello.get("max_sessions", self.config.max_sessions)
            if not isinstance(requested, int) or requested < 1:
                raise ProtocolError(
                    "HELLO 'max_sessions' must be a positive integer", "bad-hello"
                )
            conn.version = PROTOCOL_VERSION
            conn.max_sessions = min(requested, self.config.max_sessions)
            conn.hello_done = True
            conn.writer.write(
                protocol.pack_json(
                    FRAME_OK,
                    {
                        "version": PROTOCOL_VERSION,
                        "max_sessions": conn.max_sessions,
                    },
                )
            )
            return
        # v1: the connection is the session
        session = self._open_session(
            conn, sid=0, spec_text=hello.get("spec"), backend=hello.get("backend")
        )
        conn.max_sessions = 1
        conn.hello_done = True
        conn.writer.write(
            protocol.pack_json(
                FRAME_OK,
                {
                    "session": session.display_id,
                    "scheme": session.spec.canonical(),
                    "backend": session.resolved_backend,
                    "needs_training": needs_training(session.spec),
                },
            )
        )

    def _handle_open(self, conn: _Connection, payload: bytes) -> None:
        if conn.version != PROTOCOL_VERSION:
            raise ProtocolError("OPEN on a v1 connection", "protocol")
        obj = protocol.unpack_json(payload, FRAME_OPEN)
        sid = obj.get("session")
        if not isinstance(sid, int) or not 0 <= sid <= MAX_SESSION_ID:
            raise ProtocolError(
                "OPEN must carry an integer 'session' id in [0, 2^32)",
                "bad-session",
            )
        if sid in conn.sessions:
            raise ProtocolError(f"session {sid} is already open", "bad-session")
        if len(conn.sessions) >= conn.max_sessions:
            raise ProtocolError(
                f"connection at its negotiated {conn.max_sessions}-session limit",
                "bad-session",
            )
        session = self._open_session(
            conn, sid=sid, spec_text=obj.get("spec"), backend=obj.get("backend")
        )
        conn.writer.write(
            protocol.pack_json(
                FRAME_OK,
                {
                    "session": sid,
                    "scheme": session.spec.canonical(),
                    "backend": session.resolved_backend,
                    "needs_training": needs_training(session.spec),
                },
            )
        )

    def _open_session(
        self,
        conn: _Connection,
        sid: int,
        spec_text: Any,
        backend: Any,
    ) -> _Session:
        if not isinstance(spec_text, str) or not spec_text:
            frame = "OPEN" if conn.version == PROTOCOL_VERSION else "HELLO"
            code = "bad-session" if conn.version == PROTOCOL_VERSION else "bad-hello"
            raise ProtocolError(f"{frame} must carry a 'spec' string", code)
        spec = parse_spec(spec_text)  # SpecParseError -> bad-spec
        if backend is not None and not isinstance(backend, str):
            raise ProtocolError("'backend' must be a string", "bad-hello")
        if backend is None:
            backend = self.config.backend
        # resolve now so an impossible request fails the handshake, not the
        # first RECORDS frame; ConfigError -> bad-backend
        resolved = choose_backend(spec, backend)
        self._next_session += 1
        session = _Session(
            key=self._next_session,
            sid=sid,
            conn=conn,
            spec=spec,
            backend_request=backend,
            resolved_backend=resolved,
            display_id=(
                sid if conn.version == PROTOCOL_VERSION else self._next_session
            ),
        )
        conn.sessions[sid] = session
        self.stats.session_opened()
        return session

    @staticmethod
    def _v1_session(conn: _Connection, frame_type: int) -> _Session:
        if conn.version != 1:
            name = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
            raise ProtocolError(f"v1 frame {name} on a v2 connection", "protocol")
        return conn.sessions[0]

    @staticmethod
    def _v2_session(conn: _Connection, sid: int, frame_type: int) -> _Session:
        if conn.version != PROTOCOL_VERSION:
            name = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
            raise ProtocolError(f"v2 frame {name} on a v1 connection", "protocol")
        session = conn.sessions.get(sid)
        if session is None:
            name = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
            raise ProtocolError(f"{name} for unknown session {sid}", "bad-session")
        return session

    def _start_scoring(self, session: _Session) -> None:
        """Bind the session into its fusion group at the first RECORDS."""
        training = session.training if session.training else None
        if needs_training(session.spec) and training is None:
            raise ProtocolError(
                f"{session.spec.canonical()} sessions need TRAIN frames before"
                " RECORDS",
                "protocol",
            )
        group_key = (session.spec.canonical(), session.resolved_backend)
        group = self._groups.get(group_key)
        if group is None:
            group = _FusionGroup(session.spec, session.resolved_backend)
            self._groups[group_key] = group
        group.scorer.open_session(session.key, training)
        session.training = []  # the scorer owns them now; free the buffer
        session.group = group
        session.started = True

    def _end_session(self, session: _Session) -> None:
        """Free a session's fused predictor state (idempotent)."""
        if session.closed:
            return
        session.closed = True
        conn = session.conn
        if conn.sessions.get(session.sid) is session:
            del conn.sessions[session.sid]
        if session.started and session.group is not None:
            group = session.group
            group.scorer.close_session(session.key)
            if group.scorer.active == 0:
                self._groups.pop(group.key, None)
        self.stats.session_closed()

    # ------------------------------------------------------------------
    # the fused score loop
    # ------------------------------------------------------------------
    async def _score_loop(self) -> None:
        """Drain the server-wide queue per tick; score each fusion group's
        queued batches with one fused call; answer every frame in order."""
        queue = self._queue
        assert queue is not None
        loop = asyncio.get_running_loop()
        capacity = queue.maxsize or 4096
        while True:
            items = [await queue.get()]
            if self.stats.active_sessions > 1 and self.config.fuse_window > 0:
                # linger briefly so frames from concurrent sessions land in
                # the same tick and fuse into one kernel call per group
                deadline = loop.time() + self.config.fuse_window
                while len(items) < capacity:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        items.append(
                            await asyncio.wait_for(queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            while True:  # everything already queued = this scoring tick
                try:
                    items.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            touched: Set[_Connection] = set()
            pending: "Dict[_FusionGroup, List[Tuple[_Session, List[BranchRecord]]]]" = {}
            for item in items:
                kind = item[0]
                if kind == "records":
                    _kind, session, records = item
                    if not session.closed and session.group is not None:
                        pending.setdefault(session.group, []).append(
                            (session, records)
                        )
                    continue
                # control frames order against scoring: flush first
                self._flush(pending, touched)
                pending = {}
                if kind == "stats":
                    _kind, conn, session = item
                    self._write(
                        conn,
                        protocol.pack_json(
                            FRAME_STATS, self._stats_payload(session)
                        ),
                    )
                    touched.add(conn)
                elif kind == "close":
                    _kind, session = item
                    # snapshot *before* teardown so the final stats still
                    # count this session as active
                    payload = self._stats_payload(session, final=True)
                    self._end_session(session)
                    self._write(
                        session.conn, protocol.pack_json(FRAME_STATS, payload)
                    )
                    touched.add(session.conn)
                elif kind == "bye":
                    _kind, conn, future = item
                    payload = self._bye_payload(conn)
                    for session in list(conn.sessions.values()):
                        self._end_session(session)
                    self._write(conn, protocol.pack_json(FRAME_STATS, payload))
                    touched.add(conn)
                    if not future.done():
                        future.set_result(None)
            self._flush(pending, touched)
            await self._drain(touched)

    def _flush(
        self,
        pending: "Dict[_FusionGroup, List[Tuple[_Session, List[BranchRecord]]]]",
        touched: Set[_Connection],
    ) -> None:
        """One fused scoring call per group; answer each frame in order."""
        for group, entries in pending.items():
            batches = [(session.key, records) for session, records in entries]
            started = time.perf_counter()
            try:
                predictions = group.scorer.feed_many(batches)
            except Exception as exc:
                # scoring failure: fail every involved connection, spare the
                # rest of the server
                self.stats.errors += 1
                for session, _records in entries:
                    self._write(
                        session.conn,
                        protocol.pack_error("internal", f"scoring failed: {exc}"),
                    )
                    session.conn.writer.close()
                continue
            elapsed = time.perf_counter() - started
            total = sum(len(records) for _session, records in entries)
            self.stats.record_batch(
                group.scheme,
                total,
                elapsed,
                sessions=len({session.key for session, _records in entries}),
            )
            for (session, records), frame_predictions in zip(entries, predictions):
                if isinstance(frame_predictions, FusedPredictions):
                    body = protocol.encode_predictions_fused(frame_predictions)
                else:
                    body = protocol.encode_predictions(records, frame_predictions)
                if session.conn.version == 1:
                    self._write(
                        session.conn,
                        protocol.pack_frame(FRAME_PREDICTIONS, body),
                    )
                else:
                    self._write(
                        session.conn, protocol.pack_predictions2(session.sid, body)
                    )
                touched.add(session.conn)
        pending.clear()

    @staticmethod
    def _write(conn: _Connection, data: bytes) -> None:
        try:
            conn.writer.write(data)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client vanished mid-answer; its reader cleans up

    async def _drain(self, touched: Set[_Connection]) -> None:
        """Flush written answers; disconnect consumers too slow to take
        them (they would otherwise stall the shared score loop)."""
        if not touched:
            return

        async def _drain_one(conn: _Connection) -> None:
            try:
                await asyncio.wait_for(
                    conn.writer.drain(), timeout=self.config.read_timeout
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.TimeoutError:
                conn.writer.close()

        await asyncio.gather(
            *(_drain_one(conn) for conn in touched), return_exceptions=True
        )

    def _stats_payload(
        self, session: Optional[_Session], final: bool = False
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"server": self.stats.as_dict()}
        if session is not None:
            payload["session"] = session.as_dict()
        if final:
            payload["final"] = True
        return payload

    def _bye_payload(self, conn: _Connection) -> Dict[str, Any]:
        if conn.version == 1:
            session = conn.sessions.get(0)
            return self._stats_payload(session, final=True)
        payload: Dict[str, Any] = {"server": self.stats.as_dict(), "final": True}
        payload["sessions"] = [
            session.as_dict() for session in conn.sessions.values()
        ]
        return payload

    # ------------------------------------------------------------------
    async def _send_error(
        self, writer: asyncio.StreamWriter, code: str, message: str
    ) -> None:
        try:
            writer.write(protocol.pack_error(code, message))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
