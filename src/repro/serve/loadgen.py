"""Load generator and benchmark harness for the prediction service.

``run_loadgen`` drives N concurrent predictor sessions against a server,
each replaying a workload variant's branch records in fixed-size chunks
with a configurable pipelining window (several RECORDS frames in flight
per connection — this is what makes the server's per-tick micro-batching
visible), and reports aggregate throughput plus per-frame latency
percentiles.

With ``connections`` set, sessions are *multiplexed*: the loadgen opens
that many protocol v2 connections and spreads all the logical sessions
across them (:class:`~repro.serve.client.MuxPredictionClient`), which is
how thousands of sessions are driven without thousands of sockets — and
what makes the server's cross-session batch fusion kick in.  Left unset,
each session gets its own v1 connection, exactly as in earlier releases.

``bench_serve`` is the ``repro bench-serve`` engine: it generates the
workload traces, starts an in-process server — or, with ``workers > 1``,
a pre-fork :class:`~repro.serve.supervisor.Supervisor` pool — on an
ephemeral port, fans out the sessions, optionally verifies every
session's served statistics bit-exactly against the offline engine, and
returns the ``BENCH_serve.json`` payload.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError, ReproError
from repro.predictors.spec import parse_spec
from repro.sim.backend import numpy_or_none
from repro.sim.kernels import score_spec
from repro.sim.streaming import needs_training
from repro.trace.encoding import RECORD_SIZE, encode_record
from repro.trace.record import BranchRecord
from repro.workloads.base import TraceCache, default_cache, get_workload
from repro.serve import protocol
from repro.serve.client import MuxPredictionClient
from repro.serve.protocol import (
    FRAME_HELLO,
    FRAME_OK,
    FRAME_PREDICTIONS,
    FRAME_RECORDS,
    FRAME_STATS,
    FRAME_TRAIN,
)
from repro.serve.server import PredictionServer, ServerConfig
from repro.serve.supervisor import Supervisor

__all__ = ["SessionPlan", "SessionOutcome", "run_loadgen", "bench_serve"]

#: default predictor specs exercised by ``repro bench-serve`` — one
#: vector-kernel session and one stateless scheme per workload variant.
DEFAULT_BENCH_SPECS = ("AT(IHRT(,6SR),PT(2^6,A2),)", "BTFN")

DEFAULT_BENCH_BENCHMARKS = ("eqntott", "tomcatv")


@dataclass
class SessionPlan:
    """One loadgen session: a spec replaying one workload variant."""

    spec: str
    variant: str  #: display label, e.g. ``eqntott:test``
    records: List[BranchRecord]
    training: Optional[List[BranchRecord]] = None
    backend: Optional[str] = None


@dataclass
class SessionOutcome:
    """What one session measured."""

    plan: SessionPlan
    backend: Optional[str] = None
    records_sent: int = 0
    frames: int = 0
    conditional: int = 0
    correct: int = 0
    accuracy: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    latencies: List[float] = field(default_factory=list)  #: per-frame seconds

    @property
    def wall_seconds(self) -> float:
        return max(self.finished - self.started, 1e-9)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (numpy's default method).

    The old nearest-rank rule made ``p99`` degenerate to ``max`` whenever a
    session had fewer than ~100 frames, which was every bench run.
    """
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def _latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    to_ms = 1e3
    return {
        "frames": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50) * to_ms, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * to_ms, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * to_ms, 3),
        "mean_ms": round(
            (sum(ordered) / len(ordered) if ordered else 0.0) * to_ms, 3
        ),
    }


async def _run_session(
    host: str, port: int, plan: SessionPlan, chunk: int, window: int
) -> SessionOutcome:
    """Replay one plan: pipelined RECORDS frames, per-frame latency."""
    outcome = SessionOutcome(plan=plan)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        hello: Dict[str, Any] = {"spec": plan.spec}
        if plan.backend is not None:
            hello["backend"] = plan.backend
        writer.write(protocol.pack_json(FRAME_HELLO, hello))
        await writer.drain()
        frame = await protocol.read_frame(reader)
        payload = _expect(frame, FRAME_OK)
        outcome.backend = protocol.unpack_json(payload, FRAME_OK).get("backend")

        if plan.training:
            for start in range(0, len(plan.training), chunk):
                writer.write(
                    protocol.pack_records(plan.training[start:start + chunk], FRAME_TRAIN)
                )
            await writer.drain()

        chunks = [
            plan.records[start:start + chunk]
            for start in range(0, len(plan.records), chunk)
        ]
        outcome.started = time.perf_counter()
        send_times: "deque[Tuple[float, int]]" = deque()
        next_chunk = 0

        async def _collect_one() -> None:
            reply = await protocol.read_frame(reader)
            body = _expect(reply, FRAME_PREDICTIONS)
            sent_at, size = send_times.popleft()
            outcome.latencies.append(time.perf_counter() - sent_at)
            if len(body) != size:
                raise ProtocolError(
                    f"PREDICTIONS size {len(body)} != {size} records sent", "bad-frame"
                )
            for byte in body:
                if not byte & protocol.PRED_SKIPPED:
                    outcome.conditional += 1
                    if byte & protocol.PRED_CORRECT:
                        outcome.correct += 1

        while next_chunk < len(chunks) or send_times:
            if next_chunk < len(chunks) and len(send_times) < window:
                batch = chunks[next_chunk]
                next_chunk += 1
                send_times.append((time.perf_counter(), len(batch)))
                writer.write(protocol.pack_records(batch, FRAME_RECORDS))
                await writer.drain()
                outcome.records_sent += len(batch)
                outcome.frames += 1
            else:
                await _collect_one()
        outcome.finished = time.perf_counter()

        writer.write(protocol.pack_frame(protocol.FRAME_BYE))
        await writer.drain()
        final = _expect(await protocol.read_frame(reader), FRAME_STATS)
        session = protocol.unpack_json(final, FRAME_STATS).get("session", {})
        outcome.accuracy = float(session.get("accuracy", 0.0))
        server_conditional = int(session.get("conditional", -1))
        server_correct = int(session.get("correct", -1))
        if (server_conditional, server_correct) != (outcome.conditional, outcome.correct):
            raise ProtocolError(
                f"session summary {server_conditional}/{server_correct} disagrees with"
                f" the prediction bytes {outcome.conditional}/{outcome.correct}",
                "internal",
            )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return outcome


def _expect(frame: "Optional[Tuple[int, bytes]]", expected: int) -> bytes:
    if frame is None:
        raise ProtocolError("server closed the connection", "bad-frame")
    frame_type, payload = frame
    if frame_type == protocol.FRAME_ERROR:
        error = protocol.unpack_json(payload, protocol.FRAME_ERROR)
        raise ProtocolError(
            str(error.get("error", "server error")), str(error.get("code", "internal"))
        )
    if frame_type != expected:
        raise ProtocolError(
            f"expected frame {expected}, got {frame_type}", "bad-frame"
        )
    return payload


def _encoded_chunks(
    records: Sequence[BranchRecord],
    chunk: int,
    cache: "Dict[Tuple[int, int], List[bytes]]",
) -> "List[bytes]":
    """Chunked wire payloads for a record list, encoded once per list.

    Bench plans share record lists across sessions, so the byte encoding —
    the loadgen's single biggest per-record cost — happens once per
    (workload variant, chunk size), not once per session."""
    key = (id(records), chunk)
    payloads = cache.get(key)
    if payloads is None:
        payloads = [
            b"".join(
                encode_record(record) for record in records[start:start + chunk]
            )
            for start in range(0, len(records), chunk)
        ]
        cache[key] = payloads
    return payloads


def _count_prediction_bytes(body: bytes) -> "Tuple[int, int]":
    """(scored, correct) totals of a raw PREDICTIONS payload."""
    np = numpy_or_none()
    if np is not None:
        arr = np.frombuffer(body, dtype=np.uint8)
        scored = (arr & protocol.PRED_SKIPPED) == 0
        correct = scored & ((arr & protocol.PRED_CORRECT) != 0)
        return int(scored.sum()), int(correct.sum())
    scored = correct = 0
    for byte in body:
        if not byte & protocol.PRED_SKIPPED:
            scored += 1
            if byte & protocol.PRED_CORRECT:
                correct += 1
    return scored, correct


async def _run_mux_session(
    client: MuxPredictionClient,
    sid: int,
    plan: SessionPlan,
    chunk: int,
    window: int,
    payload_cache: "Dict[Tuple[int, int], List[bytes]]",
) -> SessionOutcome:
    """Replay one plan as a logical session on a shared v2 connection."""
    outcome = SessionOutcome(plan=plan)
    info = await client.open(sid, plan.spec, plan.backend)
    outcome.backend = info.get("backend")

    if plan.training:
        for payload in _encoded_chunks(plan.training, chunk, payload_cache):
            await client.train_payload(sid, payload)

    chunks = _encoded_chunks(plan.records, chunk, payload_cache)
    outcome.started = time.perf_counter()
    in_flight: "deque[Tuple[Any, float, int]]" = deque()
    next_chunk = 0

    async def _collect_one() -> None:
        future, sent_at, size = in_flight.popleft()
        body = await future.raw()
        outcome.latencies.append(time.perf_counter() - sent_at)
        if len(body) != size:
            raise ProtocolError(
                f"PREDICTIONS size {len(body)} != {size} records sent",
                "bad-frame",
            )
        scored, correct = _count_prediction_bytes(body)
        outcome.conditional += scored
        outcome.correct += correct

    while next_chunk < len(chunks) or in_flight:
        if next_chunk < len(chunks) and len(in_flight) < window:
            payload = chunks[next_chunk]
            size = len(payload) // RECORD_SIZE
            next_chunk += 1
            sent_at = time.perf_counter()
            future = await client.submit_payload(sid, payload)
            in_flight.append((future, sent_at, size))
            outcome.records_sent += size
            outcome.frames += 1
        else:
            await _collect_one()
    outcome.finished = time.perf_counter()

    final = await client.close_session(sid)
    session = final.get("session", {})
    outcome.accuracy = float(session.get("accuracy", 0.0))
    server_conditional = int(session.get("conditional", -1))
    server_correct = int(session.get("correct", -1))
    if (server_conditional, server_correct) != (outcome.conditional, outcome.correct):
        raise ProtocolError(
            f"session summary {server_conditional}/{server_correct} disagrees with"
            f" the prediction bytes {outcome.conditional}/{outcome.correct}",
            "internal",
        )
    return outcome


async def _run_mux_connection(
    host: str,
    port: int,
    plans: "Sequence[Tuple[int, SessionPlan]]",
    chunk: int,
    window: int,
    payload_cache: "Dict[Tuple[int, int], List[bytes]]",
) -> "List[SessionOutcome]":
    """Drive many logical sessions concurrently over one v2 connection."""
    client = await MuxPredictionClient.connect(
        host, port, max_sessions=max(len(plans), 1)
    )
    try:
        outcomes = await asyncio.gather(
            *(
                _run_mux_session(client, sid, plan, chunk, window, payload_cache)
                for sid, plan in plans
            )
        )
        await client.finish()
    finally:
        await client.close()
    return list(outcomes)


async def run_loadgen_async(
    host: str,
    port: int,
    plans: Sequence[SessionPlan],
    chunk: int = 512,
    window: int = 4,
    connections: Optional[int] = None,
) -> "List[SessionOutcome]":
    """Run every plan concurrently against ``host:port``.

    ``connections=None`` opens one v1 connection per session (the
    original behavior); an integer multiplexes all sessions over that
    many protocol v2 connections.
    """
    if connections is None:
        return list(
            await asyncio.gather(
                *(_run_session(host, port, plan, chunk, window) for plan in plans)
            )
        )
    connections = max(1, min(connections, len(plans) or 1))
    assigned: "List[List[Tuple[int, SessionPlan]]]" = [
        [] for _ in range(connections)
    ]
    for index, plan in enumerate(plans):
        # session ids are local to their connection
        assigned[index % connections].append((len(assigned[index % connections]), plan))
    # encode every distinct (record list, chunk) payload sequence up front:
    # lazy encoding inside a session coroutine would stall the shared event
    # loop mid-run and show up as a latency tail on every other session
    payload_cache: "Dict[Tuple[int, int], List[bytes]]" = {}
    for plan in plans:
        _encoded_chunks(plan.records, chunk, payload_cache)
        if plan.training:
            _encoded_chunks(plan.training, chunk, payload_cache)
    grouped = await asyncio.gather(
        *(
            _run_mux_connection(host, port, group, chunk, window, payload_cache)
            for group in assigned
            if group
        )
    )
    # restore the plan order so callers can zip outcomes with plans
    by_plan = {id(outcome.plan): outcome for group in grouped for outcome in group}
    return [by_plan[id(plan)] for plan in plans]


def run_loadgen(
    host: str,
    port: int,
    plans: Sequence[SessionPlan],
    chunk: int = 512,
    window: int = 4,
    connections: Optional[int] = None,
) -> "List[SessionOutcome]":
    """Blocking wrapper for driving an externally-started server."""
    return asyncio.run(
        run_loadgen_async(host, port, plans, chunk, window, connections)
    )


# ----------------------------------------------------------------------
# the `repro bench-serve` engine
# ----------------------------------------------------------------------
def _build_plans(
    specs: Sequence[str],
    benchmarks: Sequence[str],
    sessions: int,
    scale: int,
    cache: TraceCache,
    backend: Optional[str],
) -> "List[SessionPlan]":
    """Round-robin (spec x benchmark) over the requested session count."""
    variants: "List[Tuple[str, str, List[BranchRecord]]]" = []
    for name in benchmarks:
        workload = get_workload(name)
        records = cache.get(workload, "test", scale).records
        variants.append((name, f"{name}:test", records))
    plans: "List[SessionPlan]" = []
    for index in range(sessions):
        spec_text = specs[index % len(specs)]
        _name, label, records = variants[(index // len(specs)) % len(variants)]
        parsed = parse_spec(spec_text)
        # plans of the same variant share one record list: sessions never
        # mutate it, and sharing lets the loadgen encode each (variant,
        # chunk) payload sequence exactly once
        training = records if needs_training(parsed) else None
        plans.append(
            SessionPlan(
                spec=spec_text,
                variant=label,
                records=records,
                training=training,
                backend=backend,
            )
        )
    return plans


def _verify_outcomes(outcomes: Sequence[SessionOutcome]) -> None:
    """Served statistics must equal the offline engine's, bit for bit."""
    from repro.trace.columnar import pack_records

    for outcome in outcomes:
        plan = outcome.plan
        spec = parse_spec(plan.spec)
        packed = pack_records(plan.records)
        training_packed = (
            pack_records(plan.training) if plan.training is not None else None
        )
        offline = score_spec(
            spec,
            packed,
            backend=plan.backend,
            training=training_packed,
            training_records=plan.training,
        )
        if (offline.conditional_total, offline.conditional_correct) != (
            outcome.conditional,
            outcome.correct,
        ):
            raise ReproError(
                f"parity failure for {plan.spec} on {plan.variant}: served"
                f" {outcome.correct}/{outcome.conditional}, offline"
                f" {offline.conditional_correct}/{offline.conditional_total}"
            )


def bench_serve(
    specs: Sequence[str] = DEFAULT_BENCH_SPECS,
    benchmarks: Sequence[str] = DEFAULT_BENCH_BENCHMARKS,
    sessions: int = 4,
    scale: int = 20_000,
    chunk: int = 512,
    window: int = 4,
    backend: Optional[str] = None,
    verify: bool = True,
    cache: Optional[TraceCache] = None,
    server_config: Optional[ServerConfig] = None,
    connections: Optional[int] = None,
    workers: int = 1,
) -> Dict[str, Any]:
    """Benchmark the serve tier; returns the BENCH_serve payload.

    Starts a server on an ephemeral loopback port — in-process for
    ``workers=1``, a pre-fork :class:`Supervisor` pool otherwise —
    replays ``sessions`` concurrent predictor sessions over the workload
    traces (multiplexed over ``connections`` v2 connections when given),
    and (with ``verify``) checks every session's served accuracy
    statistics against the offline engine — a failed parity check raises.
    """
    cache = cache if cache is not None else default_cache()
    plans = _build_plans(specs, benchmarks, sessions, scale, cache, backend)
    config = server_config or ServerConfig()

    if workers > 1:
        supervisor = Supervisor(config, workers=workers, control=False)
        supervisor.start()
        try:
            outcomes = run_loadgen(
                supervisor.host, supervisor.port, plans, chunk, window, connections
            )
        finally:
            final = supervisor.stop()
        server_stats: Dict[str, Any] = dict(final["aggregate"])
        server_stats["workers"] = final["workers"]
    else:

        async def _run() -> "Tuple[List[SessionOutcome], Dict[str, Any]]":
            server = PredictionServer(config)
            await server.start()
            try:
                result = await run_loadgen_async(
                    server.host, server.port, plans, chunk, window, connections
                )
            finally:
                await server.stop()
            return result, server.stats.as_dict()

        outcomes, server_stats = asyncio.run(_run())
    if verify:
        _verify_outcomes(outcomes)

    all_latencies = [value for outcome in outcomes for value in outcome.latencies]
    started = min(outcome.started for outcome in outcomes)
    finished = max(outcome.finished for outcome in outcomes)
    wall = max(finished - started, 1e-9)
    total_records = sum(outcome.records_sent for outcome in outcomes)
    frame_counts = sorted(outcome.frames for outcome in outcomes)
    return {
        "config": {
            "sessions": sessions,
            "specs": list(specs),
            "benchmarks": list(benchmarks),
            "scale": scale,
            "chunk": chunk,
            "window": window,
            "backend": backend or "auto",
            "workers": workers,
            "connections": connections if connections is not None else "per-session",
            "protocol": 1 if connections is None else 2,
        },
        "sessions": [
            {
                "spec": outcome.plan.spec,
                "variant": outcome.plan.variant,
                "backend": outcome.backend,
                "records": outcome.records_sent,
                "frames": outcome.frames,
                "conditional": outcome.conditional,
                "correct": outcome.correct,
                "accuracy": round(outcome.accuracy, 6),
                "records_per_sec": round(outcome.records_sent / outcome.wall_seconds, 1),
                "latency": _latency_summary(outcome.latencies),
            }
            for outcome in outcomes
        ],
        "totals": {
            "records": total_records,
            "wall_seconds": round(wall, 4),
            "records_per_sec": round(total_records / wall, 1),
            "latency": _latency_summary(all_latencies),
            "frames": sum(frame_counts),
            "frames_per_session": {
                "min": frame_counts[0] if frame_counts else 0,
                "median": _percentile(frame_counts, 0.5) if frame_counts else 0,
                "max": frame_counts[-1] if frame_counts else 0,
            },
            "parity": "verified" if verify else "skipped",
        },
        "server": server_stats,
    }
