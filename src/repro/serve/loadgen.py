"""Load generator and benchmark harness for the prediction service.

``run_loadgen`` drives N concurrent predictor sessions against a server,
each replaying a workload variant's branch records in fixed-size chunks
with a configurable pipelining window (several RECORDS frames in flight
per connection — this is what makes the server's per-tick micro-batching
visible), and reports aggregate throughput plus per-frame latency
percentiles.

``bench_serve`` is the ``repro bench-serve`` engine: it generates the
workload traces, starts an in-process server on an ephemeral port, fans
out the sessions, optionally verifies every session's served statistics
bit-exactly against the offline engine, and returns the
``BENCH_serve.json`` payload.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError, ReproError
from repro.predictors.spec import parse_spec
from repro.sim.kernels import score_spec
from repro.sim.streaming import needs_training
from repro.trace.record import BranchRecord
from repro.workloads.base import TraceCache, default_cache, get_workload
from repro.serve import protocol
from repro.serve.protocol import (
    FRAME_HELLO,
    FRAME_OK,
    FRAME_PREDICTIONS,
    FRAME_RECORDS,
    FRAME_STATS,
    FRAME_TRAIN,
)
from repro.serve.server import PredictionServer, ServerConfig

__all__ = ["SessionPlan", "SessionOutcome", "run_loadgen", "bench_serve"]

#: default predictor specs exercised by ``repro bench-serve`` — one
#: vector-kernel session and one stateless scheme per workload variant.
DEFAULT_BENCH_SPECS = ("AT(IHRT(,6SR),PT(2^6,A2),)", "BTFN")

DEFAULT_BENCH_BENCHMARKS = ("eqntott", "tomcatv")


@dataclass
class SessionPlan:
    """One loadgen session: a spec replaying one workload variant."""

    spec: str
    variant: str  #: display label, e.g. ``eqntott:test``
    records: List[BranchRecord]
    training: Optional[List[BranchRecord]] = None
    backend: Optional[str] = None


@dataclass
class SessionOutcome:
    """What one session measured."""

    plan: SessionPlan
    backend: Optional[str] = None
    records_sent: int = 0
    frames: int = 0
    conditional: int = 0
    correct: int = 0
    accuracy: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    latencies: List[float] = field(default_factory=list)  #: per-frame seconds

    @property
    def wall_seconds(self) -> float:
        return max(self.finished - self.started, 1e-9)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = int(round(q * (len(sorted_values) - 1)))
    return sorted_values[min(index, len(sorted_values) - 1)]


def _latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    to_ms = 1e3
    return {
        "p50_ms": round(_percentile(ordered, 0.50) * to_ms, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * to_ms, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * to_ms, 3),
        "mean_ms": round(
            (sum(ordered) / len(ordered) if ordered else 0.0) * to_ms, 3
        ),
    }


async def _run_session(
    host: str, port: int, plan: SessionPlan, chunk: int, window: int
) -> SessionOutcome:
    """Replay one plan: pipelined RECORDS frames, per-frame latency."""
    outcome = SessionOutcome(plan=plan)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        hello: Dict[str, Any] = {"spec": plan.spec}
        if plan.backend is not None:
            hello["backend"] = plan.backend
        writer.write(protocol.pack_json(FRAME_HELLO, hello))
        await writer.drain()
        frame = await protocol.read_frame(reader)
        payload = _expect(frame, FRAME_OK)
        outcome.backend = protocol.unpack_json(payload, FRAME_OK).get("backend")

        if plan.training:
            for start in range(0, len(plan.training), chunk):
                writer.write(
                    protocol.pack_records(plan.training[start:start + chunk], FRAME_TRAIN)
                )
            await writer.drain()

        chunks = [
            plan.records[start:start + chunk]
            for start in range(0, len(plan.records), chunk)
        ]
        outcome.started = time.perf_counter()
        send_times: "deque[Tuple[float, int]]" = deque()
        next_chunk = 0

        async def _collect_one() -> None:
            reply = await protocol.read_frame(reader)
            body = _expect(reply, FRAME_PREDICTIONS)
            sent_at, size = send_times.popleft()
            outcome.latencies.append(time.perf_counter() - sent_at)
            if len(body) != size:
                raise ProtocolError(
                    f"PREDICTIONS size {len(body)} != {size} records sent", "bad-frame"
                )
            for byte in body:
                if not byte & protocol.PRED_SKIPPED:
                    outcome.conditional += 1
                    if byte & protocol.PRED_CORRECT:
                        outcome.correct += 1

        while next_chunk < len(chunks) or send_times:
            if next_chunk < len(chunks) and len(send_times) < window:
                batch = chunks[next_chunk]
                next_chunk += 1
                send_times.append((time.perf_counter(), len(batch)))
                writer.write(protocol.pack_records(batch, FRAME_RECORDS))
                await writer.drain()
                outcome.records_sent += len(batch)
                outcome.frames += 1
            else:
                await _collect_one()
        outcome.finished = time.perf_counter()

        writer.write(protocol.pack_frame(protocol.FRAME_BYE))
        await writer.drain()
        final = _expect(await protocol.read_frame(reader), FRAME_STATS)
        session = protocol.unpack_json(final, FRAME_STATS).get("session", {})
        outcome.accuracy = float(session.get("accuracy", 0.0))
        server_conditional = int(session.get("conditional", -1))
        server_correct = int(session.get("correct", -1))
        if (server_conditional, server_correct) != (outcome.conditional, outcome.correct):
            raise ProtocolError(
                f"session summary {server_conditional}/{server_correct} disagrees with"
                f" the prediction bytes {outcome.conditional}/{outcome.correct}",
                "internal",
            )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return outcome


def _expect(frame: "Optional[Tuple[int, bytes]]", expected: int) -> bytes:
    if frame is None:
        raise ProtocolError("server closed the connection", "bad-frame")
    frame_type, payload = frame
    if frame_type == protocol.FRAME_ERROR:
        error = protocol.unpack_json(payload, protocol.FRAME_ERROR)
        raise ProtocolError(
            str(error.get("error", "server error")), str(error.get("code", "internal"))
        )
    if frame_type != expected:
        raise ProtocolError(
            f"expected frame {expected}, got {frame_type}", "bad-frame"
        )
    return payload


async def run_loadgen_async(
    host: str,
    port: int,
    plans: Sequence[SessionPlan],
    chunk: int = 512,
    window: int = 4,
) -> "List[SessionOutcome]":
    """Run every plan concurrently against ``host:port``."""
    return list(
        await asyncio.gather(
            *(_run_session(host, port, plan, chunk, window) for plan in plans)
        )
    )


def run_loadgen(
    host: str,
    port: int,
    plans: Sequence[SessionPlan],
    chunk: int = 512,
    window: int = 4,
) -> "List[SessionOutcome]":
    """Blocking wrapper for driving an externally-started server."""
    return asyncio.run(run_loadgen_async(host, port, plans, chunk, window))


# ----------------------------------------------------------------------
# the `repro bench-serve` engine
# ----------------------------------------------------------------------
def _build_plans(
    specs: Sequence[str],
    benchmarks: Sequence[str],
    sessions: int,
    scale: int,
    cache: TraceCache,
    backend: Optional[str],
) -> "List[SessionPlan]":
    """Round-robin (spec x benchmark) over the requested session count."""
    variants: "List[Tuple[str, str, List[BranchRecord]]]" = []
    for name in benchmarks:
        workload = get_workload(name)
        records = cache.get(workload, "test", scale).records
        variants.append((name, f"{name}:test", records))
    plans: "List[SessionPlan]" = []
    for index in range(sessions):
        spec_text = specs[index % len(specs)]
        _name, label, records = variants[(index // len(specs)) % len(variants)]
        parsed = parse_spec(spec_text)
        training = list(records) if needs_training(parsed) else None
        plans.append(
            SessionPlan(
                spec=spec_text,
                variant=label,
                records=list(records),
                training=training,
                backend=backend,
            )
        )
    return plans


def _verify_outcomes(outcomes: Sequence[SessionOutcome]) -> None:
    """Served statistics must equal the offline engine's, bit for bit."""
    from repro.trace.columnar import pack_records

    for outcome in outcomes:
        plan = outcome.plan
        spec = parse_spec(plan.spec)
        packed = pack_records(plan.records)
        training_packed = (
            pack_records(plan.training) if plan.training is not None else None
        )
        offline = score_spec(
            spec,
            packed,
            backend=plan.backend,
            training=training_packed,
            training_records=plan.training,
        )
        if (offline.conditional_total, offline.conditional_correct) != (
            outcome.conditional,
            outcome.correct,
        ):
            raise ReproError(
                f"parity failure for {plan.spec} on {plan.variant}: served"
                f" {outcome.correct}/{outcome.conditional}, offline"
                f" {offline.conditional_correct}/{offline.conditional_total}"
            )


def bench_serve(
    specs: Sequence[str] = DEFAULT_BENCH_SPECS,
    benchmarks: Sequence[str] = DEFAULT_BENCH_BENCHMARKS,
    sessions: int = 4,
    scale: int = 20_000,
    chunk: int = 512,
    window: int = 4,
    backend: Optional[str] = None,
    verify: bool = True,
    cache: Optional[TraceCache] = None,
    server_config: Optional[ServerConfig] = None,
) -> Dict[str, Any]:
    """Benchmark an in-process server; returns the BENCH_serve payload.

    Starts a server on an ephemeral loopback port, replays ``sessions``
    concurrent predictor sessions over the workload traces, and (with
    ``verify``) checks every session's served accuracy statistics against
    the offline engine — a failed parity check raises.
    """
    cache = cache if cache is not None else default_cache()
    plans = _build_plans(specs, benchmarks, sessions, scale, cache, backend)

    async def _run() -> "Tuple[List[SessionOutcome], Dict[str, Any]]":
        server = PredictionServer(server_config or ServerConfig())
        await server.start()
        try:
            outcomes = await run_loadgen_async(
                server.host, server.port, plans, chunk, window
            )
        finally:
            await server.stop()
        return outcomes, server.stats.as_dict(server.active_sessions)

    outcomes, server_stats = asyncio.run(_run())
    if verify:
        _verify_outcomes(outcomes)

    all_latencies = [value for outcome in outcomes for value in outcome.latencies]
    started = min(outcome.started for outcome in outcomes)
    finished = max(outcome.finished for outcome in outcomes)
    wall = max(finished - started, 1e-9)
    total_records = sum(outcome.records_sent for outcome in outcomes)
    return {
        "config": {
            "sessions": sessions,
            "specs": list(specs),
            "benchmarks": list(benchmarks),
            "scale": scale,
            "chunk": chunk,
            "window": window,
            "backend": backend or "auto",
        },
        "sessions": [
            {
                "spec": outcome.plan.spec,
                "variant": outcome.plan.variant,
                "backend": outcome.backend,
                "records": outcome.records_sent,
                "frames": outcome.frames,
                "conditional": outcome.conditional,
                "correct": outcome.correct,
                "accuracy": round(outcome.accuracy, 6),
                "records_per_sec": round(outcome.records_sent / outcome.wall_seconds, 1),
                "latency": _latency_summary(outcome.latencies),
            }
            for outcome in outcomes
        ],
        "totals": {
            "records": total_records,
            "wall_seconds": round(wall, 4),
            "records_per_sec": round(total_records / wall, 1),
            "latency": _latency_summary(all_latencies),
            "parity": "verified" if verify else "skipped",
        },
        "server": server_stats,
    }
