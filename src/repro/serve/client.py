"""Client libraries for the prediction service.

:class:`AsyncPredictionClient` speaks the protocol over asyncio streams;
:class:`PredictionClient` is its blocking twin over a plain socket for
scripts and REPLs.  Both enforce the session state machine client-side and
raise :class:`~repro.errors.ProtocolError` (with the server's typed error
code) when the server reports a fault.

Typical use::

    with PredictionClient.connect("127.0.0.1", 9797, "BTFN") as client:
        results = client.predict(records)          # one round trip
        summary = client.finish()                  # final session stats

``predict`` returns one entry per submitted record: a
:class:`PredictionResult` for conditional branches, ``None`` for records
the direction predictor does not score.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.trace.record import BranchRecord
from repro.serve import protocol
from repro.serve.protocol import (
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_OK,
    FRAME_PREDICTIONS,
    FRAME_RECORDS,
    FRAME_STATS,
    FRAME_STATS_REQUEST,
    FRAME_TRAIN,
    MAX_FRAME_BYTES,
)

__all__ = ["PredictionResult", "AsyncPredictionClient", "PredictionClient"]


class PredictionResult(NamedTuple):
    """One scored conditional branch: the served prediction and outcome."""

    predicted: bool  #: direction the session's predictor chose
    actual: bool  #: the trace's actual outcome (echoed by the server)
    correct: bool  #: ``predicted == actual``


def _as_results(payload: bytes) -> "List[Optional[PredictionResult]]":
    return [
        None if entry is None else PredictionResult(*entry)
        for entry in protocol.decode_predictions(payload)
    ]


def _raise_if_error(frame: "Optional[Tuple[int, bytes]]", expected: int) -> bytes:
    """Validate a reply frame's type, surfacing server-reported errors."""
    if frame is None:
        raise ProtocolError("server closed the connection", "bad-frame")
    frame_type, payload = frame
    if frame_type == FRAME_ERROR:
        error = protocol.unpack_json(payload, FRAME_ERROR)
        raise ProtocolError(
            str(error.get("error", "server error")), str(error.get("code", "internal"))
        )
    if frame_type != expected:
        got = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
        want = protocol.FRAME_NAMES.get(expected, str(expected))
        raise ProtocolError(f"expected {want} frame, got {got}", "bad-frame")
    return payload


class AsyncPredictionClient:
    """One asyncio predictor session against a running server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self.session_info: Dict[str, Any] = {}

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        spec: str,
        backend: Optional[str] = None,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> "AsyncPredictionClient":
        """Open a session: TCP connect plus the HELLO/OK handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame)
        try:
            await client._hello(spec, backend)
        except BaseException:
            await client.close()
            raise
        return client

    async def _hello(self, spec: str, backend: Optional[str]) -> None:
        hello: Dict[str, Any] = {"spec": spec}
        if backend is not None:
            hello["backend"] = backend
        self._writer.write(protocol.pack_json(FRAME_HELLO, hello))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_OK)
        self.session_info = protocol.unpack_json(payload, FRAME_OK)

    async def _read(self) -> "Optional[Tuple[int, bytes]]":
        return await protocol.read_frame(self._reader, self._max_frame)

    @property
    def backend(self) -> Optional[str]:
        """The backend the server resolved for this session."""
        return self.session_info.get("backend")

    async def train(self, records: Iterable[BranchRecord]) -> None:
        """Stream profiling/training records (before the first predict)."""
        self._writer.write(protocol.pack_records(list(records), FRAME_TRAIN))
        await self._writer.drain()

    async def predict(
        self, records: Sequence[BranchRecord]
    ) -> "List[Optional[PredictionResult]]":
        """Score a chunk of the stream; one result per submitted record."""
        self._writer.write(protocol.pack_records(records, FRAME_RECORDS))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_PREDICTIONS)
        return _as_results(payload)

    async def stats(self) -> Dict[str, Any]:
        """The server's live stats frame (server-wide + this session)."""
        self._writer.write(protocol.pack_frame(FRAME_STATS_REQUEST))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_STATS)
        return protocol.unpack_json(payload, FRAME_STATS)

    async def finish(self) -> Dict[str, Any]:
        """End the session cleanly; returns the final stats frame."""
        self._writer.write(protocol.pack_frame(FRAME_BYE))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_STATS)
        final = protocol.unpack_json(payload, FRAME_STATS)
        await self.close()
        return final

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "AsyncPredictionClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


class PredictionClient:
    """Blocking predictor session over a plain socket (scripts, REPLs)."""

    def __init__(self, sock: socket.socket, max_frame: int = MAX_FRAME_BYTES):
        self._sock = sock
        self._max_frame = max_frame
        self.session_info: Dict[str, Any] = {}

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        spec: str,
        backend: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> "PredictionClient":
        """Open a session: TCP connect plus the HELLO/OK handshake."""
        sock = socket.create_connection((host, port), timeout=timeout)
        client = cls(sock, max_frame)
        try:
            hello: Dict[str, Any] = {"spec": spec}
            if backend is not None:
                hello["backend"] = backend
            sock.sendall(protocol.pack_json(FRAME_HELLO, hello))
            payload = _raise_if_error(client._read(), FRAME_OK)
            client.session_info = protocol.unpack_json(payload, FRAME_OK)
        except BaseException:
            client.close()
            raise
        return client

    def _read(self) -> "Optional[Tuple[int, bytes]]":
        return protocol.read_frame_sync(self._sock.recv, self._max_frame)

    @property
    def backend(self) -> Optional[str]:
        return self.session_info.get("backend")

    def train(self, records: Iterable[BranchRecord]) -> None:
        self._sock.sendall(protocol.pack_records(list(records), FRAME_TRAIN))

    def predict(
        self, records: Sequence[BranchRecord]
    ) -> "List[Optional[PredictionResult]]":
        self._sock.sendall(protocol.pack_records(records, FRAME_RECORDS))
        payload = _raise_if_error(self._read(), FRAME_PREDICTIONS)
        return _as_results(payload)

    def stats(self) -> Dict[str, Any]:
        self._sock.sendall(protocol.pack_frame(FRAME_STATS_REQUEST))
        payload = _raise_if_error(self._read(), FRAME_STATS)
        return protocol.unpack_json(payload, FRAME_STATS)

    def finish(self) -> Dict[str, Any]:
        self._sock.sendall(protocol.pack_frame(FRAME_BYE))
        payload = _raise_if_error(self._read(), FRAME_STATS)
        final = protocol.unpack_json(payload, FRAME_STATS)
        self.close()
        return final

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
