"""Client libraries for the prediction service.

:class:`AsyncPredictionClient` speaks the protocol over asyncio streams;
:class:`PredictionClient` is its blocking twin over a plain socket for
scripts and REPLs.  Both enforce the session state machine client-side and
raise :class:`~repro.errors.ProtocolError` (with the server's typed error
code) when the server reports a fault.

Typical use::

    with PredictionClient.connect("127.0.0.1", 9797, "BTFN") as client:
        results = client.predict(records)          # one round trip
        summary = client.finish()                  # final session stats

``predict`` returns one entry per submitted record: a
:class:`PredictionResult` for conditional branches, ``None`` for records
the direction predictor does not score.

:class:`MuxPredictionClient` speaks protocol v2: one TCP connection
carrying many logical sessions, each with its own spec and predictor
state.  Submissions pipeline — ``submit`` returns an awaitable without
waiting for the answer, so thousands of sessions can keep frames in
flight concurrently::

    client = await MuxPredictionClient.connect("127.0.0.1", 9797)
    await client.open(0, "BTFN")
    await client.open(1, "AT(IHRT(,6SR),PT(2^6,A2),)")
    fut_a = await client.submit(0, records_a)
    fut_b = await client.submit(1, records_b)
    results_a, results_b = await fut_a, await fut_b
    final = await client.finish()
"""

from __future__ import annotations

import asyncio
import socket
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ProtocolError
from repro.trace.record import BranchRecord
from repro.serve import protocol
from repro.serve.protocol import (
    FRAME_BYE,
    FRAME_CLOSE,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_OK,
    FRAME_OPEN,
    FRAME_PREDICTIONS,
    FRAME_PREDICTIONS2,
    FRAME_RECORDS,
    FRAME_RECORDS2,
    FRAME_STATS,
    FRAME_STATS_REQUEST,
    FRAME_TRAIN2,
    FRAME_TRAIN,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SESSION_ID,
)

__all__ = [
    "PredictionResult",
    "AsyncPredictionClient",
    "MuxPredictionClient",
    "PredictionClient",
]


class PredictionResult(NamedTuple):
    """One scored conditional branch: the served prediction and outcome."""

    predicted: bool  #: direction the session's predictor chose
    actual: bool  #: the trace's actual outcome (echoed by the server)
    correct: bool  #: ``predicted == actual``


def _as_results(payload: bytes) -> "List[Optional[PredictionResult]]":
    return [
        None if entry is None else PredictionResult(*entry)
        for entry in protocol.decode_predictions(payload)
    ]


def _raise_if_error(frame: "Optional[Tuple[int, bytes]]", expected: int) -> bytes:
    """Validate a reply frame's type, surfacing server-reported errors."""
    if frame is None:
        raise ProtocolError("server closed the connection", "bad-frame")
    frame_type, payload = frame
    if frame_type == FRAME_ERROR:
        error = protocol.unpack_json(payload, FRAME_ERROR)
        raise ProtocolError(
            str(error.get("error", "server error")), str(error.get("code", "internal"))
        )
    if frame_type != expected:
        got = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
        want = protocol.FRAME_NAMES.get(expected, str(expected))
        raise ProtocolError(f"expected {want} frame, got {got}", "bad-frame")
    return payload


class AsyncPredictionClient:
    """One asyncio predictor session against a running server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self.session_info: Dict[str, Any] = {}

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        spec: str,
        backend: Optional[str] = None,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> "AsyncPredictionClient":
        """Open a session: TCP connect plus the HELLO/OK handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame)
        try:
            await client._hello(spec, backend)
        except BaseException:
            await client.close()
            raise
        return client

    async def _hello(self, spec: str, backend: Optional[str]) -> None:
        hello: Dict[str, Any] = {"spec": spec}
        if backend is not None:
            hello["backend"] = backend
        self._writer.write(protocol.pack_json(FRAME_HELLO, hello))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_OK)
        self.session_info = protocol.unpack_json(payload, FRAME_OK)

    async def _read(self) -> "Optional[Tuple[int, bytes]]":
        return await protocol.read_frame(self._reader, self._max_frame)

    @property
    def backend(self) -> Optional[str]:
        """The backend the server resolved for this session."""
        return self.session_info.get("backend")

    async def train(self, records: Iterable[BranchRecord]) -> None:
        """Stream profiling/training records (before the first predict)."""
        self._writer.write(protocol.pack_records(list(records), FRAME_TRAIN))
        await self._writer.drain()

    async def predict(
        self, records: Sequence[BranchRecord]
    ) -> "List[Optional[PredictionResult]]":
        """Score a chunk of the stream; one result per submitted record."""
        self._writer.write(protocol.pack_records(records, FRAME_RECORDS))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_PREDICTIONS)
        return _as_results(payload)

    async def stats(self) -> Dict[str, Any]:
        """The server's live stats frame (server-wide + this session)."""
        self._writer.write(protocol.pack_frame(FRAME_STATS_REQUEST))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_STATS)
        return protocol.unpack_json(payload, FRAME_STATS)

    async def finish(self) -> Dict[str, Any]:
        """End the session cleanly; returns the final stats frame."""
        self._writer.write(protocol.pack_frame(FRAME_BYE))
        await self._writer.drain()
        payload = _raise_if_error(await self._read(), FRAME_STATS)
        final = protocol.unpack_json(payload, FRAME_STATS)
        await self.close()
        return final

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "AsyncPredictionClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


class MuxPredictionClient:
    """A protocol v2 connection multiplexing many predictor sessions.

    Replies are demultiplexed by a background reader task: OPEN
    acknowledgements, per-session prediction frames and stats frames each
    form their own FIFO lane, matching the server's ordering guarantees.
    A server ERROR is connection-fatal — it fails every in-flight future
    and all subsequent calls with the typed :class:`ProtocolError`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self.connection_info: Dict[str, Any] = {}
        self.session_info: Dict[int, Dict[str, Any]] = {}
        self._pending_ok: "Deque[asyncio.Future]" = deque()
        self._pending_stats: "Deque[asyncio.Future]" = deque()
        self._pending_predictions: "Dict[int, Deque[asyncio.Future]]" = {}
        self._broken: Optional[BaseException] = None
        self._reader_task: "Optional[asyncio.Task]" = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_sessions: int = 4096,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> "MuxPredictionClient":
        """Connect and negotiate protocol v2 with ``max_sessions``."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame)
        try:
            writer.write(
                protocol.pack_json(
                    FRAME_HELLO,
                    {"version": PROTOCOL_VERSION, "max_sessions": max_sessions},
                )
            )
            await writer.drain()
            payload = _raise_if_error(
                await protocol.read_frame(reader, max_frame), FRAME_OK
            )
            client.connection_info = protocol.unpack_json(payload, FRAME_OK)
        except BaseException:
            await client.close()
            raise
        client._reader_task = asyncio.ensure_future(client._demux_loop())
        return client

    @property
    def max_sessions(self) -> int:
        """The session limit the server granted this connection."""
        return int(self.connection_info.get("max_sessions", 1))

    # -- demultiplexing ------------------------------------------------
    async def _demux_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader, self._max_frame)
                if frame is None:
                    self._fail_all(
                        ProtocolError("server closed the connection", "bad-frame")
                    )
                    return
                frame_type, payload = frame
                if frame_type == FRAME_ERROR:
                    error = protocol.unpack_json(payload, FRAME_ERROR)
                    self._fail_all(
                        ProtocolError(
                            str(error.get("error", "server error")),
                            str(error.get("code", "internal")),
                        )
                    )
                    return
                if frame_type == FRAME_OK:
                    self._resolve(self._pending_ok, payload)
                elif frame_type == FRAME_PREDICTIONS2:
                    sid, body = protocol.split_session_payload(payload, frame_type)
                    lane = self._pending_predictions.get(sid)
                    if lane is None:
                        raise ProtocolError(
                            f"PREDICTIONS for session {sid} nobody asked about",
                            "bad-frame",
                        )
                    self._resolve(lane, body)
                elif frame_type == FRAME_STATS:
                    self._resolve(self._pending_stats, payload)
                else:
                    name = protocol.FRAME_NAMES.get(frame_type, str(frame_type))
                    raise ProtocolError(f"unexpected {name} frame", "bad-frame")
        except asyncio.CancelledError:
            self._fail_all(ProtocolError("client closed", "bad-frame"))
            raise
        except BaseException as exc:
            self._fail_all(exc)

    @staticmethod
    def _resolve(lane: "Deque[asyncio.Future]", payload: bytes) -> None:
        if not lane:
            raise ProtocolError("reply frame with no request in flight", "bad-frame")
        future = lane.popleft()
        if not future.done():
            future.set_result(payload)

    def _fail_all(self, exc: BaseException) -> None:
        if self._broken is None:
            self._broken = exc
        lanes: List[Deque[asyncio.Future]] = [self._pending_ok, self._pending_stats]
        lanes.extend(self._pending_predictions.values())
        for lane in lanes:
            while lane:
                future = lane.popleft()
                if not future.done():
                    future.set_exception(exc)

    def _check(self) -> None:
        if self._broken is not None:
            raise self._broken

    def _expect(self, lane: "Deque[asyncio.Future]") -> "asyncio.Future":
        future = asyncio.get_running_loop().create_future()
        lane.append(future)
        return future

    # -- the v2 verbs --------------------------------------------------
    async def open(
        self, session: int, spec: str, backend: Optional[str] = None
    ) -> Dict[str, Any]:
        """Open logical session ``session`` with its own spec/backend."""
        self._check()
        request: Dict[str, Any] = {"session": session, "spec": spec}
        if backend is not None:
            request["backend"] = backend
        future = self._expect(self._pending_ok)
        self._writer.write(protocol.pack_json(FRAME_OPEN, request))
        await self._writer.drain()
        info = protocol.unpack_json(await future, FRAME_OK)
        self.session_info[session] = info
        self._pending_predictions.setdefault(session, deque())
        return info

    async def train(self, session: int, records: Iterable[BranchRecord]) -> None:
        """Stream training records for one session (no reply)."""
        self._check()
        self._writer.write(
            protocol.pack_records2(session, list(records), FRAME_TRAIN2)
        )
        await self._writer.drain()

    async def submit(
        self, session: int, records: Sequence[BranchRecord]
    ) -> "asyncio.Future":
        """Send one chunk; return a future of its prediction results.

        Does not wait for the answer — await the returned future whenever
        convenient, keeping any number of chunks (across any number of
        sessions) in flight.
        """
        self._check()
        lane = self._pending_predictions.setdefault(session, deque())
        future = self._expect(lane)
        self._writer.write(protocol.pack_records2(session, records))
        await self._writer.drain()
        return _ResultFuture(future)

    async def submit_payload(self, session: int, payload: bytes) -> "_ResultFuture":
        """Like :meth:`submit`, but ``payload`` is already-encoded record
        bytes (YPTRACE2 layout) — load generators streaming the same chunk
        to many sessions encode it once instead of once per session."""
        self._check()
        lane = self._pending_predictions.setdefault(session, deque())
        future = self._expect(lane)
        self._writer.write(
            protocol.pack_frame(FRAME_RECORDS2, SESSION_ID.pack(session) + payload)
        )
        await self._writer.drain()
        return _ResultFuture(future)

    async def train_payload(self, session: int, payload: bytes) -> None:
        """Like :meth:`train`, over already-encoded record bytes."""
        self._check()
        self._writer.write(
            protocol.pack_frame(FRAME_TRAIN2, SESSION_ID.pack(session) + payload)
        )
        await self._writer.drain()

    async def predict(
        self, session: int, records: Sequence[BranchRecord]
    ) -> "List[Optional[PredictionResult]]":
        """Score one chunk synchronously (submit + await)."""
        return await (await self.submit(session, records))

    async def stats(self, session: Optional[int] = None) -> Dict[str, Any]:
        """Server-wide stats, plus one session's when ``session`` given."""
        self._check()
        future = self._expect(self._pending_stats)
        if session is None:
            self._writer.write(protocol.pack_frame(FRAME_STATS_REQUEST))
        else:
            self._writer.write(
                protocol.pack_json(FRAME_STATS_REQUEST, {"session": session})
            )
        await self._writer.drain()
        return protocol.unpack_json(await future, FRAME_STATS)

    async def close_session(self, session: int) -> Dict[str, Any]:
        """Close one logical session; returns its final stats frame."""
        self._check()
        future = self._expect(self._pending_stats)
        self._writer.write(protocol.pack_json(FRAME_CLOSE, {"session": session}))
        await self._writer.drain()
        final = protocol.unpack_json(await future, FRAME_STATS)
        self.session_info.pop(session, None)
        return final

    async def finish(self) -> Dict[str, Any]:
        """End the connection cleanly; returns the final stats frame."""
        self._check()
        future = self._expect(self._pending_stats)
        self._writer.write(protocol.pack_frame(FRAME_BYE))
        await self._writer.drain()
        final = protocol.unpack_json(await future, FRAME_STATS)
        await self.close()
        return final

    async def close(self) -> None:
        if self._reader_task is not None and not self._reader_task.done():
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "MuxPredictionClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


class _ResultFuture:
    """Awaitable decoding a raw prediction payload into results."""

    def __init__(self, payload_future: "asyncio.Future"):
        self._payload_future = payload_future

    def __await__(self) -> Any:
        payload = yield from self._payload_future.__await__()
        return _as_results(payload)

    async def raw(self) -> bytes:
        """The undecoded prediction bytes (one byte per submitted record).

        For callers that only need aggregate counts — summing scored and
        correct bytes is vastly cheaper than boxing a
        :class:`PredictionResult` per record."""
        return await self._payload_future


class PredictionClient:
    """Blocking predictor session over a plain socket (scripts, REPLs)."""

    def __init__(self, sock: socket.socket, max_frame: int = MAX_FRAME_BYTES):
        self._sock = sock
        self._max_frame = max_frame
        self.session_info: Dict[str, Any] = {}

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        spec: str,
        backend: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> "PredictionClient":
        """Open a session: TCP connect plus the HELLO/OK handshake."""
        sock = socket.create_connection((host, port), timeout=timeout)
        client = cls(sock, max_frame)
        try:
            hello: Dict[str, Any] = {"spec": spec}
            if backend is not None:
                hello["backend"] = backend
            sock.sendall(protocol.pack_json(FRAME_HELLO, hello))
            payload = _raise_if_error(client._read(), FRAME_OK)
            client.session_info = protocol.unpack_json(payload, FRAME_OK)
        except BaseException:
            client.close()
            raise
        return client

    def _read(self) -> "Optional[Tuple[int, bytes]]":
        return protocol.read_frame_sync(self._sock.recv, self._max_frame)

    @property
    def backend(self) -> Optional[str]:
        return self.session_info.get("backend")

    def train(self, records: Iterable[BranchRecord]) -> None:
        self._sock.sendall(protocol.pack_records(list(records), FRAME_TRAIN))

    def predict(
        self, records: Sequence[BranchRecord]
    ) -> "List[Optional[PredictionResult]]":
        self._sock.sendall(protocol.pack_records(records, FRAME_RECORDS))
        payload = _raise_if_error(self._read(), FRAME_PREDICTIONS)
        return _as_results(payload)

    def stats(self) -> Dict[str, Any]:
        self._sock.sendall(protocol.pack_frame(FRAME_STATS_REQUEST))
        payload = _raise_if_error(self._read(), FRAME_STATS)
        return protocol.unpack_json(payload, FRAME_STATS)

    def finish(self) -> Dict[str, Any]:
        self._sock.sendall(protocol.pack_frame(FRAME_BYE))
        payload = _raise_if_error(self._read(), FRAME_STATS)
        final = protocol.unpack_json(payload, FRAME_STATS)
        self.close()
        return final

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
