"""Wire protocol for the prediction service.

Every message is a *frame*::

    uint32 length   (little-endian, size of the payload in bytes)
    uint8  type     (FRAME_* constant)
    bytes  payload  (length bytes)

Record-bearing frames (``TRAIN``, ``RECORDS``) carry a whole number of
9-byte YPTRACE2 records — exactly the on-disk record layout of
:mod:`repro.trace.encoding` (``encode_record`` / ``decode_record``), so a
binary trace file body can be streamed to the server unmodified.

``PREDICTIONS`` answers a ``RECORDS`` frame with one byte per submitted
record:

* ``PRED_SKIPPED`` (0x80) — the record was not a conditional branch, so the
  direction predictor did not score it;
* otherwise a combination of ``PRED_TAKEN`` (predicted direction),
  ``PRED_ACTUAL`` (the trace's actual outcome, echoed) and ``PRED_CORRECT``.

Control frames (``HELLO``, ``OK``, ``STATS``, ``ERROR``) carry UTF-8 JSON
objects.  ``ERROR`` payloads are ``{"code": <ERROR_CODES entry>,
"error": <message>}`` and map onto :class:`repro.errors.ProtocolError`.

The v1 session state machine (enforced by the server, mirrored by the
clients)::

    connect -> HELLO -> OK -> [TRAIN ...] -> {RECORDS -> PREDICTIONS}* -> BYE -> STATS -> close
                                  (STATS_REQUEST -> STATS anywhere after OK)

**Protocol v2 — session multiplexing.**  A HELLO carrying ``"version": 2``
(and no spec) negotiates a multiplexed connection: the OK reply echoes
``version`` and the granted ``max_sessions``, and every record-bearing
frame thereafter carries a client-chosen 32-bit session id so one TCP
connection can interleave thousands of logical predictor sessions:

* ``OPEN`` / ``CLOSE`` (JSON) start and end a logical session — CLOSE is
  answered with that session's final ``STATS``;
* ``RECORDS2`` / ``TRAIN2`` prefix the v1 record payload with
  ``uint32 session_id`` (:data:`SESSION_ID`); ``PREDICTIONS2`` answers
  ``RECORDS2`` with the same prefix so clients can demultiplex;
* ``BYE`` ends the whole connection, closing every remaining session.

v1 single-session clients are untouched: a HELLO naming a spec (no
``version`` field) behaves exactly as before.

Any protocol violation earns the connection a single ``ERROR`` frame and a
close; other connections are unaffected.
"""

from __future__ import annotations

import asyncio
import json
import struct
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError, TraceFormatError
from repro.sim.backend import numpy_or_none
from repro.trace.columnar import PackedTrace
from repro.trace.encoding import RECORD_SIZE, decode_record, encode_record
from repro.trace.record import BranchRecord

__all__ = [
    "FRAME_HELLO",
    "FRAME_OK",
    "FRAME_TRAIN",
    "FRAME_RECORDS",
    "FRAME_PREDICTIONS",
    "FRAME_STATS_REQUEST",
    "FRAME_STATS",
    "FRAME_BYE",
    "FRAME_ERROR",
    "FRAME_OPEN",
    "FRAME_CLOSE",
    "FRAME_RECORDS2",
    "FRAME_PREDICTIONS2",
    "FRAME_TRAIN2",
    "FRAME_NAMES",
    "ERROR_CODES",
    "HEADER",
    "SESSION_ID",
    "MAX_FRAME_BYTES",
    "MAX_SESSION_ID",
    "PROTOCOL_VERSION",
    "PRED_TAKEN",
    "PRED_ACTUAL",
    "PRED_CORRECT",
    "PRED_SKIPPED",
    "pack_frame",
    "pack_json",
    "pack_error",
    "pack_records",
    "pack_records2",
    "pack_predictions2",
    "split_session_payload",
    "unpack_records",
    "unpack_records_packed",
    "unpack_json",
    "encode_predictions",
    "encode_predictions_fused",
    "decode_predictions",
    "read_frame",
    "read_frame_sync",
]

#: frame header: payload length + frame type.
HEADER = struct.Struct("<IB")

#: session-id prefix of v2 record-bearing frames (little-endian uint32).
SESSION_ID = struct.Struct("<I")

#: the newest protocol version a HELLO may negotiate.
PROTOCOL_VERSION = 2

#: largest client-chosen logical session id (fits the uint32 prefix).
MAX_SESSION_ID = 0xFFFFFFFF

#: default cap on a single frame's payload (server and client enforce it).
MAX_FRAME_BYTES = 1 << 20

FRAME_HELLO = 1
FRAME_OK = 2
FRAME_TRAIN = 3
FRAME_RECORDS = 4
FRAME_PREDICTIONS = 5
FRAME_STATS_REQUEST = 6
FRAME_STATS = 7
FRAME_BYE = 8
FRAME_ERROR = 9
# protocol v2 (session multiplexing)
FRAME_OPEN = 10
FRAME_CLOSE = 11
FRAME_RECORDS2 = 12
FRAME_PREDICTIONS2 = 13
FRAME_TRAIN2 = 14

FRAME_NAMES: Dict[int, str] = {
    FRAME_HELLO: "HELLO",
    FRAME_OK: "OK",
    FRAME_TRAIN: "TRAIN",
    FRAME_RECORDS: "RECORDS",
    FRAME_PREDICTIONS: "PREDICTIONS",
    FRAME_STATS_REQUEST: "STATS_REQUEST",
    FRAME_STATS: "STATS",
    FRAME_BYE: "BYE",
    FRAME_ERROR: "ERROR",
    FRAME_OPEN: "OPEN",
    FRAME_CLOSE: "CLOSE",
    FRAME_RECORDS2: "RECORDS2",
    FRAME_PREDICTIONS2: "PREDICTIONS2",
    FRAME_TRAIN2: "TRAIN2",
}

#: stable machine-readable error codes carried by ERROR frames.
ERROR_CODES = (
    "bad-frame",        # unknown type, truncated payload, bad record bytes
    "frame-too-large",  # payload length exceeds the server's frame cap
    "bad-hello",        # HELLO payload unparseable or missing fields
    "bad-spec",         # predictor spec string rejected by the registry
    "bad-backend",      # backend name unknown or unavailable
    "bad-session",      # v2 session id unknown, duplicate, or over the cap
    "protocol",         # frame legal but out of order for the session state
    "timeout",          # connection idle past the server's read timeout
    "busy",             # server at its max-connections limit
    "internal",         # unexpected server-side failure
)

# prediction byte flags
PRED_TAKEN = 0x01
PRED_ACTUAL = 0x02
PRED_CORRECT = 0x04
PRED_SKIPPED = 0x80


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def pack_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """One wire frame: header + payload."""
    return HEADER.pack(len(payload), frame_type) + payload


def pack_json(frame_type: int, obj: Any) -> bytes:
    return pack_frame(frame_type, json.dumps(obj, sort_keys=True).encode("utf-8"))


def pack_error(code: str, message: str) -> bytes:
    """A typed ERROR frame (``code`` must be an :data:`ERROR_CODES` entry)."""
    return pack_json(FRAME_ERROR, {"code": code, "error": message})


def unpack_json(payload: bytes, frame_type: int) -> Dict[str, Any]:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        name = FRAME_NAMES.get(frame_type, str(frame_type))
        raise ProtocolError(f"{name} payload is not valid JSON: {exc}", "bad-frame") from exc
    if not isinstance(obj, dict):
        name = FRAME_NAMES.get(frame_type, str(frame_type))
        raise ProtocolError(f"{name} payload must be a JSON object", "bad-frame")
    return obj


def pack_records(
    records: Sequence[BranchRecord], frame_type: int = FRAME_RECORDS
) -> bytes:
    """A TRAIN/RECORDS frame carrying ``records`` in YPTRACE2 layout."""
    return pack_frame(frame_type, b"".join(encode_record(record) for record in records))


def pack_records2(
    session_id: int,
    records: Sequence[BranchRecord],
    frame_type: int = FRAME_RECORDS2,
) -> bytes:
    """A v2 RECORDS2/TRAIN2 frame: session-id prefix + YPTRACE2 records."""
    return pack_frame(
        frame_type,
        SESSION_ID.pack(session_id)
        + b"".join(encode_record(record) for record in records),
    )


def pack_predictions2(session_id: int, prediction_bytes: bytes) -> bytes:
    """A v2 PREDICTIONS2 frame: session-id prefix + prediction bytes."""
    return pack_frame(
        FRAME_PREDICTIONS2, SESSION_ID.pack(session_id) + prediction_bytes
    )


def split_session_payload(payload: bytes, frame_type: int) -> Tuple[int, bytes]:
    """Split a v2 session-scoped payload into ``(session id, rest)``.

    Raises :class:`ProtocolError` (code ``bad-frame``) when the payload is
    too short to carry the session-id prefix.
    """
    if len(payload) < SESSION_ID.size:
        name = FRAME_NAMES.get(frame_type, str(frame_type))
        raise ProtocolError(
            f"{name} payload of {len(payload)} bytes is too short for the"
            f" {SESSION_ID.size}-byte session id",
            "bad-frame",
        )
    (session_id,) = SESSION_ID.unpack_from(payload)
    return session_id, payload[SESSION_ID.size:]


def unpack_records(payload: bytes) -> List[BranchRecord]:
    """Decode a record frame's payload; raises :class:`ProtocolError` (code
    ``bad-frame``) when the payload is not whole valid records."""
    if len(payload) % RECORD_SIZE:
        raise ProtocolError(
            f"record payload of {len(payload)} bytes is not a multiple of the"
            f" {RECORD_SIZE}-byte record size",
            "bad-frame",
        )
    try:
        return [
            decode_record(payload, offset)
            for offset in range(0, len(payload), RECORD_SIZE)
        ]
    except TraceFormatError as exc:
        raise ProtocolError(f"bad record in frame: {exc}", "bad-frame") from exc


_ADDR_TYPECODE = "I" if array("I").itemsize >= 4 else "L"
_WIRE_DTYPE = None  # built on first use; numpy may be absent


def unpack_records_packed(payload: bytes) -> "Optional[PackedTrace]":
    """Decode a record payload straight into a :class:`PackedTrace`.

    The columnar twin of :func:`unpack_records`: the wire layout *is* an
    interleaved array of 9-byte records, so NumPy splits it into columns
    without materialising a :class:`BranchRecord` per record — the serve
    tier's ingest fast path.  Flag validation (same rejections as
    :func:`decode_record`) happens in :class:`PackedTrace` at C speed.
    Returns None when NumPy is unavailable; callers fall back to
    :func:`unpack_records`.
    """
    np = numpy_or_none()
    if np is None:
        return None
    if len(payload) % RECORD_SIZE:
        raise ProtocolError(
            f"record payload of {len(payload)} bytes is not a multiple of the"
            f" {RECORD_SIZE}-byte record size",
            "bad-frame",
        )
    global _WIRE_DTYPE
    if _WIRE_DTYPE is None:
        _WIRE_DTYPE = np.dtype(
            [("pc", "<u4"), ("flags", "u1"), ("target", "<u4")]
        )
    arr = np.frombuffer(payload, dtype=_WIRE_DTYPE)

    def _column(values: Any) -> array:
        col = array(_ADDR_TYPECODE)
        kind = "=u4" if col.itemsize == 4 else "=u8"
        col.frombytes(values.astype(kind, copy=False).tobytes())
        return col

    try:
        return PackedTrace(
            _column(arr["pc"]), _column(arr["target"]), arr["flags"].tobytes()
        )
    except TraceFormatError as exc:
        raise ProtocolError(f"bad record in frame: {exc}", "bad-frame") from exc


# ----------------------------------------------------------------------
# prediction bytes
# ----------------------------------------------------------------------
def encode_predictions(
    records: Sequence[BranchRecord], predictions: Sequence[Optional[bool]]
) -> bytes:
    """One response byte per record from a scorer's prediction list."""
    out = bytearray(len(records))
    for index, (record, prediction) in enumerate(zip(records, predictions)):
        if prediction is None:
            out[index] = PRED_SKIPPED
        else:
            byte = PRED_TAKEN if prediction else 0
            if record.taken:
                byte |= PRED_ACTUAL
            if prediction == record.taken:
                byte |= PRED_CORRECT
            out[index] = byte
    return bytes(out)


def encode_predictions_fused(fused: Any) -> bytes:
    """Vectorized twin of :func:`encode_predictions`.

    ``fused`` is a :class:`repro.sim.streaming.FusedPredictions` (duck-typed
    here to keep the protocol layer free of simulator imports): ``length``
    records total, of which the conditionals at positions ``index`` carry
    ``predicted``/``taken`` direction columns.  Non-conditional positions
    encode as ``PRED_SKIPPED``; byte semantics are identical to the scalar
    encoder.  Requires NumPy (only reachable via the packed ingest path).
    """
    np = numpy_or_none()
    out = np.full(fused.length, PRED_SKIPPED, dtype=np.uint8)
    if len(fused.index):
        predicted = fused.predicted.astype(bool, copy=False)
        taken = fused.taken.astype(bool, copy=False)
        byte = np.where(predicted, PRED_TAKEN, 0).astype(np.uint8)
        byte |= np.where(taken, PRED_ACTUAL, 0).astype(np.uint8)
        byte |= np.where(predicted == taken, PRED_CORRECT, 0).astype(np.uint8)
        out[fused.index] = byte
    return out.tobytes()


def decode_predictions(payload: bytes) -> "List[Optional[Tuple[bool, bool, bool]]]":
    """Inverse of :func:`encode_predictions`: ``(predicted, actual,
    correct)`` per scored record, ``None`` for skipped records."""
    out: "List[Optional[Tuple[bool, bool, bool]]]" = []
    for byte in payload:
        if byte & PRED_SKIPPED:
            out.append(None)
        else:
            out.append(
                (bool(byte & PRED_TAKEN), bool(byte & PRED_ACTUAL), bool(byte & PRED_CORRECT))
            )
    return out


# ----------------------------------------------------------------------
# frame readers
# ----------------------------------------------------------------------
def _check_length(length: int, max_frame: int) -> None:
    if length > max_frame:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the {max_frame}-byte limit",
            "frame-too-large",
        )


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> "Optional[Tuple[int, bytes]]":
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on a truncated frame or one whose payload
    exceeds ``max_frame`` (the payload is *not* read in that case — the
    caller must drop the connection).
    """
    header = await reader.read(HEADER.size)
    if not header:
        return None
    while len(header) < HEADER.size:
        more = await reader.read(HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed mid frame header", "bad-frame")
        header += more
    length, frame_type = HEADER.unpack(header)
    _check_length(length, max_frame)
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid frame: expected {length} payload bytes,"
            f" got {len(exc.partial)}",
            "bad-frame",
        ) from exc
    return frame_type, payload


def read_frame_sync(
    read: Any, max_frame: int = MAX_FRAME_BYTES
) -> "Optional[Tuple[int, bytes]]":
    """Blocking twin of :func:`read_frame` over a ``read(n)`` callable (e.g.
    ``socket.makefile('rb').read``)."""

    def read_exact(n: int) -> bytes:
        chunks = b""
        while len(chunks) < n:
            piece = read(n - len(chunks))
            if not piece:
                return chunks
            chunks += piece
        return chunks

    header = read_exact(HEADER.size)
    if not header:
        return None
    if len(header) < HEADER.size:
        raise ProtocolError("connection closed mid frame header", "bad-frame")
    length, frame_type = HEADER.unpack(header)
    _check_length(length, max_frame)
    payload = read_exact(length) if length else b""
    if len(payload) < length:
        raise ProtocolError(
            f"connection closed mid frame: expected {length} payload bytes,"
            f" got {len(payload)}",
            "bad-frame",
        )
    return frame_type, payload
