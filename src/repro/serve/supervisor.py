"""Pre-fork worker pool for the prediction service.

One :class:`Supervisor` forks N worker processes, each running a full
:class:`~repro.serve.server.PredictionServer` event loop on the *same*
TCP port.  The port is claimed once by the supervisor with a
``SO_REUSEPORT`` probe socket (bound, never listening, so it takes no
connections); every worker then binds its own ``SO_REUSEPORT`` listening
socket and the kernel load-balances incoming connections across them.
Where ``SO_REUSEPORT`` is unavailable the supervisor falls back to
binding and listening a single socket itself and letting the forked
workers ``accept()`` from the inherited fd.

Workers are managed with the same fork-and-pipe pattern as the sweep
pool in :mod:`repro.sim.parallel`: the ``fork`` start method (predictor
state is process-local, nothing needs pickling), one duplex pipe per
worker for readiness, stats polling and shutdown, and SIGTERM handlers
all the way down — signalling the supervisor drains every worker
gracefully (each finishes its in-flight sessions within the configured
drain timeout).

A small control endpoint on its own port answers the standard
STATS_REQUEST frame with per-worker ``ServeStats`` plus their aggregate,
so a fleet is observable with one round trip::

    supervisor = Supervisor(ServerConfig(), workers=4)
    supervisor.start()
    ... clients connect to supervisor.port ...
    aggregated = supervisor.stats()
    supervisor.stop()          # SIGTERM-equivalent graceful drain
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.serve import protocol
from repro.serve.protocol import FRAME_BYE, FRAME_STATS, FRAME_STATS_REQUEST
from repro.serve.server import PredictionServer, ServerConfig

__all__ = ["Supervisor", "WorkerInfo", "aggregate_worker_stats"]

_READY_TIMEOUT = 30.0  #: seconds for a forked worker to come up
_STATS_TIMEOUT = 5.0  #: seconds for a worker to answer a stats poll


@dataclass
class WorkerInfo:
    """One forked worker as the supervisor sees it."""

    worker_id: int
    process: Any
    pipe: Any
    pid: int = 0
    alive: bool = True
    final_stats: Optional[Dict[str, Any]] = None
    lock: threading.Lock = field(default_factory=threading.Lock)


def aggregate_worker_stats(
    workers: "List[Dict[str, Any]]",
) -> Dict[str, Any]:
    """Sum per-worker ``ServeStats`` dicts into one fleet-wide view.

    Counters add; batch-size histograms and per-scheme tallies merge;
    ``peak_sessions`` adds too (each worker peaked independently, so the
    sum is the fleet's upper bound, exact when load is steady).
    """
    aggregate: Dict[str, Any] = {
        "active_sessions": 0,
        "peak_sessions": 0,
        "sessions_total": 0,
        "records_served": 0,
        "frames": 0,
        "errors": 0,
        "fused_batches": 0,
        "max_fused_sessions": 0,
        "batch_size_histogram": {},
        "schemes": {},
    }
    for stats in workers:
        if not stats:
            continue
        for key in (
            "active_sessions",
            "peak_sessions",
            "sessions_total",
            "records_served",
            "frames",
            "errors",
            "fused_batches",
        ):
            aggregate[key] += stats.get(key, 0)
        aggregate["max_fused_sessions"] = max(
            aggregate["max_fused_sessions"], stats.get("max_fused_sessions", 0)
        )
        for bucket, count in stats.get("batch_size_histogram", {}).items():
            histogram = aggregate["batch_size_histogram"]
            histogram[bucket] = histogram.get(bucket, 0) + count
        for scheme, entry in stats.get("schemes", {}).items():
            merged = aggregate["schemes"].setdefault(
                scheme, {"batches": 0, "records": 0, "seconds": 0.0}
            )
            merged["batches"] += entry.get("batches", 0)
            merged["records"] += entry.get("records", 0)
            merged["seconds"] += entry.get("seconds", 0.0)
    for entry in aggregate["schemes"].values():
        entry["seconds"] = round(entry["seconds"], 6)
        entry["mean_batch_us"] = round(
            1e6 * entry["seconds"] / entry["batches"] if entry["batches"] else 0.0, 1
        )
    aggregate["batch_size_histogram"] = {
        bucket: aggregate["batch_size_histogram"][bucket]
        for bucket in sorted(aggregate["batch_size_histogram"], key=int)
    }
    return aggregate


def _worker_main(
    config: ServerConfig,
    worker_id: int,
    pipe: Any,
    inherited: "Optional[socket.socket]",
    reuseport_addr: "Optional[Tuple[str, int]]",
) -> None:
    """Entry point of a forked worker: one server, one event loop."""
    import asyncio

    # the supervisor's SIGINT (^C in a terminal) is handled there; each
    # worker drains on the SIGTERM the supervisor forwards
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    async def _run() -> None:
        if reuseport_addr is not None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind(reuseport_addr)
            sock.listen(128)
        else:
            assert inherited is not None
            sock = inherited
        server = PredictionServer(config)
        await server.start(sock=sock)
        server.install_signal_handlers()
        loop = asyncio.get_running_loop()

        def _on_command() -> None:
            try:
                command = pipe.recv()
            except (EOFError, OSError):
                # the supervisor vanished; drain and exit
                with contextlib.suppress(ValueError, OSError):
                    loop.remove_reader(pipe.fileno())
                asyncio.ensure_future(server.stop())
                return
            if command == "stats":
                payload = server.stats.as_dict()
                payload["worker"] = worker_id
                payload["pid"] = os.getpid()
                with contextlib.suppress(BrokenPipeError, OSError):
                    pipe.send(("stats", payload))
            elif command == "stop":
                asyncio.ensure_future(server.stop())

        loop.add_reader(pipe.fileno(), _on_command)
        pipe.send(("ready", os.getpid(), server.port))
        await server.wait_closed()
        with contextlib.suppress(ValueError, OSError):
            loop.remove_reader(pipe.fileno())
        payload = server.stats.as_dict()
        payload["worker"] = worker_id
        payload["pid"] = os.getpid()
        with contextlib.suppress(BrokenPipeError, OSError):
            pipe.send(("final", payload))

    try:
        asyncio.run(_run())
    finally:
        with contextlib.suppress(OSError):
            pipe.close()


class Supervisor:
    """Pre-fork pool of prediction servers sharing one listen port."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        workers: int = 2,
        control: bool = True,
    ):
        if workers < 1:
            raise ConfigError(f"need at least one worker, got {workers}")
        self.config = config or ServerConfig()
        self.workers = workers
        self._control_enabled = control
        self._workers: List[WorkerInfo] = []
        self._probe: Optional[socket.socket] = None
        self._inherited: Optional[socket.socket] = None
        self._port = 0
        self._control_sock: Optional[socket.socket] = None
        self._control_thread: Optional[threading.Thread] = None
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The shared TCP port clients connect to."""
        assert self._started, "supervisor not started"
        return self._port

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def control_port(self) -> int:
        """Port of the aggregated-stats endpoint (0 when disabled)."""
        if self._control_sock is None:
            return 0
        return self._control_sock.getsockname()[1]

    @property
    def reuseport(self) -> bool:
        """True when workers share the port via ``SO_REUSEPORT``."""
        return self._probe is not None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Claim the port, fork the workers, wait until all accept."""
        if self._started:
            return
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-fork platform
            raise ConfigError(
                "the pre-fork supervisor needs the 'fork' start method"
            ) from exc
        # Import the vector backend *before* forking: every worker inherits
        # the already-initialised module via copy-on-write instead of paying
        # a ~100 ms import on its first scoring frame — which would show up
        # as a first-request latency cliff on every worker.
        from repro.sim.backend import numpy_or_none

        numpy_or_none()
        reuseport_addr = self._claim_port()
        for worker_id in range(self.workers):
            parent_pipe, child_pipe = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(
                    self.config,
                    worker_id,
                    child_pipe,
                    self._inherited,
                    reuseport_addr,
                ),
                daemon=False,
            )
            process.start()
            child_pipe.close()
            self._workers.append(WorkerInfo(worker_id, process, parent_pipe))
        self._started = True
        try:
            for worker in self._workers:
                message = self._recv(worker, _READY_TIMEOUT)
                if not (isinstance(message, tuple) and message[0] == "ready"):
                    raise ConfigError(
                        f"worker {worker.worker_id} failed to start"
                        f" (got {message!r})"
                    )
                worker.pid = message[1]
                if self._port == 0:
                    self._port = message[2]
        except BaseException:
            self.stop(drain=False)
            raise
        if self._control_enabled:
            self._start_control()

    def _claim_port(self) -> "Optional[Tuple[str, int]]":
        """Bind the shared port once; returns the REUSEPORT address for
        workers, or None when falling back to an inherited socket."""
        if hasattr(socket, "SO_REUSEPORT"):
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                probe.bind((self.config.host, self.config.port))
            except OSError:
                probe.close()
            else:
                # bound but never listening: reserves the port (surviving
                # worker restarts) without joining the accept group
                self._probe = probe
                self._port = probe.getsockname()[1]
                return (self.config.host, self._port)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._inherited = listener
        self._port = listener.getsockname()[1]
        return None

    # ------------------------------------------------------------------
    def _recv(self, worker: WorkerInfo, timeout: float) -> Any:
        """Next message from one worker's pipe, or None on timeout/death."""
        try:
            if not worker.pipe.poll(timeout):
                return None
            return worker.pipe.recv()
        except (EOFError, OSError):
            worker.alive = False
            return None

    def _poll_stats(self, worker: WorkerInfo) -> "Optional[Dict[str, Any]]":
        with worker.lock:
            if not worker.alive or not worker.process.is_alive():
                return worker.final_stats
            try:
                worker.pipe.send("stats")
            except (BrokenPipeError, OSError):
                worker.alive = False
                return worker.final_stats
            deadline = time.monotonic() + _STATS_TIMEOUT
            while True:
                message = self._recv(worker, max(deadline - time.monotonic(), 0.0))
                if message is None:
                    return worker.final_stats
                if message[0] == "stats":
                    return message[1]
                if message[0] == "final":
                    worker.final_stats = message[1]
                    return worker.final_stats

    def stats(self) -> Dict[str, Any]:
        """Per-worker stats plus their fleet-wide aggregate."""
        per_worker: List[Dict[str, Any]] = []
        for worker in self._workers:
            stats = self._poll_stats(worker)
            if stats is None:
                stats = {"worker": worker.worker_id, "pid": worker.pid}
            stats.setdefault("worker", worker.worker_id)
            stats["alive"] = worker.alive and worker.process.is_alive()
            per_worker.append(stats)
        return {
            "workers": per_worker,
            "aggregate": aggregate_worker_stats(per_worker),
            "worker_count": len(self._workers),
            "reuseport": self.reuseport,
        }

    # ------------------------------------------------------------------
    def stop(self, drain: bool = True) -> Dict[str, Any]:
        """Drain and reap every worker; returns the final stats view."""
        if self._stopping:
            return {"workers": [], "aggregate": aggregate_worker_stats([])}
        self._stopping = True
        self._stop_control()
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.pipe.send("stop")
                except (BrokenPipeError, OSError):
                    pass
            if not drain and worker.process.is_alive():
                with contextlib.suppress(OSError):
                    worker.process.terminate()
        grace = self.config.drain_timeout + 5.0 if drain else 5.0
        deadline = time.monotonic() + grace
        for worker in self._workers:
            with worker.lock:
                while worker.alive:
                    message = self._recv(
                        worker, max(deadline - time.monotonic(), 0.0)
                    )
                    if message is None:
                        break
                    if message[0] == "final":
                        worker.final_stats = message[1]
                        break
            worker.process.join(max(deadline - time.monotonic(), 0.1))
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                with contextlib.suppress(OSError):
                    worker.process.kill()
                worker.process.join(5.0)
            worker.alive = False
            with contextlib.suppress(OSError):
                worker.pipe.close()
        if self._probe is not None:
            with contextlib.suppress(OSError):
                self._probe.close()
            self._probe = None
        if self._inherited is not None:
            with contextlib.suppress(OSError):
                self._inherited.close()
            self._inherited = None
        per_worker = [
            worker.final_stats
            or {"worker": worker.worker_id, "pid": worker.pid, "alive": False}
            for worker in self._workers
        ]
        return {
            "workers": per_worker,
            "aggregate": aggregate_worker_stats(per_worker),
        }

    def join(self) -> None:
        """Block until every worker process has exited (e.g. SIGTERM)."""
        for worker in self._workers:
            worker.process.join()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT on the supervisor drain the whole pool."""

        def _handler(signum: int, _frame: Any) -> None:
            self.stop(drain=True)

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # aggregated-stats control endpoint
    # ------------------------------------------------------------------
    def _start_control(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, 0))
        sock.listen(8)
        sock.settimeout(0.25)
        self._control_sock = sock
        self._control_thread = threading.Thread(
            target=self._control_loop, name="serve-control", daemon=True
        )
        self._control_thread.start()

    def _stop_control(self) -> None:
        if self._control_sock is not None:
            with contextlib.suppress(OSError):
                self._control_sock.close()
        if self._control_thread is not None:
            self._control_thread.join(2.0)
            self._control_thread = None

    def _control_loop(self) -> None:
        assert self._control_sock is not None
        while not self._stopping:
            try:
                conn, _addr = self._control_sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.settimeout(5.0)
                while True:
                    frame = protocol.read_frame_sync(conn.recv)
                    if frame is None:
                        break
                    frame_type, _payload = frame
                    if frame_type == FRAME_STATS_REQUEST:
                        conn.sendall(
                            protocol.pack_json(FRAME_STATS, self.stats())
                        )
                    elif frame_type == FRAME_BYE:
                        payload = self.stats()
                        payload["final"] = True
                        conn.sendall(protocol.pack_json(FRAME_STATS, payload))
                        break
                    else:
                        conn.sendall(
                            protocol.pack_error(
                                "bad-frame",
                                "the control endpoint only answers"
                                " STATS_REQUEST and BYE",
                            )
                        )
                        break
            except (OSError, socket.timeout, protocol.ProtocolError):
                pass
            finally:
                with contextlib.suppress(OSError):
                    conn.close()
