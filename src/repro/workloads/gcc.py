"""gcc analog: a token-stream interpreter with many small handlers.

SPEC89's gcc is the branch-predictor stress test of the suite: Table 1
counts 6,922 static conditional branches, spread over parsing, RTL analysis
and code generation — thousands of small, modestly-biased decision points
rather than a few hot loops.

The analog is a generated interpreter: a computed-goto dispatch (exercising
the register-unconditional branch class) over a fixed cyclic token stream,
with one generated handler per opcode.  Handlers test attribute bits of the
current token, compare against generated constants, consult a persistent
mode register (cross-token correlation), and occasionally call shared helper
routines (exercising calls/returns).  The handler *code* is identical across
data sets — only the token stream and attribute words change — exactly like
recompiling different source files with the same compiler (Table 3 trains on
``cexp.i`` and tests on ``dbxout.i``).

The static-branch population (hundreds of sites) is a scaled-down stand-in
for gcc's 6,922; the scale is recorded in DESIGN.md's substitution table.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads._asmlib import aux_phase, bounded_driver, join_sections, words_directive
from repro.workloads.base import DataSet, INTEGER, Workload, register_workload

#: handler structure is part of the *program*, not the data set, so it uses a
#: fixed seed — both Table 3 data sets run the identical interpreter.
_PROGRAM_SEED = 20011


def _handler(index: int, rng: random.Random, helpers: int) -> str:
    """Generate one token handler with 2-4 conditional branches."""
    lines = [f"h{index}:"]
    bit = 1 << rng.randrange(12)
    lines += [
        f"    andi r9, r6, {bit}",
        f"    beqz r9, h{index}_alt",
        f"    addi r19, r19, {rng.randrange(1, 9)}",
    ]
    style = rng.choices((0, 1, 2, 3), weights=(45, 15, 30, 10))[0]
    if style == 0:
        # nested threshold test on the attribute value
        threshold = rng.randrange(256, 3840)
        lines += [
            f"    li   r10, {threshold}",
            f"    blt  r6, r10, h{index}_low",
            "    srai r19, r19, 1",
            f"    br   h{index}_alt",
            f"h{index}_low:",
            "    addi r18, r18, 1",
        ]
    elif style == 1:
        # mode-register test (correlates across tokens)
        lines += [
            f"    andi r10, r18, {1 << rng.randrange(4)}",
            f"    beqz r10, h{index}_alt",
            "    xor  r19, r19, r6",
        ]
    elif style == 2:
        # helper call
        lines += [
            f"    bsr  helper{rng.randrange(helpers)}",
        ]
    else:
        # parity of accumulator
        lines += [
            "    andi r10, r19, 1",
            f"    bnez r10, h{index}_odd",
            "    addi r18, r18, 3",
            f"    br   h{index}_alt",
            f"h{index}_odd:",
            "    srai r18, r18, 1",
        ]
    lines += [
        f"h{index}_alt:",
        "    andi r18, r18, 255",
        "    br   dispatch",
    ]
    return "\n".join(lines)


def _helpers(count: int, rng: random.Random) -> str:
    """Small shared leaf routines (one conditional each)."""
    chunks: List[str] = []
    for index in range(count):
        constant = rng.randrange(3, 60)
        chunks.append(
            "\n".join(
                [
                    f"helper{index}:",
                    f"    li   r11, {constant}",
                    "    blt  r19, r11, helper{0}_small".format(index),
                    f"    sub  r19, r19, r11",
                    "    rts",
                    f"helper{index}_small:",
                    "    add  r19, r19, r11",
                    "    rts",
                ]
            )
        )
    return "\n\n".join(chunks)


def _phrase_library(handlers: int, phrases: int = 48):
    """Fixed library of token idioms.

    Compilers see the same few-token idioms over and over (declarations,
    calls, loop heads), regardless of which source file is compiled; branch
    outcomes therefore correlate strongly with recent history.  Each phrase
    is a short fixed sequence of (opcode, attribute) pairs — the library
    belongs to the *language*, so it is shared by every data set.
    """
    rng = random.Random(_PROGRAM_SEED + 17)
    weights = [1.0 / (rank + 1) for rank in range(handlers)]
    library = []
    for _ in range(phrases):
        length = rng.randint(6, 14)
        phrase = [
            (rng.choices(range(handlers), weights=weights)[0], rng.randrange(0, 4096))
            for _ in range(length)
        ]
        library.append(phrase)
    return library


def _token_stream(seed: int, length: int, handlers: int, epochs: int = 4):
    """A stream composed of library phrases plus a little free-form noise.

    The stream is organised in *epochs*, each drawing from an overlapping
    subset of the phrase library — a compiler works function by function, so
    at any moment only part of its code is hot and the working set shifts
    slowly.  This temporal locality is what gives a tagged LRU table (AHRT)
    its hit-ratio advantage over a tagless hash table in Figure 6.

    Different data sets (source files) mix the same idioms in different
    proportions, so the stream differs while per-history statistics mostly
    transfer — the mechanism behind gcc's ~1 percent Figure 8 degradation.
    """
    rng = random.Random(seed)
    library = _phrase_library(handlers)
    pool_size = max(2, (2 * len(library)) // (epochs + 1))  # overlapping pools
    pools = []
    for epoch in range(epochs):
        start = (epoch * (len(library) - pool_size)) // max(1, epochs - 1)
        pools.append(library[start : start + pool_size])
    epoch_len = max(1, length // epochs)

    opcodes: "list[int]" = []
    attrs: "list[int]" = []
    uniform = [1.0] * handlers
    while len(opcodes) < length:
        epoch = min(len(opcodes) // epoch_len, epochs - 1)
        pool = pools[epoch]
        # steep skew within the pool: a few idioms dominate any function
        weights = [1.0 / (rank + 1) ** 1.7 for rank in range(len(pool))]
        if rng.random() < 0.03:  # free-form token (file-specific noise)
            opcodes.append(rng.choices(range(handlers), weights=uniform)[0])
            attrs.append(rng.randrange(0, 4096))
            continue
        for opcode, attr in rng.choices(pool, weights=weights)[0]:
            opcodes.append(opcode)
            attrs.append(attr)
    return opcodes[:length], attrs[:length]


@register_workload
class Gcc(Workload):
    """Computed-goto interpreter over a cyclic token stream."""

    name = "gcc"
    category = INTEGER
    version = 2
    datasets = {
        "test": DataSet("dbxout.i", {"stream_seed": 60601, "stream_len": 420}),
        "train": DataSet("cexp.i", {"stream_seed": 7333, "stream_len": 360}),
    }

    #: generated-program shape (identical for every data set).  480 handlers
    #: with ~3 branch sites each plus the cold tail gives a static population
    #: in the low thousands — gcc is Table 1's outlier at 6,922 and must be
    #: the benchmark that pressures every finite HRT.
    num_handlers = 480
    num_helpers = 10

    def build_source(self, dataset: DataSet) -> str:
        stream_seed = dataset.param("stream_seed", 60601)
        stream_len = dataset.param("stream_len", 211)
        opcodes, attrs = _token_stream(stream_seed, stream_len, self.num_handlers)
        rng = random.Random(_PROGRAM_SEED)
        handlers = "\n\n".join(
            _handler(index, rng, self.num_helpers) for index in range(self.num_handlers)
        )
        helpers = _helpers(self.num_helpers, rng)
        # Cold-branch tail on top of the handler population (Table 1: 6,922).
        aux_init, aux_call, aux_sub = aux_phase(1304, seed=6922, label_prefix="gcaux", call_period_log2=6, groups=64, seed_state=False)
        # Warm, medium-frequency population: resident under a tagged LRU
        # table, collision-prone in a tagless hash (the Figure 6 lever).
        warm_init, warm_call, warm_sub = aux_phase(96, seed=6923, label_prefix="gcwarm", call_period_log2=6, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r15", label_prefix="gcdrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, stream
    li   r21, attrs
    li   r22, handler_table
    li   r24, 0             ; stream index
    li   r18, 0             ; persistent mode register
    li   r19, 0             ; accumulator

dispatch:
{aux_call}
{warm_call}
    shli r3, r24, 2
    add  r4, r3, r20
    ld   r5, 0(r4)          ; opcode
    add  r4, r3, r21
    ld   r6, 0(r4)          ; attribute word
    addi r24, r24, 1
    li   r7, {stream_len}
    bge  r24, r7, do_wrap   ; rare forward branch (end of token stream)
resume:
    shli r7, r5, 2
    add  r7, r7, r22
    ld   r8, 0(r7)
    jmp  r8                 ; computed goto into the handler
do_wrap:
    li   r24, 0
{drv_check}
    br   resume
"""
        # handler_table holds label references, which words_directive does
        # not produce — emit the directive rows directly.
        rows = []
        for start in range(0, self.num_handlers, 8):
            chunk = ", ".join(f"h{i}" for i in range(start, min(start + 8, self.num_handlers)))
            rows.append(f"    .word {chunk}")
        table = "handler_table:\n" + "\n".join(rows)
        data = join_sections(
            ".data",
            table,
            words_directive("stream", opcodes),
            words_directive("attrs", attrs),
        )
        return join_sections(text, handlers, helpers, aux_sub, warm_sub, drv_stop, data)
