"""fpppp analog: quantum-chemistry two-electron integrals.

SPEC89's fpppp computes electron-repulsion integrals with enormous straight-
line basic blocks and remarkably few branches — the paper's Figure 3 shows
floating-point codes at only ~5 percent dynamic branch instructions, and
fpppp is the extreme of that.  Its branches are mostly the small loops over
shell indices plus occasional symmetry short-circuits.

The analog reproduces those demographics: a four-deep shell loop nest whose
body is one long unrolled arithmetic block (no branches inside), a symmetry
test that skips redundant quadruplets (a deterministic function of the loop
indices, so its outcome pattern is periodic and learnable), and a leaf call
per accepted quadruplet.
"""

from __future__ import annotations

from repro.workloads._asmlib import aux_phase, bounded_driver, join_sections
from repro.workloads.base import DataSet, FLOATING_POINT, Workload, register_workload


def _unrolled_block(terms: int) -> str:
    """A long straight-line arithmetic block (the fpppp signature)."""
    lines = []
    for index in range(terms):
        a = 4 + (index % 4)          # r4..r7 accumulators
        lines.append(f"    mul  r12, r8, r{a}")
        lines.append(f"    addi r12, r12, {index + 1}")
        lines.append(f"    add  r{a}, r{a}, r12")
        lines.append("    srai r12, r12, 3")
        lines.append(f"    xor  r9, r9, r12")
    return "\n".join(lines)


@register_workload
class Fpppp(Workload):
    """Shell-quadruplet integral loops with huge basic blocks."""

    name = "fpppp"
    category = FLOATING_POINT
    version = 2
    datasets = {
        # Table 3: no alternative data set applicable (testing set natoms).
        "test": DataSet("natoms", {"shells": 8, "terms": 24}),
    }

    def build_source(self, dataset: DataSet) -> str:
        shells = dataset.param("shells", 8)
        terms = dataset.param("terms", 24)
        # Cold-branch tail (Table 1 lists 653 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(534, seed=653, label_prefix="fpaux", call_period_log2=4, groups=16, seed_state=False)
        warm_init, warm_call, warm_sub = aux_phase(96, seed=654, label_prefix="fpwarm", call_period_log2=1, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r15", label_prefix="fpdrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, {shells}
    li   r4, 1
    li   r5, 2
    li   r6, 3
    li   r7, 4
    li   r9, 0

pass:
{drv_check}
    li   r2, 0              ; shell i
si:
    li   r3, 0              ; shell j
sj:
{warm_call}
{aux_call}
    li   r10, 0             ; shell k
sk:
    li   r11, 0             ; shell l
sl:
    ; symmetry screen: skip the rare fully-symmetric quadruplets — a
    ; deterministic, strongly-biased, exactly periodic branch (real fpppp
    ; screens redundant integrals the same way).
    add  r8, r2, r3
    add  r13, r10, r11
    add  r13, r8, r13
    andi r13, r13, 7
    beqz r13, skip_quad
    addi r8, r8, 2          ; seed value for the block
    bsr  integral
skip_quad:
    addi r11, r11, 1
    blt  r11, r20, sl
    addi r10, r10, 1
    blt  r10, r20, sk
    addi r3, r3, 1
    blt  r3, r20, sj
    addi r2, r2, 1
    blt  r2, r20, si
    br   pass

integral:
{_unrolled_block(terms)}
    rts

{aux_sub}

{warm_sub}

{drv_stop}
"""
        return join_sections(text)
