"""espresso analog: cube containment scans.

SPEC89's espresso minimises two-level logic: its inner loops test cubes
(bit-mask encoded product terms) for containment and intersection against a
cover list.  Each scan walks the same cover, so a given containment branch
sees outcomes determined by the fixed cube list — irregular-looking but
exactly repeating across scans, which rewards pattern-history prediction.

The analog keeps a fixed cover of mask pairs and repeatedly scans it with a
rotating probe cube: per cube, a containment test, an intersection test,
and a literal-count loop with data-dependent trips.  The "cps" training and
"bca" testing sets (Table 3) are different covers — different sizes,
densities and branch tendencies.
"""

from __future__ import annotations

import random

from repro.workloads._asmlib import aux_phase, bounded_driver, join_sections, words_directive
from repro.workloads.base import DataSet, INTEGER, Workload, register_workload


def _cover(seed: int, cubes: int, density: float):
    """A list of (mask, care) words; density controls set-bit probability."""
    rng = random.Random(seed)
    masks = []
    cares = []
    for _ in range(cubes):
        mask = 0
        care = 0
        for bit in range(16):
            if rng.random() < density:
                care |= 1 << bit
                if rng.random() < 0.5:
                    mask |= 1 << bit
        masks.append(mask)
        cares.append(care | 1)  # at least one care bit
    return masks, cares


@register_workload
class Espresso(Workload):
    """Containment/intersection scans of a probe cube against a cover."""

    name = "espresso"
    category = INTEGER
    version = 2
    datasets = {
        # Both inputs are PLA covers of the same family: the training cover
        # ("cps") shares most of its cubes with the testing cover ("bca")
        # but swaps a handful, shifting per-pattern statistics by a little —
        # Figure 8 shows espresso degrading by about one percent.
        # Both covers come from the same PLA family; the inputs differ in
        # the probe phase the minimiser starts from (different cube order in
        # the input file), so per-pattern statistics shift modestly — the
        # paper's Figure 8 shows espresso degrading by about one percent.
        "test": DataSet("bca", {"seed": 2741, "cubes": 11, "density_pct": 55, "swap": 0, "probe_init": 5}),
        "train": DataSet("cps", {"seed": 9127, "cubes": 11, "density_pct": 55, "swap": 1, "probe_init": 5}),
    }

    def build_source(self, dataset: DataSet) -> str:
        cubes = dataset.param("cubes", 11)
        density = dataset.param("density_pct", 55) / 100.0
        swap = dataset.param("swap", 0)
        probe_init = dataset.param("probe_init", 5)
        # One shared base cover; the training set swaps a few cubes out.
        masks, cares = _cover(4391, cubes, density)
        if swap:
            alt_masks, alt_cares = _cover(dataset.param("seed", 9127), swap, density)
            for offset in range(swap):
                position = (offset * 4) % cubes
                masks[position] = alt_masks[offset]
                cares[position] = alt_cares[offset]
        # Cold-branch tail (Table 1 lists 556 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(429, seed=556, label_prefix="esaux", call_period_log2=4, groups=16, seed_state=False)
        warm_init, warm_call, warm_sub = aux_phase(96, seed=557, label_prefix="eswarm", call_period_log2=3, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r18", label_prefix="esdrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, masks
    li   r21, cares
    li   r22, {probe_init}  ; probe cube (rotates each full scan)
    li   r19, 0             ; cover statistics accumulator

scan:
{drv_check}
{aux_call}
{warm_call}
    li   r2, 0              ; cube index
cube:
    shli r3, r2, 2
    add  r4, r3, r20
    ld   r5, 0(r4)          ; cube mask
    add  r4, r3, r21
    ld   r6, 0(r4)          ; cube care set

    ; containment: probe & care == mask & care ?
    and  r7, r22, r6
    and  r8, r5, r6
    bne  r7, r8, not_contained
    addi r19, r19, 1        ; contained: count it
    br   isect
not_contained:
    ; distance check: if they differ in exactly the low literal, still close
    xor  r9, r7, r8
    andi r10, r9, 1
    beqz r10, isect
    addi r19, r19, -1
isect:
    ; intersection emptiness: any shared care bit with equal value?
    and  r11, r22, r5
    beqz r11, next_cube

    ; literal-count loop: count set bits of the intersection (the add is
    ; branchless, as compilers emit it; the trip count is data-dependent)
    mov  r12, r11
bits:
    andi r13, r12, 1
    add  r19, r19, r13
    shri r12, r12, 1
    bnez r12, bits
next_cube:
    addi r2, r2, 1
    li   r3, {cubes}
    blt  r2, r3, cube

    ; swap the probe's halves so scans cycle with period two
    shli r14, r22, 8
    shri r15, r22, 8
    or   r22, r14, r15
    andi r22, r22, 65535
    bnez r22, scan
    li   r22, {probe_init}  ; never let the probe collapse to zero
    br   scan

{aux_sub}

{warm_sub}

{drv_stop}
"""
        data = join_sections(
            ".data",
            words_directive("masks", masks),
            words_directive("cares", cares),
        )
        return join_sections(text, data)
