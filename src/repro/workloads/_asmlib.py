"""Shared assembly-generation helpers for the workload programs.

Workload generators build programs from Python, so repeated idioms live here:
deterministic data tables, the linear-congruential random step, and the
"pattern scanner" kernel that gives a branch site an exact periodic outcome
sequence (the behaviour class where two-level prediction decisively beats
per-branch counters, and the reason the analogs reproduce the paper's
orderings).
"""

from __future__ import annotations

import random
from typing import List, Sequence


def words_directive(label: str, values: Sequence[int], per_line: int = 12) -> str:
    """Render a labelled ``.word`` table, wrapping long rows."""
    lines = [f"{label}:"]
    values = [value & 0xFFFFFFFF for value in values]
    if not values:
        return f"{label}: .word 0"
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(value) for value in values[start : start + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def random_words(seed: int, count: int, lo: int = 0, hi: int = 0x7FFFFFFF) -> List[int]:
    """Deterministic table of pseudo-random words."""
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(count)]


def random_bits(seed: int, count: int, taken_probability: float = 0.5) -> List[int]:
    """Deterministic table of 0/1 words with the given bias."""
    rng = random.Random(seed)
    return [1 if rng.random() < taken_probability else 0 for _ in range(count)]


def lcg_step(state_reg: str, tmp_reg: str) -> str:
    """Assembly for one step of a 31-bit linear congruential generator:
    ``state = (state * 1103515245 + 12345) & 0x7FFFFFFF``.

    Clobbers ``tmp_reg``; leaves the new state in ``state_reg``.
    """
    return "\n".join(
        [
            f"    li   {tmp_reg}, 1103515245",
            f"    mul  {state_reg}, {state_reg}, {tmp_reg}",
            f"    addi {state_reg}, {state_reg}, 12345",
            f"    shli {state_reg}, {state_reg}, 1",
            f"    shri {state_reg}, {state_reg}, 1",
        ]
    )


def scanner_kernel(
    label_prefix: str,
    table_label: str,
    table_length: int,
    index_reg: str = "r24",
    base_reg: str = "r25",
    value_reg: str = "r26",
    work_reg: str = "r27",
) -> str:
    """A loop body fragment that reads the next word of a cyclic table.

    Emits code that loads ``table[index]`` into ``value_reg`` and advances
    ``index`` modulo ``table_length``.  Callers branch on bits/values of
    ``value_reg``; since the table is fixed and rescanned cyclically, each
    such branch site sees an exactly periodic outcome pattern of period
    ``table_length``.

    The caller must have loaded ``base_reg`` with the table address and
    zeroed ``index_reg`` beforehand.
    """
    return "\n".join(
        [
            f"{label_prefix}_fetch:",
            f"    shli {work_reg}, {index_reg}, 2",
            f"    add  {work_reg}, {work_reg}, {base_reg}",
            f"    ld   {value_reg}, 0({work_reg})",
            f"    addi {index_reg}, {index_reg}, 1",
            f"    li   {work_reg}, {table_length}",
            f"    blt  {index_reg}, {work_reg}, {label_prefix}_nowrap",
            f"    li   {index_reg}, 0",
            f"{label_prefix}_nowrap:",
        ]
    )


def periodic_pattern_words(seed: int, period: int, taken_probability: float = 0.6) -> List[int]:
    """A short 0/1 pattern for one scanner table (one word per position)."""
    rng = random.Random(seed)
    pattern = [1 if rng.random() < taken_probability else 0 for _ in range(period)]
    # Guarantee the pattern is mixed (monotone patterns are trivially
    # predictable by every scheme, which would not exercise anything).
    if all(pattern) or not any(pattern):
        pattern[rng.randrange(period)] ^= 1
    return pattern


def aux_phase(
    n_sites: int,
    seed: int,
    label_prefix: str = "aux",
    call_period_log2: int = 0,
    groups: int = 8,
    counter_reg: str = "r28",
    seed_state: bool = True,
) -> "tuple[str, str, str]":
    """Generate a cold-branch auxiliary phase.

    Real programs execute a long tail of static branches at low frequency
    (initialisation, bookkeeping, error paths); Table 1 counts hundreds to
    thousands of static conditional branches per benchmark even though a few
    hot loops dominate dynamically.  The hot kernels of the analogs alone
    would leave a 256-entry AHRT unpressured, hiding the Figure 6 effects.

    The sites are partitioned into ``groups`` subroutines visited round-robin
    — one group per invocation — so each call touches only ``n_sites /
    groups`` table entries (a burst that executed every site at once would
    wipe a finite HRT wholesale, which is not how real cold code behaves).

    Returns ``(init_text, call_text, subroutine_text)``:

    * ``init_text`` goes once at program start (sets up the phase state in
      ``r16`` and the call counter in ``counter_reg`` — ``r16``/``r17`` and
      the counter registers are reserved for these phases across all
      workloads; a second phase instance (e.g. a warm, medium-frequency
      population alongside the cold tail) must use a different counter).
    * ``call_text`` goes at a low-frequency point of the kernel; it invokes
      the phase every ``2 ** call_period_log2`` visits (``r29``/``r17`` are
      scratch).  The call site must not hold a live return address in ``r1``.

    When a program stacks two phase instances (cold + warm), only the last
    one's ``li r16`` survives — pass ``seed_state=False`` on the earlier
    instances so their init omits the overwritten (dead) seed store.  The
    site branch outcomes depend only on ``r16 mod 16`` (every site mask is
    at most 15) and every update of ``r16`` is additive, so which instance
    seeds the state shifts outcomes but never changes their structure.
    * ``subroutine_text`` holds the group bodies: generated branch sites
      whose outcomes follow short deterministic cycles of the evolving state
      register — partially learnable, like real cold branches.
    """
    rng = random.Random(seed)
    groups = max(1, min(groups, n_sites))
    lines: List[str] = []
    for group in range(groups):
        lines.append(f"{label_prefix}_g{group}:")
        lines.append(f"    addi r16, r16, {1 + 2 * group}")
        group_sites = range(group, n_sites, groups)
        for site in group_sites:
            increment = rng.choice((1, 3, 5, 7, 9, 11))
            mask = rng.choice((1, 3, 3, 7, 7, 15))
            sense = rng.choice(("beqz", "bnez"))
            lines.append(f"    addi r16, r16, {increment}")
            lines.append(f"    andi r17, r16, {mask}")
            lines.append(f"    {sense} r17, {label_prefix}_s{site}")
            # Not-taken path: nudge the state by a multiple of 16, which no
            # site mask (all <= 15) can observe — outcome sequences are
            # untouched, but fall-through paths do real, live work.
            lines.append("    addi r16, r16, 16")
            lines.append(f"{label_prefix}_s{site}:")
        lines.append("    rts")
    subroutine = "\n".join(lines)

    init_lines = []
    if seed_state:
        init_lines.append(f"    li   r16, {seed & 0x3FFF}")
    init_lines.append(f"    li   {counter_reg}, 0")
    init_text = "\n".join(init_lines)

    call_lines = [f"    addi {counter_reg}, {counter_reg}, 1"]
    skip = f"{label_prefix}_skip"
    if call_period_log2 > 0:
        call_lines += [
            f"    andi r29, {counter_reg}, {(1 << call_period_log2) - 1}",
            f"    bnez r29, {skip}",
        ]
    # Select the group from the counter bits above the period bits with a
    # compare ladder (cheap, and itself a set of perfectly periodic
    # branches).  A single group needs no selector at all.
    if groups > 1:
        call_lines += [
            f"    shri r29, {counter_reg}, {call_period_log2}",
            f"    andi r29, r29, {groups - 1}",
        ]
    for group in range(groups - 1):
        call_lines += [
            f"    li   r17, {group}",
            f"    bne  r29, r17, {label_prefix}_n{group}",
            f"    bsr  {label_prefix}_g{group}",
            f"    br   {skip}",
            f"{label_prefix}_n{group}:",
        ]
    call_lines += [
        f"    bsr  {label_prefix}_g{groups - 1}",
        f"{skip}:",
    ]
    return init_text, "\n".join(call_lines), subroutine


def bounded_driver(
    reg: str,
    label_prefix: str = "drv",
    bound: int = 1 << 30,
) -> "tuple[str, str, str]":
    """A termination bound for a workload's top-level driver loop.

    The analogs are sized externally (the tracer stops at a branch budget),
    but a loop with *no* exit is statically an infinite loop — the R006 lint
    rule, and a real hazard if a budget is ever mis-wired.  This gives the
    driver an architectural exit that never fires at realistic budgets
    (``bound`` iterations is orders of magnitude past the paper's 20M
    conditional branches), while staying almost invisible dynamically: the
    check branch is forward and never taken, so every predictor — including
    static BTFN — predicts it perfectly.

    Returns ``(init_text, check_text, stop_text)``: ``init_text`` goes at
    program start, ``check_text`` once inside the driver loop, and
    ``stop_text`` (the ``halt`` landing pad) at the end of the text section,
    which also satisfies the R002 no-fallthrough-off-text rule.
    """
    init_text = f"    li   {reg}, {bound}"
    check_text = "\n".join(
        [
            f"    addi {reg}, {reg}, -1",
            f"    beqz {reg}, {label_prefix}_stop",
        ]
    )
    stop_text = "\n".join([f"{label_prefix}_stop:", "    halt"])
    return init_text, check_text, stop_text


def join_sections(*sections: str) -> str:
    """Join program fragments with blank lines, dropping empties."""
    return "\n\n".join(section for section in sections if section.strip())
