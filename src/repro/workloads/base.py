"""Workload framework: SPEC-analog programs, data sets, and trace caching.

Each workload is a program *generator*: given a :class:`DataSet` it emits
assembly source for the repro ISA, which the CPU executes to produce the
branch trace.  Data sets model the paper's Table 3 — a workload may define a
``train`` data set with *different branch tendencies* from its default
``test`` set, which is what exposes Static Training's weakness in Figure 8.

Traces are cached at two levels: an in-process dict (sweeps reuse the same
trace across dozens of predictor configurations) and an optional on-disk
cache in the repro binary trace format (CPU execution is the expensive
stage).  Cache keys include a per-workload ``version`` so editing a program
generator invalidates stale traces.
"""

from __future__ import annotations

import hashlib
import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Type

from repro.errors import WorkloadError
from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.trace.columnar import PackedTrace, pack_records, read_packed_trace
from repro.trace.encoding import write_trace
from repro.trace.record import BranchRecord, InstructionMix

#: default per-benchmark conditional-branch cap for library-level runs; the
#: paper uses 20 million, which a pure-Python interpreter reproduces only via
#: the CLI's --scale flag.
DEFAULT_CONDITIONAL_BRANCHES = 50_000

INTEGER = "integer"
FLOATING_POINT = "fp"


@dataclass(frozen=True)
class DataSet:
    """A named input for a workload (Table 3 rows).

    ``params`` feed the program generator (seeds, sizes, input tables), so
    two data sets of one workload produce genuinely different branch
    behaviour, not just different lengths.
    """

    name: str
    params: Dict[str, int] = field(default_factory=dict)

    def param(self, key: str, default: int) -> int:
        return self.params.get(key, default)


@dataclass
class WorkloadTrace:
    """A generated trace plus the statistics the figures need.

    The trace is held as the ordinary record list; :meth:`packed` derives
    (and caches) the columnar :class:`~repro.trace.columnar.PackedTrace`
    twin that the simulation fast path consumes.
    """

    records: List[BranchRecord]
    mix: InstructionMix
    _packed: Optional[PackedTrace] = field(default=None, repr=False, compare=False)

    def packed(self) -> PackedTrace:
        """The columnar form of :attr:`records` (packed once, then cached)."""
        if self._packed is None:
            self._packed = pack_records(self.records)
        return self._packed


class Workload(ABC):
    """A SPEC-analog benchmark program.

    Subclasses define ``name``, ``category`` (integer / fp), their data sets
    and :meth:`build_source`.  ``version`` must be bumped whenever the
    generated program changes, to invalidate disk-cached traces.
    """

    name: str = ""
    category: str = INTEGER
    version: int = 1

    #: data sets by role; every workload has "test", some also have "train"
    #: (Table 3's five benchmarks with applicable alternative data sets).
    datasets: Dict[str, DataSet] = {}

    @abstractmethod
    def build_source(self, dataset: DataSet) -> str:
        """Emit the assembly source for the given data set."""

    # ------------------------------------------------------------------
    def dataset(self, role: str = "test") -> DataSet:
        try:
            return self.datasets[role]
        except KeyError as exc:
            raise WorkloadError(
                f"workload {self.name!r} has no {role!r} data set"
                f" (available: {sorted(self.datasets)})"
            ) from exc

    @property
    def has_training_set(self) -> bool:
        """Whether Table 3 lists an applicable alternative data set."""
        return "train" in self.datasets

    def generate(
        self, dataset: Optional[DataSet] = None, max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES
    ) -> WorkloadTrace:
        """Assemble and execute the program, capped at ``max_conditional``
        conditional branches (the paper's per-benchmark simulation cap)."""
        chosen = dataset if dataset is not None else self.dataset("test")
        program = assemble(self.build_source(chosen))
        cpu = CPU(program)
        result = cpu.run(max_conditional_branches=max_conditional)
        return WorkloadTrace(records=result.branch_records, mix=result.mix)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise WorkloadError(f"workload class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def workload_names() -> List[str]:
    """All registered workload names, in registration (paper) order."""
    return list(_REGISTRY)


def get_workload(name: str) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        return _REGISTRY[name]()
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


# ----------------------------------------------------------------------
# trace cache
# ----------------------------------------------------------------------
class TraceCache:
    """Two-level (memory + optional disk) cache of workload traces."""

    def __init__(self, disk_dir: "Optional[Path | str]" = None):
        self._memory: Dict[Tuple[str, str, int, int], WorkloadTrace] = {}
        self.disk_dir = Path(disk_dir).expanduser() if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    def with_disk(self, disk_dir: "Path | str") -> "TraceCache":
        """A cache on ``disk_dir`` sharing this cache's in-memory store.

        Used by the parallel sweep layer when the active cache is
        memory-only: traces already generated stay reusable, while the disk
        copy becomes visible to worker processes.
        """
        cache = TraceCache(disk_dir=disk_dir)
        cache._memory = self._memory
        return cache

    def get(
        self,
        workload: Workload,
        role: str = "test",
        max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    ) -> WorkloadTrace:
        """Fetch (or generate and cache) a workload trace."""
        key = (workload.name, role, max_conditional, workload.version)
        cached = self._memory.get(key)
        if cached is not None:
            return cached

        trace = self._load_disk(key)
        if trace is None:
            trace = workload.generate(workload.dataset(role), max_conditional)
            self._store_disk(key, trace)
        self._memory[key] = trace
        return trace

    def clear_memory(self) -> None:
        self._memory.clear()

    def ensure_on_disk(
        self,
        workload: Workload,
        role: str = "test",
        max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    ) -> None:
        """Guarantee the trace exists in the disk layer (generating at most
        once); requires a cache constructed with ``disk_dir``.

        The parallel sweep calls this from the coordinating process before
        fanning out, so every worker finds each benchmark's trace on disk
        instead of re-running the ISA simulator.
        """
        if self.disk_dir is None:
            raise WorkloadError("ensure_on_disk requires a disk-backed TraceCache")
        key = (workload.name, role, max_conditional, workload.version)
        trace_path, meta_path = self._paths(key)
        if trace_path.exists() and meta_path.exists():
            return
        trace = self.get(workload, role, max_conditional)
        if not (trace_path.exists() and meta_path.exists()):  # get() may have stored it
            self._store_disk(key, trace)

    # -- disk layer ----------------------------------------------------
    def _paths(self, key: Tuple[str, str, int, int]) -> Tuple[Path, Path]:
        assert self.disk_dir is not None
        digest = hashlib.sha1("/".join(map(str, key)).encode()).hexdigest()[:12]
        stem = f"{key[0]}-{key[1]}-{key[2]}-v{key[3]}-{digest}"
        return self.disk_dir / f"{stem}.trc", self.disk_dir / f"{stem}.json"

    def _load_disk(self, key: Tuple[str, str, int, int]) -> Optional[WorkloadTrace]:
        if self.disk_dir is None:
            return None
        trace_path, meta_path = self._paths(key)
        if not (trace_path.exists() and meta_path.exists()):
            return None
        try:
            packed = read_packed_trace(trace_path)
            meta = json.loads(meta_path.read_text())
            mix = InstructionMix(**meta["mix"])
        except Exception:
            return None  # corrupt cache entries regenerate silently
        trace = WorkloadTrace(records=packed.to_records(), mix=mix)
        trace._packed = packed  # the columnar form falls out of the read for free
        return trace

    def _store_disk(self, key: Tuple[str, str, int, int], trace: WorkloadTrace) -> None:
        if self.disk_dir is None:
            return
        trace_path, meta_path = self._paths(key)
        meta = {
            "mix": {
                "conditional": trace.mix.conditional,
                "returns": trace.mix.returns,
                "imm_unconditional": trace.mix.imm_unconditional,
                "reg_unconditional": trace.mix.reg_unconditional,
                "non_branch": trace.mix.non_branch,
            }
        }
        try:
            write_trace(trace.records, trace_path)
            meta_path.write_text(json.dumps(meta))
        except OSError:
            # a read-only or full disk must not break the run; the trace
            # simply stays memory-only
            for path in (trace_path, meta_path):
                try:
                    path.unlink()
                except OSError:
                    pass


def default_cache_dir() -> Optional[Path]:
    """The disk directory the default cache uses.

    Resolution order: ``REPRO_CACHE_DIR`` (or the legacy
    ``REPRO_TRACE_CACHE``) when set — an *empty* value disables the disk
    layer entirely — otherwise ``$XDG_CACHE_HOME/repro-traces``, defaulting
    to ``~/.cache/repro-traces``.
    """
    for var in ("REPRO_CACHE_DIR", "REPRO_TRACE_CACHE"):
        if var in os.environ:
            value = os.environ[var]
            return Path(value).expanduser() if value else None
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return root / "repro-traces"


def default_cache() -> TraceCache:
    """The shared process-wide cache, disk-backed at :func:`default_cache_dir`.

    Falls back to a memory-only cache when the directory cannot be created
    (read-only home, sandboxed environments).
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        try:
            _DEFAULT_CACHE = TraceCache(disk_dir=default_cache_dir())
        except OSError:
            _DEFAULT_CACHE = TraceCache(disk_dir=None)
    return _DEFAULT_CACHE


_DEFAULT_CACHE: Optional[TraceCache] = None
