"""Workload framework: SPEC-analog programs, data sets, and trace caching.

Each workload is a program *generator*: given a :class:`DataSet` it emits
assembly source for the repro ISA, which the CPU executes to produce the
branch trace.  Data sets model the paper's Table 3 — a workload may define a
``train`` data set with *different branch tendencies* from its default
``test`` set, which is what exposes Static Training's weakness in Figure 8.

Traces are cached at two levels: an in-process dict (sweeps reuse the same
trace across dozens of predictor configurations) and an optional on-disk
:class:`~repro.trace.store.TraceStore` of memory-mapped shards (CPU
execution is the expensive stage).  Store keys are content-addressed over
every generation ingredient — workload name, role, data-set parameters,
workload ``version``, scale — so editing a program generator *or* a data
set invalidates stale traces.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Type, Union

from repro.errors import ConfigError, WorkloadError
from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.trace.columnar import PackedTrace, pack_records
from repro.trace.record import BranchRecord, InstructionMix
from repro.trace.store import TraceStore, content_key

#: default per-benchmark conditional-branch cap for library-level runs; the
#: paper uses 20 million, which a pure-Python interpreter reproduces only via
#: the CLI's --scale flag.
DEFAULT_CONDITIONAL_BRANCHES = 50_000

#: the paper's per-benchmark simulation length (section 5: twenty million
#: conditional branches per benchmark) — the ``--scale paper`` preset.
PAPER_CONDITIONAL_BRANCHES = 20_000_000


def parse_scale(value: Union[str, int]) -> int:
    """Parse a ``--scale`` value: an integer cap or the ``paper`` preset.

    Accepted anywhere a conditional-branch cap is read (CLI flags, the
    ``REPRO_BENCH_SCALE`` environment knob), so ``--scale paper`` means the
    paper's 20M-branch runs without anyone memorising the constant.
    """
    if isinstance(value, int):
        scale = value
    else:
        text = str(value).strip().lower()
        if text == "paper":
            return PAPER_CONDITIONAL_BRANCHES
        try:
            scale = int(text)
        except ValueError as exc:
            raise ConfigError(
                f"invalid scale {value!r}: expected an integer or 'paper'"
            ) from exc
    if scale < 1:
        raise ConfigError(f"scale must be >= 1, got {scale}")
    return scale

INTEGER = "integer"
FLOATING_POINT = "fp"


@dataclass(frozen=True)
class DataSet:
    """A named input for a workload (Table 3 rows).

    ``params`` feed the program generator (seeds, sizes, input tables), so
    two data sets of one workload produce genuinely different branch
    behaviour, not just different lengths.
    """

    name: str
    params: Dict[str, int] = field(default_factory=dict)

    def param(self, key: str, default: int) -> int:
        return self.params.get(key, default)


class WorkloadTrace:
    """A generated trace plus the statistics the figures need.

    The trace lives in whichever representation it was born with — the
    ordinary record list from a fresh generation, or the columnar
    :class:`~repro.trace.columnar.PackedTrace` from a warm store load
    (possibly memory-mapped) — and derives the other form lazily.  At
    paper scale the distinction matters: a 20M-record trace loads from the
    store in milliseconds as columns, and boxing it into twenty million
    :class:`BranchRecord` tuples only happens if something actually reads
    :attr:`records`.  Prefer :meth:`iter_records` for one-pass consumers.
    """

    def __init__(
        self,
        records: Optional[List[BranchRecord]] = None,
        mix: Optional[InstructionMix] = None,
        _packed: Optional[PackedTrace] = None,
    ):
        if records is None and _packed is None:
            raise ValueError("WorkloadTrace needs records or a packed trace")
        if mix is None:
            raise ValueError("WorkloadTrace needs an instruction mix")
        self._records = records
        self.mix = mix
        self._packed = _packed

    @classmethod
    def from_packed(cls, packed: PackedTrace, mix: InstructionMix) -> "WorkloadTrace":
        """Wrap an already-columnar trace without materialising records."""
        return cls(records=None, mix=mix, _packed=packed)

    @property
    def records(self) -> List[BranchRecord]:
        """The record-list form (materialised from the columns on first use)."""
        if self._records is None:
            assert self._packed is not None
            self._records = self._packed.to_records()
        return self._records

    def iter_records(self):
        """Iterate records without forcing the boxed list into memory."""
        if self._records is not None:
            return iter(self._records)
        assert self._packed is not None
        return iter(self._packed)

    def packed(self) -> PackedTrace:
        """The columnar form of the trace (packed once, then cached)."""
        if self._packed is None:
            assert self._records is not None
            self._packed = pack_records(self._records)
        return self._packed


class Workload(ABC):
    """A SPEC-analog benchmark program.

    Subclasses define ``name``, ``category`` (integer / fp), their data sets
    and :meth:`build_source`.  ``version`` must be bumped whenever the
    generated program changes, to invalidate disk-cached traces.
    """

    name: str = ""
    category: str = INTEGER
    version: int = 1

    #: data sets by role; every workload has "test", some also have "train"
    #: (Table 3's five benchmarks with applicable alternative data sets).
    datasets: Dict[str, DataSet] = {}

    @abstractmethod
    def build_source(self, dataset: DataSet) -> str:
        """Emit the assembly source for the given data set."""

    # ------------------------------------------------------------------
    def dataset(self, role: str = "test") -> DataSet:
        try:
            return self.datasets[role]
        except KeyError as exc:
            raise WorkloadError(
                f"workload {self.name!r} has no {role!r} data set"
                f" (available: {sorted(self.datasets)})"
            ) from exc

    @property
    def has_training_set(self) -> bool:
        """Whether Table 3 lists an applicable alternative data set."""
        return "train" in self.datasets

    def generate(
        self, dataset: Optional[DataSet] = None, max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES
    ) -> WorkloadTrace:
        """Assemble and execute the program, capped at ``max_conditional``
        conditional branches (the paper's per-benchmark simulation cap)."""
        chosen = dataset if dataset is not None else self.dataset("test")
        program = assemble(self.build_source(chosen))
        cpu = CPU(program)
        result = cpu.run(max_conditional_branches=max_conditional)
        return WorkloadTrace(records=result.branch_records, mix=result.mix)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise WorkloadError(f"workload class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def workload_names() -> List[str]:
    """All registered workload names, in registration (paper) order."""
    return list(_REGISTRY)


def get_workload(name: str) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        return _REGISTRY[name]()
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


# ----------------------------------------------------------------------
# trace cache
# ----------------------------------------------------------------------
class TraceCache:
    """Two-level (memory + optional shard-store) cache of workload traces."""

    def __init__(self, disk_dir: "Optional[Path | str]" = None):
        self._memory: Dict[Tuple[str, str, int, int], WorkloadTrace] = {}
        self.disk_dir = Path(disk_dir).expanduser() if disk_dir is not None else None
        self.store: Optional[TraceStore] = (
            TraceStore(self.disk_dir) if self.disk_dir is not None else None
        )

    def with_disk(self, disk_dir: "Path | str") -> "TraceCache":
        """A cache on ``disk_dir`` sharing this cache's in-memory store.

        Used by the parallel sweep layer when the active cache is
        memory-only: traces already generated stay reusable, while the disk
        copy becomes visible to worker processes.
        """
        cache = TraceCache(disk_dir=disk_dir)
        cache._memory = self._memory
        return cache

    def _stem(
        self, workload: Workload, role: str, max_conditional: int
    ) -> Tuple[str, Dict[str, Any]]:
        """The store's content-addressed (stem, key dict) for one trace."""
        return content_key(
            workload.name,
            role,
            max_conditional,
            workload.version,
            workload.dataset(role).params,
        )

    def stem_for(
        self, workload: Workload, role: str, max_conditional: int
    ) -> str:
        """The content-addressed store stem identifying one trace.

        The stem digests the workload name, role, cap, generator version
        and dataset parameters, so it is stable across processes and
        changes whenever the trace's content would — which makes it the
        trace half of a sweep-result cache key
        (:mod:`repro.sim.result_cache`)."""
        return self._stem(workload, role, max_conditional)[0]

    def get(
        self,
        workload: Workload,
        role: str = "test",
        max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    ) -> WorkloadTrace:
        """Fetch (or generate and cache) a workload trace."""
        key = (workload.name, role, max_conditional, workload.version)
        cached = self._memory.get(key)
        if cached is not None:
            return cached

        trace = self._load_disk(workload, role, max_conditional)
        if trace is None:
            trace = workload.generate(workload.dataset(role), max_conditional)
            self._store_disk(workload, role, max_conditional, trace)
        self._memory[key] = trace
        return trace

    def clear_memory(self) -> None:
        self._memory.clear()

    def ensure_on_disk(
        self,
        workload: Workload,
        role: str = "test",
        max_conditional: int = DEFAULT_CONDITIONAL_BRANCHES,
    ) -> None:
        """Guarantee the trace exists in the disk layer (generating at most
        once); requires a cache constructed with ``disk_dir``.

        The parallel sweep calls this from the coordinating process before
        fanning out, so every worker finds each benchmark's trace on disk
        instead of re-running the ISA simulator.
        """
        if self.store is None:
            raise WorkloadError("ensure_on_disk requires a disk-backed TraceCache")
        stem, _key = self._stem(workload, role, max_conditional)
        if self.store.has(stem):
            return
        trace = self.get(workload, role, max_conditional)
        if not self.store.has(stem):  # get() may have stored it
            self._store_disk(workload, role, max_conditional, trace)

    # -- disk layer (shard store) --------------------------------------
    def _load_disk(
        self, workload: Workload, role: str, max_conditional: int
    ) -> Optional[WorkloadTrace]:
        if self.store is None:
            return None
        stem, _key = self._stem(workload, role, max_conditional)
        loaded = self.store.load(stem)
        if loaded is None:
            return None  # miss, or a corrupt shard regenerating silently
        packed, meta = loaded
        try:
            mix = InstructionMix(**meta["mix"])
        except (KeyError, TypeError):
            return None
        return WorkloadTrace.from_packed(packed, mix)

    def _store_disk(
        self,
        workload: Workload,
        role: str,
        max_conditional: int,
        trace: WorkloadTrace,
    ) -> None:
        if self.store is None:
            return
        stem, key = self._stem(workload, role, max_conditional)
        meta = {
            "key": key,
            "mix": {
                "conditional": trace.mix.conditional,
                "returns": trace.mix.returns,
                "imm_unconditional": trace.mix.imm_unconditional,
                "reg_unconditional": trace.mix.reg_unconditional,
                "non_branch": trace.mix.non_branch,
            },
        }
        try:
            self.store.store(stem, trace.packed(), meta)
        except OSError:
            # a read-only or full disk must not break the run; the trace
            # simply stays memory-only
            try:
                self.store.path_for(stem).unlink()
            except OSError:
                pass


def default_cache_dir() -> Optional[Path]:
    """The disk directory the default cache uses.

    Resolution order: ``REPRO_CACHE_DIR`` (or the legacy
    ``REPRO_TRACE_CACHE``) when set — an *empty* value disables the disk
    layer entirely — otherwise ``$XDG_CACHE_HOME/repro-traces``, defaulting
    to ``~/.cache/repro-traces``.
    """
    for var in ("REPRO_CACHE_DIR", "REPRO_TRACE_CACHE"):
        if var in os.environ:
            value = os.environ[var]
            return Path(value).expanduser() if value else None
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return root / "repro-traces"


def default_cache() -> TraceCache:
    """The shared process-wide cache, disk-backed at :func:`default_cache_dir`.

    Falls back to a memory-only cache when the directory cannot be created
    (read-only home, sandboxed environments).
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        try:
            _DEFAULT_CACHE = TraceCache(disk_dir=default_cache_dir())
        except OSError:
            _DEFAULT_CACHE = TraceCache(disk_dir=None)
    return _DEFAULT_CACHE


_DEFAULT_CACHE: Optional[TraceCache] = None
