"""spice2g6 analog: circuit simulation inner loop.

SPEC89's spice2g6 spends its time in Newton-iteration sweeps over the
circuit's element list: per element, a dispatch on device type, model
evaluation, and convergence checks.  Because the element list is fixed, the
dispatch branches see the *same* outcome sequence every iteration — a
classic periodic history pattern — while the convergence tests are
data-dependent early and settle as the solution converges.

The analog sweeps a fixed element table: a type-dispatch ladder (resistor /
capacitor / diode-like update rules), an update magnitude check per element,
and an outer convergence loop that restarts with a perturbed state when the
sweep converges (so the trace runs indefinitely).  The "short greycode.in"
training set (Table 3) uses a different element mix and tolerance.
"""

from __future__ import annotations

import random

from repro.workloads._asmlib import aux_phase, bounded_driver, join_sections, words_directive
from repro.workloads.base import DataSet, FLOATING_POINT, Workload, register_workload


def _element_tables(seed: int, count: int, type_weights: "tuple[int, int, int]"):
    """Element type codes (0/1/2) and parameter values.

    Types are sorted: circuit netlists list devices grouped by kind, so the
    dispatch branches see long runs rather than alternations.
    """
    rng = random.Random(seed)
    population = [0] * type_weights[0] + [1] * type_weights[1] + [2] * type_weights[2]
    types = sorted(rng.choice(population) for _ in range(count))
    params = [rng.randint(1, 500) for _ in range(count)]
    return types, params


@register_workload
class Spice2g6(Workload):
    """Newton sweeps over a fixed element list with type dispatch."""

    name = "spice2g6"
    category = FLOATING_POINT
    version = 2
    datasets = {
        # The training input is "short greycode.in" — the same circuit run
        # shorter: identical element list with a few devices swapped, same
        # tolerance.  FP degradation under Diff training stays tiny (Fig 8).
        # "short greycode.in" is the same circuit simulated from a different
        # operating point: identical element list, different initial bias
        # (perturbation phase), so only the data-dependent convergence
        # branches shift — the FP Diff degradation in Figure 8 is tiny.
        "test": DataSet("greycode", {"seed": 31337, "elements": 48, "w0": 5, "w1": 3, "w2": 2, "tol": 6, "swap": 0, "r18_init": 1}),
        "train": DataSet("short-greycode", {"seed": 555, "elements": 48, "w0": 5, "w1": 3, "w2": 2, "tol": 6, "swap": 0, "r18_init": 11}),
    }

    def build_source(self, dataset: DataSet) -> str:
        elements = dataset.param("elements", 23)
        weights = (dataset.param("w0", 5), dataset.param("w1", 3), dataset.param("w2", 2))
        tol = dataset.param("tol", 6)
        swap = dataset.param("swap", 0)
        r18_init = dataset.param("r18_init", 1)
        # One shared base circuit; the training input swaps a few devices.
        types, params = _element_tables(77717, elements, weights)
        if swap:
            alt_types, alt_params = _element_tables(dataset.param("seed", 555), swap, weights)
            for offset in range(swap):
                position = (offset * 5) % elements
                types[position] = alt_types[offset]
                params[position] = alt_params[offset]
        # Cold-branch tail (Table 1 lists 606 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(479, seed=606, label_prefix="spaux", call_period_log2=3, groups=16, seed_state=False)
        warm_init, warm_call, warm_sub = aux_phase(96, seed=607, label_prefix="spwarm", call_period_log2=0, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r15", label_prefix="spdrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, etypes
    li   r21, eparams
    li   r22, state
    li   r23, {tol}
    li   r18, {r18_init}    ; iteration counter (perturbation source)

newton:
{drv_check}
{aux_call}
{warm_call}
    li   r19, 0             ; non-converged element count
    li   r2, 0              ; element index
element:
    shli r3, r2, 2
    add  r4, r3, r20
    ld   r5, 0(r4)          ; device type (fixed list -> periodic branches)
    add  r4, r3, r21
    ld   r6, 0(r4)          ; parameter
    add  r7, r3, r22        ; &state[e]
    ld   r8, 0(r7)          ; current value

    beqz r5, dev_res
    li   r9, 1
    beq  r5, r9, dev_cap
    ; diode-like: exponential-ish update via squaring and clamp
    mul  r10, r8, r8
    srai r10, r10, 8
    add  r10, r10, r6
    li   r11, 100000
    ble  r10, r11, dio_ok
    li   r10, 100000
dio_ok:
    br   dev_done
dev_cap:
    ; capacitor: relax toward parameter
    add  r10, r8, r6
    srai r10, r10, 1
    br   dev_done
dev_res:
    ; resistor: linear update, three quarters of the way to the solution
    sub  r10, r6, r8
    srai r10, r10, 2
    sub  r10, r6, r10
dev_done:
    sub  r12, r10, r8       ; delta
    srai r13, r12, 31       ; branchless |delta|
    xor  r12, r12, r13
    sub  r12, r12, r13
    st   r10, 0(r7)
    ble  r12, r23, conv
    addi r19, r19, 1        ; not converged yet
conv:
    addi r2, r2, 1
    li   r3, {elements}
    blt  r2, r3, element

    bgt  r19, r0, newton    ; keep iterating while any element moves

    ; converged: perturb the state so the simulation continues (new "time point")
    addi r18, r18, 1
    li   r2, 0
perturb:
    shli r3, r2, 2
    add  r3, r3, r22
    ld   r4, 0(r3)
    mul  r5, r2, r18
    andi r5, r5, 63
    addi r5, r5, 64         ; uniform perturbation magnitude per time point
    add  r4, r4, r5
    st   r4, 0(r3)
    addi r2, r2, 1
    li   r3, {elements}
    blt  r2, r3, perturb
    br   newton

{aux_sub}

{warm_sub}

{drv_stop}
"""
        data = join_sections(
            ".data",
            words_directive("etypes", types),
            words_directive("eparams", params),
            f"state: .space {elements}",
        )
        return join_sections(text, data)
