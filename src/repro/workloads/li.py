"""li analog: one interpreter binary, two interpreted programs.

SPEC89's li is a Lisp *interpreter*; Table 3 trains it on towers of hanoi
and tests on eight queens.  Crucially the static branches belong to the
interpreter, which is identical across data sets — what changes is which
internal paths dominate.  That is why li's Static-Training degradation in
Figure 8 is visible (~5 percent) but not catastrophic: the history-pattern
statistics partially transfer.

The analog captures exactly that: a single binary containing both recursive
kernels (hanoi's regular binary recursion, queens' data-dependent
backtracking over a shared board), with a driver that interleaves them in a
data-set-controlled ratio — the hanoi input runs hanoi-dominant, the queens
input queens-dominant.  Both kernels use a software stack, producing the
heavy call/return traffic a Lisp interpreter generates.
"""

from __future__ import annotations

from repro.workloads._asmlib import aux_phase, bounded_driver, join_sections
from repro.workloads.base import DataSet, INTEGER, Workload, register_workload

_STACK_BASE = 0x0020_0000


@register_workload
class Li(Workload):
    """Interleaved hanoi / eight-queens recursion under one driver."""

    name = "li"
    category = INTEGER
    # v4: the driver reads hanoi_weight from the data segment instead of an
    # immediate (R009 flagged the baked-in weight as a provably one-sided
    # guard when it is 0).  One `li` became one `ld`, so every text address
    # is unchanged; the loaded word is written by nothing (queens stores at
    # board+4*row, row >= 0, and both kernels' other stores are sp-relative),
    # so r12 holds the same weight at the compare on every iteration and
    # every branch outcome is preserved exactly.  This is also the faithful
    # modeling: one interpreter text shared by both data sets, with the
    # interpreted-program mix coming from data.
    version = 4
    datasets = {
        # hanoi_weight of 8 driver slots run the hanoi kernel; the rest run
        # queens.  Table 3: train = towers of hanoi, test = eight queens.
        # The interpreter's own housekeeping runs under both inputs; the
        # hanoi-dominant training run still touches the generic machinery
        # the queens run exercises, which is why the paper's li degradation
        # is visible (~5 percent) but bounded.
        "test": DataSet("eight-queens", {"hanoi_weight": 0, "queens_start": 0}),
        "train": DataSet("towers-of-hanoi", {"hanoi_weight": 7, "queens_start": 3}),
    }

    def build_source(self, dataset: DataSet) -> str:
        hanoi_weight = dataset.param("hanoi_weight", 1)
        # Training explores only a shallow queens subtree (the hanoi driver
        # program still calls a little list machinery through the same
        # code), giving the partial pattern transfer behind li's bounded
        # Figure 8 degradation.
        queens_start = dataset.param("queens_start", 0)
        # Cold-branch tail (Table 1 lists 489 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(
            369, seed=489, label_prefix="liaux", call_period_log2=4, groups=16, seed_state=False
        )
        warm_init, warm_call, warm_sub = aux_phase(96, seed=490, label_prefix="liwarm", call_period_log2=4, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r15", label_prefix="lidrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   sp, {_STACK_BASE}
    li   r21, board
    li   r19, 0             ; work counter (moves + solutions)
    li   r14, 0             ; driver slot counter

driver:
{drv_check}
    addi r14, r14, 1
    andi r13, r14, 7
    ld   r12, -4(r21)       ; hanoi_weight, from the data set
    blt  r13, r12, run_hanoi
    li   r2, {queens_start} ; queens: starting row
    bsr  place
    br   driver
run_hanoi:
    li   r2, 7              ; hanoi: disc count
    bsr  hanoi
    br   driver

; ------------------------------------------------------------ eval stub
; A Lisp interpreter spends most branches in its own machinery (argument
; list walks, environment lookups) rather than in the interpreted program.
; This stub is that machinery: a short regular scan, called per recursion
; step by both kernels, diluting their program-specific branches just as
; the real interpreter does.
eval_step:
    addi sp, sp, -4
    st   r1, 0(sp)
{warm_call}
{aux_call}
    li   r11, 12            ; fixed cons-chain length
walk:
    addi r19, r19, 1
    addi r11, r11, -1
    bgt  r11, r0, walk
    ld   r1, 0(sp)
    addi sp, sp, 4
    rts

; ---------------------------------------------------------------- hanoi
hanoi:                      ; argument: disc count in r2
    bnez r2, h_rec
    rts
h_rec:
    addi sp, sp, -8
    st   r1, 0(sp)
    st   r2, 4(sp)
    bsr  eval_step          ; interpreter overhead per node
    ld   r2, 4(sp)
    addi r2, r2, -1
    bsr  hanoi              ; move n-1 to spare
    ld   r2, 4(sp)
    addi r19, r19, 1        ; move largest disc
    addi r2, r2, -1
    bsr  hanoi              ; move n-1 onto it
    ld   r1, 0(sp)
    addi sp, sp, 8
    rts

; ---------------------------------------------------------------- queens
place:                      ; argument: row in r2
    li   r3, 5              ; board size (5-queens: short, learnable tree)
    beq  r2, r3, found
    addi sp, sp, -8
    st   r1, 0(sp)
    st   r2, 4(sp)
    bsr  eval_step          ; interpreter overhead per node
    ld   r1, 0(sp)
    ld   r2, 4(sp)
    addi sp, sp, 8
    li   r4, 0              ; candidate column
try_col:
    ; safety scan against all previously placed rows
    li   r5, 0
safe_loop:
    bge  r5, r2, safe
    ; environment-lookup walk: the interpreter machinery executed per
    ; safety probe (regular, short-period — dominates like real eval)
    li   r11, 6
env_walk:
    addi r19, r19, 1
    addi r11, r11, -1
    bgt  r11, r0, env_walk
    shli r6, r5, 2
    add  r6, r6, r21
    ld   r7, 0(r6)          ; placed column
    bne  r7, r4, col_ok     ; usually a different column (taken)
    br   unsafe
col_ok:
    sub  r8, r7, r4
    bge  r8, r0, abs_ok
    sub  r8, r0, r8
abs_ok:
    sub  r9, r2, r5
    bne  r8, r9, diag_ok    ; usually a different diagonal (taken)
    br   unsafe
diag_ok:
    addi r5, r5, 1
    br   safe_loop
safe:
    shli r6, r2, 2
    add  r6, r6, r21
    st   r4, 0(r6)          ; board[row] = col
    addi sp, sp, -12
    st   r1, 0(sp)
    st   r2, 4(sp)
    st   r4, 8(sp)
    addi r2, r2, 1
    bsr  place
    ld   r1, 0(sp)
    ld   r2, 4(sp)
    ld   r4, 8(sp)
    addi sp, sp, 12
unsafe:
    addi r4, r4, 1
    li   r10, 5
    blt  r4, r10, try_col
    rts
found:
    addi r19, r19, 1
    rts

{aux_sub}

{warm_sub}

{drv_stop}

.data
hanoi_weight: .word {hanoi_weight}
board: .space 8
"""
        return join_sections(text)
