"""tomcatv analog: vectorised mesh relaxation.

SPEC89's tomcatv generates a 2D mesh by iterative relaxation: regular sweeps
over a grid with convergence bookkeeping.  Like matrix300 it is loop-bound
(the paper's "repetitive loop execution" pair), so every reasonable dynamic
predictor approaches its asymptote and BTFN is unusually strong.

The analog sweeps an NxN integer grid, replacing interior points by a
neighbour average, and counts points whose residual exceeds a tolerance —
the residual branch starts data-dependent and settles as the grid smooths,
the same convergence-driven behaviour the original exhibits.
"""

from __future__ import annotations

from repro.workloads._asmlib import (
    aux_phase,
    bounded_driver,
    join_sections,
    random_words,
    words_directive,
)
from repro.workloads.base import DataSet, FLOATING_POINT, Workload, register_workload


@register_workload
class Tomcatv(Workload):
    """Jacobi-style relaxation sweeps over an NxN grid."""

    name = "tomcatv"
    category = FLOATING_POINT
    version = 2
    datasets = {
        # Table 3: no alternative data set applicable (marked NA).
        "test": DataSet("default", {"n": 64, "seed": 1009, "tol": 8}),
    }

    def build_source(self, dataset: DataSet) -> str:
        n = dataset.param("n", 64)
        seed = dataset.param("seed", 1009)
        tol = dataset.param("tol", 8)
        cells = n * n
        initial = random_words(seed, cells, lo=0, hi=4096)
        # Cold-branch tail (Table 1 lists 370 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(259, seed=370, label_prefix="tcaux", call_period_log2=2, groups=16, seed_state=False)
        warm_init, warm_call, warm_sub = aux_phase(96, seed=371, label_prefix="tcwarm", call_period_log2=0, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r18", label_prefix="tcdrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, {n}           ; N
    li   r21, grid
    li   r22, scratch
    li   r23, {tol}         ; tolerance

sweep:
{drv_check}
    li   r19, 0             ; residual count this sweep
    li   r2, 1              ; i = 1 .. N-2
irow:
{aux_call}
{warm_call}
    li   r3, 1              ; j = 1 .. N-2
jcol:
    mul  r4, r2, r20        ; cell index
    add  r4, r4, r3
    shli r4, r4, 2
    add  r5, r4, r21        ; &grid[i][j]
    ld   r6, 0(r5)          ; old value
    ld   r7, 4(r5)          ; east
    ld   r8, -4(r5)         ; west
    li   r9, {4 * n}        ; row stride in bytes
    add  r10, r5, r9
    ld   r10, 0(r10)        ; south
    sub  r11, r5, r9
    ld   r11, 0(r11)        ; north
    add  r12, r7, r8
    add  r12, r12, r10
    add  r12, r12, r11
    srai r12, r12, 2        ; average of neighbours
    add  r13, r4, r22
    st   r12, 0(r13)        ; write into scratch
    sub  r14, r12, r6       ; residual
    srai r15, r14, 31       ; branchless |residual| (as compiled FP code is)
    xor  r14, r14, r15
    sub  r14, r14, r15
    or   r19, r19, r14      ; accumulate a residual indicator for the sweep
    addi r3, r3, 1
    addi r15, r20, -1
    blt  r3, r15, jcol
    addi r2, r2, 1
    blt  r2, r15, irow

    ; copy scratch back into grid interior
    li   r2, 1
crow:
    li   r3, 1
ccol:
    mul  r4, r2, r20
    add  r4, r4, r3
    shli r4, r4, 2
    add  r5, r4, r22
    ld   r6, 0(r5)
    add  r7, r4, r21
    st   r6, 0(r7)
    addi r3, r3, 1
    addi r15, r20, -1
    blt  r3, r15, ccol
    addi r2, r2, 1
    blt  r2, r15, crow

    ; once-per-sweep convergence test (reductions are branchless above)
    bgt  r19, r23, sweep
    li   r2, 0
rough:
    shli r3, r2, 2
    add  r3, r3, r21
    ld   r4, 0(r3)
    muli r5, r2, 97
    add  r4, r4, r5
    andi r4, r4, 4095
    st   r4, 0(r3)
    addi r2, r2, 1
    li   r3, {cells}
    blt  r2, r3, rough
    br   sweep

{aux_sub}

{warm_sub}

{drv_stop}
"""
        data = join_sections(
            ".data",
            words_directive("grid", initial),
            f"scratch: .space {cells}",
        )
        return join_sections(text, data)
