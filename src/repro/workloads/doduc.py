"""doduc analog: Monte Carlo reactor simulation.

SPEC89's doduc simulates a nuclear reactor's thermo-hydraulics: a time-step
driver, physics kernels with data-dependent decisions, and table lookups
whose access patterns repeat across time steps.  Its branch behaviour mixes
highly regular loop control, table-driven decisions that recur identically
each time step (learnable history patterns), and genuinely stochastic
threshold tests.

The analog has the same three populations: per-step loops, a scanned
parameter table whose sign/threshold branches repeat with the table period,
and an LCG-driven acceptance test providing irreducible noise.  The training
data set ("tiny doducin", Table 3) uses a different seed, threshold and
parameter table so per-pattern statistics shift between train and test.
"""

from __future__ import annotations

from repro.workloads._asmlib import (
    aux_phase,
    bounded_driver,
    join_sections,
    lcg_step,
    random_words,
    words_directive,
)
from repro.workloads.base import DataSet, FLOATING_POINT, Workload, register_workload


@register_workload
class Doduc(Workload):
    """Time-step driver with table-driven physics branches and MC noise."""

    name = "doduc"
    category = FLOATING_POINT
    version = 2
    datasets = {
        # The training input ("tiny doducin") is the same reactor model at a
        # smaller scale: identical structure, mildly perturbed parameter
        # table, different random seed.  Matching the paper, FP benchmarks
        # degrade very little when trained on the alternative input.
        "test": DataSet("doducin", {"seed": 4242, "threshold": 3500, "table_len": 11, "inner": 12, "perturb": 0}),
        "train": DataSet("tiny", {"seed": 977, "threshold": 3500, "table_len": 11, "inner": 12, "perturb": 0}),
    }

    def build_source(self, dataset: DataSet) -> str:
        seed = dataset.param("seed", 4242)
        threshold = dataset.param("threshold", 1500)
        table_len = dataset.param("table_len", 11)
        inner = dataset.param("inner", 12)
        perturb = dataset.param("perturb", 0)
        # Both data sets share one base parameter table; the training set
        # perturbs a few entries (same physics, smaller input).
        # sorted: physical parameter tables are monotone in practice, so the
        # hot/cool decision sees runs with one transition per table cycle
        table = sorted(random_words(12721, table_len, lo=0, hi=4000))
        if perturb:
            replacement = random_words(seed, perturb, lo=0, hi=4000)
            for offset, value in enumerate(replacement):
                table[(offset * 3) % table_len] = value
        # Cold-branch tail (Table 1 lists 1149 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(984, seed=1149, label_prefix="ddaux", call_period_log2=5, groups=16, seed_state=False)
        warm_init, warm_call, warm_sub = aux_phase(96, seed=1150, label_prefix="ddwarm", call_period_log2=3, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r15", label_prefix="dddrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, {seed}        ; LCG state
    li   r21, params
    li   r22, {threshold}
    li   r24, 0             ; table index
    li   r19, 0             ; accumulated "energy"

step:
{drv_check}
{aux_call}
{warm_call}
    ; ---- physics kernel: fixed-trip inner loop over nodes --------------
    li   r2, 0
node:
    ; table-driven decision: repeats with the table period across steps
    shli r3, r24, 2
    add  r3, r3, r21
    ld   r4, 0(r3)
    addi r24, r24, 1
    li   r3, {table_len}
    bge  r24, r3, dowrap    ; rare forward branch (table exhausted)
nowrap:
    li   r5, 2000
    blt  r4, r5, cool_path
    add  r19, r19, r4       ; hot node: accumulate
    srai r19, r19, 1
    br   node_done
cool_path:
    sub  r19, r19, r4
    bge  r19, r0, node_done
    li   r19, 0             ; clamp
node_done:
    addi r2, r2, 1
    li   r3, {inner}
    blt  r2, r3, node

    ; ---- Monte Carlo acceptance: stochastic threshold test -------------
{lcg_step("r20", "r6")}
    andi r7, r20, 4095
    blt  r7, r22, accept
    addi r19, r19, 7        ; reject path
    br   mc_done
accept:
    bsr  relax
mc_done:
    br   step

dowrap:
    li   r24, 0
    br   nowrap

relax:
    ; short data-dependent damping loop: trip count from the LCG low bits
    andi r8, r20, 3
    addi r8, r8, 1
damp:
    srai r19, r19, 1
    addi r8, r8, -1
    bgt  r8, r0, damp
    rts

{aux_sub}

{warm_sub}

{drv_stop}
"""
        data = join_sections(".data", words_directive("params", table))
        return join_sections(text, data)
