"""The nine SPEC-analog workloads (section 4.1's benchmarks).

Importing this package registers every workload; use
:func:`~repro.workloads.base.get_workload` /
:func:`~repro.workloads.base.workload_names` to enumerate them.  The
registration order matches the paper's benchmark listing: integer codes
first (eqntott, espresso, gcc, li), then floating point (doduc, fpppp,
matrix300, spice2g6, tomcatv).
"""

from repro.workloads.base import (
    DEFAULT_CONDITIONAL_BRANCHES,
    FLOATING_POINT,
    INTEGER,
    DataSet,
    TraceCache,
    Workload,
    WorkloadTrace,
    default_cache,
    default_cache_dir,
    get_workload,
    register_workload,
    workload_names,
)

# Import order fixes registry (and therefore figure x-axis) order.
from repro.workloads import eqntott as _eqntott  # noqa: F401
from repro.workloads import espresso as _espresso  # noqa: F401
from repro.workloads import gcc as _gcc  # noqa: F401
from repro.workloads import li as _li  # noqa: F401
from repro.workloads import doduc as _doduc  # noqa: F401
from repro.workloads import fpppp as _fpppp  # noqa: F401
from repro.workloads import matrix300 as _matrix300  # noqa: F401
from repro.workloads import spice2g6 as _spice2g6  # noqa: F401
from repro.workloads import tomcatv as _tomcatv  # noqa: F401

__all__ = [
    "DEFAULT_CONDITIONAL_BRANCHES",
    "DataSet",
    "FLOATING_POINT",
    "INTEGER",
    "TraceCache",
    "Workload",
    "WorkloadTrace",
    "default_cache",
    "default_cache_dir",
    "get_workload",
    "register_workload",
    "workload_names",
]
