"""matrix300 analog: dense matrix multiply.

SPEC89's matrix300 is 300x300 dense matrix arithmetic — the archetypal
loop-bound floating-point benchmark.  Its branch behaviour is almost entirely
loop-closing backward branches, which is why the paper shows BTFN reaching
~98 percent on it while the same scheme collapses on the integer codes.

The analog is a blocked triple-nested integer matrix multiply: identical
loop structure, identical branch demographics (deep inner loops, one
fall-through per loop exit, very high taken rate, tiny static branch count —
Table 1 lists only 213 static conditional branches for the original).
"""

from __future__ import annotations

from repro.workloads._asmlib import aux_phase, bounded_driver, join_sections
from repro.workloads.base import DataSet, FLOATING_POINT, Workload, register_workload


@register_workload
class Matrix300(Workload):
    """C = A x B over an NxN integer matrix, repeated indefinitely."""

    name = "matrix300"
    category = FLOATING_POINT
    version = 2
    datasets = {
        # Table 3: no alternative data set applicable (marked NA).
        "test": DataSet("default", {"n": 64}),
    }

    def build_source(self, dataset: DataSet) -> str:
        n = dataset.param("n", 64)
        cells = n * n
        # Cold-branch tail (Table 1 lists 213 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(109, seed=300, label_prefix="m3aux", call_period_log2=5, seed_state=False)
        warm_init, warm_call, warm_sub = aux_phase(96, seed=301, label_prefix="m3warm", call_period_log2=2, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r15", label_prefix="m3drv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, {n}          ; N
    li   r21, mat_a
    li   r22, mat_b
    li   r23, mat_c
    ; fill A and B with simple deterministic values once
    li   r2, 0             ; linear index
init:
    shli r3, r2, 2
    add  r4, r3, r21
    addi r5, r2, 3
    st   r5, 0(r4)
    add  r4, r3, r22
    muli r5, r2, 7
    st   r5, 0(r4)
    addi r2, r2, 1
    li   r3, {cells}
    blt  r2, r3, init

outer:
{drv_check}
    li   r2, 0             ; i
iloop:
    li   r3, 0             ; j
jloop:
{warm_call}
{aux_call}
    li   r4, 0             ; k
    li   r5, 0             ; acc
kloop:
    mul  r6, r2, r20       ; A[i][k]
    add  r6, r6, r4
    shli r6, r6, 2
    add  r6, r6, r21
    ld   r7, 0(r6)
    mul  r8, r4, r20       ; B[k][j]
    add  r8, r8, r3
    shli r8, r8, 2
    add  r8, r8, r22
    ld   r9, 0(r8)
    mul  r10, r7, r9
    add  r5, r5, r10
    addi r4, r4, 1
    blt  r4, r20, kloop
    mul  r6, r2, r20       ; C[i][j] = acc
    add  r6, r6, r3
    shli r6, r6, 2
    add  r6, r6, r23
    st   r5, 0(r6)
    addi r3, r3, 1
    blt  r3, r20, jloop
    addi r2, r2, 1
    blt  r2, r20, iloop
    br   outer

{aux_sub}

{warm_sub}

{drv_stop}
"""
        data = f"""
.data
mat_a: .space {cells}
mat_b: .space {cells}
mat_c: .space {cells}
"""
        return join_sections(text, data)
