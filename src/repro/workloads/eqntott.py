"""eqntott analog: PLA term comparison (the ``cmppt`` kernel).

SPEC89's eqntott converts boolean equations to truth tables; nearly all its
time goes into sorting product terms, i.e. the ``cmppt`` routine that walks
two bit vectors until the first differing position.  Its branches are the
canonical history-correlated case: the compare-loop exit fires at a position
determined by the data, and because the same terms are compared repeatedly
during the sort, exit positions recur in patterns a two-level predictor
learns and a per-branch counter cannot.

The analog compares vector pairs from a fixed pool cyclically; the
first-difference position of consecutive pairs follows a short schedule
(period 7 by default), so the compare-loop's exit branch shows an exact
periodic pattern.  A biased LCG branch adds the irreducible noise floor.
Table 3 lists no applicable training set for eqntott, so only the test data
set exists.
"""

from __future__ import annotations

import random

from repro.workloads._asmlib import (
    aux_phase,
    bounded_driver,
    join_sections,
    lcg_step,
    words_directive,
)
from repro.workloads.base import DataSet, INTEGER, Workload, register_workload


def _vector_pool(seed: int, pairs: int, width: int, schedule_period: int):
    """Build ``pairs`` pairs of ``width``-word vectors where pair ``k``
    first differs at word ``schedule[k % period]``."""
    rng = random.Random(seed)
    schedule = [rng.randrange(width) for _ in range(schedule_period)]
    vec_a: "list[int]" = []
    vec_b: "list[int]" = []
    for pair in range(pairs):
        diff_at = schedule[pair % schedule_period]
        base = [rng.randint(0, 0xFFFF) for _ in range(width)]
        other = list(base)
        other[diff_at] = base[diff_at] ^ (1 + rng.randint(0, 0x7FFF))
        # words after the difference are irrelevant to cmppt but vary anyway
        for position in range(diff_at + 1, width):
            other[position] = rng.randint(0, 0xFFFF)
        vec_a.extend(base)
        vec_b.extend(other)
    return vec_a, vec_b


@register_workload
class Eqntott(Workload):
    """Cyclic cmppt sweeps over a fixed pool of term pairs."""

    name = "eqntott"
    category = INTEGER
    version = 2
    datasets = {
        # Table 3: testing set int_pri_3.eqn; no applicable training set.
        "test": DataSet("int_pri_3", {"seed": 8111, "pairs": 13, "width": 8, "period": 7, "noise": 330}),
    }

    def build_source(self, dataset: DataSet) -> str:
        seed = dataset.param("seed", 8111)
        pairs = dataset.param("pairs", 13)
        width = dataset.param("width", 8)
        period = dataset.param("period", 7)
        noise = dataset.param("noise", 1300)
        vec_a, vec_b = _vector_pool(seed, pairs, width, period)
        # Cold-branch tail (Table 1 lists 277 static conditional branches).
        aux_init, aux_call, aux_sub = aux_phase(159, seed=277, label_prefix="eqaux", call_period_log2=2, seed_state=False)
        warm_init, warm_call, warm_sub = aux_phase(96, seed=278, label_prefix="eqwarm", call_period_log2=5, groups=4, counter_reg="r25")
        drv_init, drv_check, drv_stop = bounded_driver("r15", label_prefix="eqdrv")
        text = f"""
_start:
{aux_init}
{warm_init}
{drv_init}
    li   r20, terms_a
    li   r21, terms_b
    li   r22, {seed}        ; LCG state for the noise branch
    li   r23, 0             ; pair index
    li   r19, 0             ; "comparison result" accumulator

sortpass:
{warm_call}
    ; ---- cmppt: compare pair r23's two vectors word by word ------------
    muli r2, r23, {4 * width}
    add  r3, r2, r20        ; &a[pair][0]
    add  r4, r2, r21        ; &b[pair][0]
    li   r5, 0              ; word position
cmppt:
    ld   r6, 0(r3)
    ld   r7, 0(r4)
    bne  r6, r7, differs    ; exit position follows the pair schedule
    addi r3, r3, 4
    addi r4, r4, 4
    addi r5, r5, 1
    li   r8, {width}
    blt  r5, r8, cmppt
    br   equal              ; never reached: every pair differs somewhere
differs:
    blt  r6, r7, a_less
    addi r19, r19, 1
    br   compared
a_less:
    addi r19, r19, -1
    br   compared
equal:
    addi r19, r19, 0
compared:

    ; ---- advance to the next pair (cyclic) ------------------------------
    addi r23, r23, 1
    li   r8, {pairs}
    bge  r23, r8, do_wrap   ; rare forward branch (pool exhausted)
no_wrap:

    ; ---- biased noise branch (~irreducible data dependence) -------------
{lcg_step("r22", "r9")}
    andi r10, r22, 4095
    li   r11, {noise}
    blt  r10, r11, noisy
    addi r19, r19, 2
    br   sortpass
noisy:
    srai r19, r19, 1
    br   sortpass

do_wrap:
    li   r23, 0
{drv_check}
{aux_call}
    br   no_wrap

{aux_sub}

{warm_sub}

{drv_stop}
"""
        data = join_sections(
            ".data",
            words_directive("terms_a", vec_a),
            words_directive("terms_b", vec_b),
        )
        return join_sections(text, data)
