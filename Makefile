# Common developer targets.
PYTHON ?= python

.PHONY: install test bench figures examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro run all --scale 50000

examples:
	@for example in examples/*.py; do echo "== $$example"; $(PYTHON) $$example; done

clean:
	rm -rf .trace_cache .pytest_cache .benchmarks .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
