# Common developer targets.
PYTHON ?= python

.PHONY: install test lint analyze bench figures examples serve-demo clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static checks: ruff + mypy over src/, plus the repo's own assembly linter
# over every bundled workload.  ruff/mypy are skipped (with a notice) when
# not installed so the target stays usable in minimal environments.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else echo "ruff not installed; skipping (pip install ruff)"; fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else echo "mypy not installed; skipping (pip install mypy)"; fi
	PYTHONPATH=src $(PYTHON) -m repro.cli lint

# Predictability analysis cross-validated against the simulator: every
# conditional site's dynamic per-scheme accuracy must land inside its
# static bound and the static H2P top-5 must match the dynamic ranking,
# for all 14 workload variants.
analyze:
	PYTHONPATH=src $(PYTHON) -m repro.cli analyze --cross-validate --scale 8000

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro run all --scale 50000

examples:
	@for example in examples/*.py; do echo "== $$example"; $(PYTHON) $$example; done

# Small end-to-end run of the prediction service: 6 sessions multiplexed
# over 2 protocol-v2 connections into a 2-worker pre-fork pool,
# served-vs-offline parity verified; appends a trend entry.
serve-demo:
	PYTHONPATH=src $(PYTHON) -m repro bench-serve --sessions 6 --scale 2000 --workers 2 --connections 2 -o BENCH_serve.json

clean:
	rm -rf .trace_cache .pytest_cache .benchmarks .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
