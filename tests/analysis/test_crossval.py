"""Static-vs-dynamic cross-validation over every bundled workload variant.

The payoff test for the static analyzer: every branch the trace pipeline
observes must appear in the static branch-site table with the same class,
target and direction, and the analytically-derived BTFN accuracy must equal
what :class:`repro.predictors.static_schemes.BTFNPredictor` actually scores
when simulated over the same trace.
"""

import pytest

from repro.analysis import cross_validate, lint_program
from repro.isa.assembler import assemble
from repro.workloads import workload_names
from repro.workloads.base import get_workload


def _program(name, role):
    workload = get_workload(name)
    return assemble(workload.build_source(workload.dataset(role)))

VARIANTS = [
    (name, role)
    for name in workload_names()
    for role in sorted(get_workload(name).datasets)
]


@pytest.fixture(scope="module")
def validated(trace_cache, small_scale):
    reports = {}

    def run(name, role):
        key = (name, role)
        if key not in reports:
            trace = trace_cache.get(get_workload(name), role, small_scale)
            reports[key] = cross_validate(
                _program(name, role), trace.records, name=f"{name}:{role}"
            )
        return reports[key]

    return run


class TestCrossValidation:
    @pytest.mark.parametrize("name,role", VARIANTS)
    def test_every_dynamic_site_matches_static_table(self, validated, name, role):
        report = validated(name, role)
        assert report.mismatches == [], report.mismatches[:5]

    @pytest.mark.parametrize("name,role", VARIANTS)
    def test_static_btfn_equals_simulated_btfn(self, validated, name, role):
        report = validated(name, role)
        assert report.btfn_total > 0
        assert report.static_btfn_correct == report.simulated_btfn_correct

    @pytest.mark.parametrize("name,role", VARIANTS)
    def test_observed_sites_are_subset_of_static(self, validated, name, role):
        report = validated(name, role)
        assert report.observed_static <= report.static_total
        assert report.observed_static == report.dynamic_total
        assert report.ok

    @pytest.mark.parametrize("name,role", VARIANTS)
    def test_report_serializes(self, validated, name, role):
        payload = validated(name, role).as_dict()
        assert payload["program"] == f"{name}:{role}"
        assert payload["ok"] is True
        assert payload["static_total"] >= payload["observed_static"]
        assert payload["observed_per_class"].get("conditional", 0) > 0


class TestWorkloadProgramsLintClean:
    @pytest.mark.parametrize("name,role", VARIANTS)
    def test_no_errors_no_warnings(self, name, role):
        result = lint_program(_program(name, role), name=f"{name}:{role}")
        assert result.clean, [d.render() for d in result.diagnostics]
