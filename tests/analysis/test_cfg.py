"""CFG construction: blocks, edge kinds, dominators, loops, SCCs."""

from repro.analysis import EdgeKind, build_cfg
from repro.isa.assembler import assemble


def _cfg(source: str):
    return build_cfg(assemble(source))


LOOP = """
_start:
    li r2, 5
loop:
    addi r3, r3, 1
    subi r2, r2, 1
    bnez r2, loop
    halt
"""


class TestBlocks:
    def test_leaders_split_at_branch_targets_and_after_branches(self):
        cfg = _cfg(LOOP)
        assert sorted(cfg.blocks) == [0x1000, 0x1004, 0x1010]

    def test_block_contents_partition_the_program(self):
        cfg = _cfg(LOOP)
        total = sum(len(b.instructions) for b in cfg.blocks.values())
        assert total == len(cfg.program.instructions)
        assert cfg.blocks[0x1004].end == 0x1010

    def test_block_at_finds_containing_block(self):
        cfg = _cfg(LOOP)
        assert cfg.block_at(0x1008).start == 0x1004
        assert cfg.block_at(0x1010).start == 0x1010

    def test_labels_attached_to_blocks(self):
        cfg = _cfg(LOOP)
        assert cfg.blocks[0x1004].label == "loop"
        assert cfg.blocks[0x1000].label == "_start"


class TestEdges:
    def test_conditional_has_taken_and_fallthrough(self):
        cfg = _cfg(LOOP)
        kinds = {(e.dst, e.kind) for e in cfg.successors(0x1004)}
        assert kinds == {(0x1004, EdgeKind.TAKEN), (0x1010, EdgeKind.FALLTHROUGH)}

    def test_halt_is_terminal(self):
        cfg = _cfg(LOOP)
        assert cfg.successors(0x1010) == []

    def test_call_and_continuation_and_return(self):
        cfg = _cfg(
            """
_start:
    bsr sub
    halt
sub:
    addi r2, r2, 1
    rts
"""
        )
        kinds = {(e.dst, e.kind) for e in cfg.successors(0x1000)}
        assert (0x1008, EdgeKind.CALL) in kinds
        assert (0x1004, EdgeKind.CONTINUATION) in kinds
        # rts returns to every call continuation
        rts_block = cfg.block_at(0x100C).start
        returns = {(e.dst, e.kind) for e in cfg.successors(rts_block)}
        assert (0x1004, EdgeKind.RETURN) in returns

    def test_indirect_jump_edges_from_address_taken_table(self):
        cfg = _cfg(
            """
_start:
    li r2, table
    ld r3, 0(r2)
    jmp r3
a:
    halt
b:
    halt
.data
table: .word a, b
"""
        )
        jmp_pc = next(
            cfg.program.text_base + 4 * i
            for i, ins in enumerate(cfg.program.instructions)
            if ins.opcode.name == "JMP"
        )
        jmp_block = cfg.block_at(jmp_pc).start
        targets = {e.dst for e in cfg.successors(jmp_block) if e.kind == EdgeKind.INDIRECT}
        assert targets == {cfg.program.symbols["a"], cfg.program.symbols["b"]}

    def test_no_indirect_resolution_without_jmp(self):
        # data words that look like text addresses must not create edges
        # when the program has no register-indirect jump at all
        cfg = _cfg(
            """
_start:
    halt
.data
t: .word 4096
"""
        )
        assert cfg.indirect_targets == frozenset()


class TestGraphAnalyses:
    def test_reachability_excludes_dead_code(self):
        cfg = _cfg(
            """
_start:
    br out
dead:
    addi r2, r2, 1
out:
    halt
"""
        )
        reachable = cfg.reachable()
        dead = cfg.program.symbols["dead"]
        assert dead not in reachable
        assert cfg.entry in reachable

    def test_dominators_chain(self):
        cfg = _cfg(LOOP)
        idom = cfg.dominators()
        assert idom[0x1000] is None
        assert idom[0x1004] == 0x1000
        assert idom[0x1010] == 0x1004
        assert cfg.dominates(0x1000, 0x1010)
        assert not cfg.dominates(0x1010, 0x1004)

    def test_natural_loop_found(self):
        cfg = _cfg(LOOP)
        loops = cfg.natural_loops()
        assert loops == [(0x1004, frozenset({0x1004}))]

    def test_nested_loop_bodies(self):
        cfg = _cfg(
            """
_start:
    li r2, 3
outer:
    li r3, 3
inner:
    subi r3, r3, 1
    bnez r3, inner
    subi r2, r2, 1
    bnez r2, outer
    halt
"""
        )
        loops = dict(cfg.natural_loops())
        outer = cfg.program.symbols["outer"]
        inner = cfg.program.symbols["inner"]
        assert inner in loops and outer in loops
        assert loops[inner] < loops[outer]  # inner body strictly nested

    def test_sccs_group_cycles(self):
        cfg = _cfg(LOOP)
        sccs = cfg.strongly_connected_components()
        cyclic = [c for c in sccs if len(c) > 1 or any(
            e.dst in c for s in c for e in cfg.successors(s)
        )]
        assert cyclic == [frozenset({0x1004})]

    def test_label_for_offsets(self):
        cfg = _cfg(LOOP)
        assert cfg.label_for(0x1004) == "loop"
        assert cfg.label_for(0x1008) == "loop+0x4"
