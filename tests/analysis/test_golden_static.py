"""Golden static branch-site tables for every bundled workload variant.

These pin the *static* shape of each generated program — how many branch
sites of each class the assembler emits, and how many conditionals point
backward vs forward.  Any workload-generator change that alters the emitted
program shows up here (and requires a workload ``version`` bump so cached
traces are not reused).
"""

import pytest

from repro.analysis import static_branch_summary
from repro.isa.assembler import assemble
from repro.workloads.base import get_workload

GOLDEN = {
    ("eqntott", "test"): {
        "total": 313, "conditional": 273, "return": 12,
        "imm_unconditional": 28, "reg_unconditional": 0,
        "conditional_backward": 1, "conditional_forward": 272,
    },
    ("espresso", "test"): {
        "total": 612, "conditional": 552, "return": 20,
        "imm_unconditional": 40, "reg_unconditional": 0,
        "conditional_backward": 3, "conditional_forward": 549,
    },
    ("espresso", "train"): {
        "total": 612, "conditional": 552, "return": 20,
        "imm_unconditional": 40, "reg_unconditional": 0,
        "conditional_backward": 3, "conditional_forward": 549,
    },
    ("gcc", "test"): {
        "total": 3402, "conditional": 2292, "return": 88,
        "imm_unconditional": 1021, "reg_unconditional": 1,
        "conditional_backward": 0, "conditional_forward": 2292,
    },
    ("gcc", "train"): {
        "total": 3402, "conditional": 2292, "return": 88,
        "imm_unconditional": 1021, "reg_unconditional": 1,
        "conditional_backward": 0, "conditional_forward": 2292,
    },
    ("li", "test"): {
        "total": 571, "conditional": 496, "return": 25,
        "imm_unconditional": 50, "reg_unconditional": 0,
        "conditional_backward": 3, "conditional_forward": 493,
    },
    ("li", "train"): {
        "total": 571, "conditional": 496, "return": 25,
        "imm_unconditional": 50, "reg_unconditional": 0,
        "conditional_backward": 3, "conditional_forward": 493,
    },
    ("doduc", "test"): {
        "total": 1171, "conditional": 1107, "return": 21,
        "imm_unconditional": 43, "reg_unconditional": 0,
        "conditional_backward": 2, "conditional_forward": 1105,
    },
    ("doduc", "train"): {
        "total": 1171, "conditional": 1107, "return": 21,
        "imm_unconditional": 43, "reg_unconditional": 0,
        "conditional_backward": 2, "conditional_forward": 1105,
    },
    ("fpppp", "test"): {
        "total": 717, "conditional": 656, "return": 21,
        "imm_unconditional": 40, "reg_unconditional": 0,
        "conditional_backward": 4, "conditional_forward": 652,
    },
    ("matrix300", "test"): {
        "total": 257, "conditional": 222, "return": 12,
        "imm_unconditional": 23, "reg_unconditional": 0,
        "conditional_backward": 4, "conditional_forward": 218,
    },
    ("spice2g6", "test"): {
        "total": 663, "conditional": 602, "return": 20,
        "imm_unconditional": 41, "reg_unconditional": 0,
        "conditional_backward": 3, "conditional_forward": 599,
    },
    ("spice2g6", "train"): {
        "total": 663, "conditional": 602, "return": 20,
        "imm_unconditional": 41, "reg_unconditional": 0,
        "conditional_backward": 3, "conditional_forward": 599,
    },
    ("tomcatv", "test"): {
        "total": 440, "conditional": 381, "return": 20,
        "imm_unconditional": 39, "reg_unconditional": 0,
        "conditional_backward": 6, "conditional_forward": 375,
    },
}


@pytest.mark.parametrize("name,role", sorted(GOLDEN))
def test_static_summary_matches_golden(name, role):
    workload = get_workload(name)
    program = assemble(workload.build_source(workload.dataset(role)))
    summary = static_branch_summary(program)
    expected = GOLDEN[(name, role)]
    observed = {key: summary[key] for key in expected}
    assert observed == expected
    # BTFN statically predicts taken exactly for the backward conditionals
    assert summary["btfn_predict_taken"] == expected["conditional_backward"]
    assert summary["btfn_predict_not_taken"] == expected["conditional_forward"]
